"""DR restore bench: RTO versus replay volume, RPO pinned at zero.

Runs the full backup-disaster-restore cycle at increasing post-backup
traffic volumes: the backup image stays the same size while the
archived WAL tail above the barrier grows, so the point-in-time replay
-- and the modelled RTO with it -- must grow linearly with the volume
while everything else holds.  Asserts the PR's headline claims
deterministically (fixed seed):

* **RPO = 0** -- with sync archiving every acked transaction survives
  the disaster: the history checker finds zero violations over the
  pre-disaster and post-restore timeline checked as one;
* **replay scales with volume** -- records replayed strictly increase
  with post-backup traffic, rows loaded do not (the image is cut at
  the barrier, not at the disaster);
* **restored fleet serves** -- post-restore transfers and reads all
  succeed.

Runs two ways:

* ``pytest benchmarks/bench_dr_restore.py`` -- the bench suite path,
  with per-volume RTO in ``benchmark.extra_info``;
* ``python benchmarks/bench_dr_restore.py [--quick] [--seed N]`` --
  the CI smoke entry point; exits non-zero if any claim fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Tuple

from repro.core.report import TextTable
from repro.dr.archive import FleetArchiver
from repro.dr.backup import BackupJob
from repro.dr.restore import RestoreJob, RestoreReport
from repro.ha.history import HistoryChecker, Violation
from repro.ha.workload import PairWorkload, build_pairs_fleet
from repro.sim.rng import derive_seed

WARMUP_TXNS = 8
POST_TXNS = 6


def run_volume(
    mid_txns: int, seed: int = 42
) -> Tuple[RestoreReport, List[Violation], int]:
    """One backup -> traffic(mid_txns) -> disaster -> restore cycle.

    Returns the restore report, the checker violations over the full
    timeline, and the acked post-restore transfer count.
    """
    fleet, pairs = build_pairs_fleet(n_shards=2, n_pairs=4, name="drbench")
    archiver = FleetArchiver(fleet, mode="sync")
    workload = PairWorkload(
        fleet, pairs, seed=derive_seed(seed, f"dr.bench.{mid_txns}"),
    )
    for _ in range(WARMUP_TXNS):
        workload.transfer()
        workload.read()
    manifest = BackupJob(fleet, archiver, name=f"drbench-{mid_txns}").run()
    for _ in range(mid_txns):
        workload.transfer()
        workload.read()

    # disaster: abandon the fleet, restore from backup + archive
    archiver.catch_up()
    target = [archive.last_lsn for archive in archiver.archives]
    restored, report = RestoreJob(
        manifest, archiver, name=f"drbench-{mid_txns}",
    ).run(target=target)

    post_workload = PairWorkload(
        restored, pairs, history=workload.history,
        seed=derive_seed(seed, f"dr.bench.{mid_txns}.post"),
    )
    post_workload._versions.update(workload._versions)
    post_acked = 0
    for _ in range(POST_TXNS):
        post_acked += 1 if post_workload.transfer() else 0
        post_workload.read()
    check = HistoryChecker().check(
        post_workload.history, post_workload.final_stamps()
    )
    return report, list(check.violations), post_acked


def run_volumes(
    quick: bool = False, seed: int = 42
) -> Dict[int, Tuple[RestoreReport, List[Violation], int]]:
    volumes = (10, 30) if quick else (20, 60, 120)
    return {mid: run_volume(mid, seed=seed) for mid in volumes}


def _report(results) -> TextTable:
    table = TextTable(
        ["mid txns", "rows", "replayed", "RTO wall ms", "RTO virtual ms",
         "post acked", "violations"],
        title="PITR restore: RTO vs replay volume (sync archiving, RPO=0)",
    )
    for mid, (report, violations, post_acked) in results.items():
        table.add_row(
            mid, report.rows_loaded, report.records_replayed,
            round(report.wall_s * 1000, 2),
            round(report.virtual_s * 1000, 2),
            post_acked, len(violations),
        )
    return table


def _check(results) -> None:
    previous_replayed = -1
    rows = set()
    for mid, (report, violations, post_acked) in results.items():
        assert not violations, f"mid={mid}: violations {violations}"
        assert post_acked > 0, f"mid={mid}: restored fleet refused traffic"
        assert report.records_replayed > previous_replayed, (
            f"mid={mid}: replay volume did not grow "
            f"({report.records_replayed} <= {previous_replayed})"
        )
        previous_replayed = report.records_replayed
        rows.add(report.rows_loaded)
    # the image is cut at the barrier: its size must not depend on how
    # much traffic followed the backup
    assert len(rows) == 1, f"image size varied with replay volume: {rows}"


def test_dr_restore(benchmark):
    results = benchmark.pedantic(
        run_volumes, kwargs={"quick": True}, rounds=1, iterations=1
    )
    _report(results).print()
    for mid, (report, _violations, _post) in results.items():
        benchmark.extra_info[f"rto_virtual_ms_{mid}"] = report.virtual_s * 1000
        benchmark.extra_info[f"replayed_{mid}"] = report.records_replayed
    _check(results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (two volumes)"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    args = parser.parse_args(argv)
    results = run_volumes(quick=args.quick, seed=args.seed)
    _report(results).print()
    try:
        _check(results)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    widest = max(results)
    report = results[widest][0]
    print(
        f"RTO at {widest} mid txns: wall {report.wall_s * 1000:.2f}ms, "
        f"virtual {report.virtual_s * 1000:.2f}ms "
        f"({report.records_replayed} records replayed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""What-if studies from the paper's takeaways (Section III-J).

The takeaways speculate about three improvements; the model can run
them:

1. *"If scaling down of CDB1 is improved with on-demand scaling, it
   would be the clear winner."* -- swap CDB1's gradual scale-down for
   an on-demand policy and re-run the elasticity evaluation.
2. *"Implementing auto-scaling in CDB4 has a large potential to
   achieve the best elasticity because of its memory disaggregation."*
   -- give CDB4 a serverless range; its remote buffer pool survives
   scaling, so the post-scale warm-up penalty is tiny.
3. The cited-but-unobserved *proactive* autoscaling (Moneyball /
   Seagull): give CDB2 a forecast of the demand schedule.
"""

import dataclasses

from repro.cloud.architectures import cdb1, cdb2, cdb4
from repro.cloud.specs import ComputeAllocation, ScalingKind, ScalingPolicySpec
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator
from repro.core.report import TextTable
from repro.core.workload import READ_WRITE

WINDOW_S = 600.0
TAU = 110


def mix():
    return READ_WRITE.to_workload_mix(1)


def run_all_patterns(arch):
    evaluator = ElasticityEvaluator(arch, mix(), measure_window_s=WINDOW_S)
    results = [evaluator.run(p, TAU) for p in ELASTIC_PATTERNS.values()]
    avg_tps = sum(r.avg_tps for r in results) / len(results)
    cost = sum(r.elastic_cost for r in results) / len(results)
    e1 = sum(r.e1_score for r in results) / len(results)
    return avg_tps, cost, e1


def test_whatif_cdb1_on_demand_scale_down(benchmark):
    def run():
        base = cdb1()
        improved = dataclasses.replace(
            base,
            scaling=dataclasses.replace(
                base.scaling,
                kind=ScalingKind.ON_DEMAND,
                reaction_s=15.0,
            ),
        )
        return {"CDB1 (gradual down)": run_all_patterns(base),
                "CDB1 (on-demand down)": run_all_patterns(improved)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(["variant", "avg TPS", "elastic $", "E1-Score"],
                      title="What-if: CDB1 with on-demand scale-down")
    for name, (tps, cost, e1) in results.items():
        table.add_row(name, round(tps), round(cost, 4), round(e1))
    table.print()
    base = results["CDB1 (gradual down)"]
    improved = results["CDB1 (on-demand down)"]
    assert improved[1] < base[1] * 0.8    # the gradual-down bill disappears
    assert improved[2] > base[2] * 1.3    # E1 jumps


def test_whatif_cdb4_gains_autoscaling(benchmark):
    def run():
        base = cdb4()
        serverless = dataclasses.replace(
            base,
            instance=dataclasses.replace(
                base.instance,
                min_allocation=ComputeAllocation(1, 4),
                serverless=True,
                vcore_step=0.5,
            ),
            scaling=ScalingPolicySpec(
                kind=ScalingKind.ON_DEMAND,
                reaction_s=15.0,
                # the remote buffer pool survives resizes: pages stay hot
                scaling_warm_tau_s=2.0,
            ),
        )
        return {"CDB4 (fixed)": run_all_patterns(base),
                "CDB4 (autoscaling)": run_all_patterns(serverless)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(["variant", "avg TPS", "elastic $", "E1-Score"],
                      title="What-if: CDB4 with autoscaling (warm remote pool)")
    for name, (tps, cost, e1) in results.items():
        table.add_row(name, round(tps), round(cost, 4), round(e1))
    table.print()
    fixed = results["CDB4 (fixed)"]
    auto = results["CDB4 (autoscaling)"]
    assert auto[1] < fixed[1] * 0.7       # big cost cut
    assert auto[2] > fixed[2] * 1.5       # elasticity score jumps
    assert auto[0] > fixed[0] * 0.8       # throughput barely suffers


def test_whatif_cdb2_proactive(benchmark):
    def run():
        base = cdb2()
        proactive = dataclasses.replace(
            base,
            scaling=dataclasses.replace(
                base.scaling,
                kind=ScalingKind.PROACTIVE,
                reaction_s=10.0,
                lead_s=25.0,
            ),
        )
        return {"CDB2 (reactive)": run_all_patterns(base),
                "CDB2 (proactive)": run_all_patterns(proactive)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(["variant", "avg TPS", "elastic $", "E1-Score"],
                      title="What-if: CDB2 with Moneyball-style proactive scaling")
    for name, (tps, cost, e1) in results.items():
        table.add_row(name, round(tps), round(cost, 4), round(e1))
    table.print()
    reactive = results["CDB2 (reactive)"]
    proactive = results["CDB2 (proactive)"]
    assert proactive[0] > reactive[0]     # pre-scaling removes the lag dip
    assert proactive[2] > reactive[2] * 0.95

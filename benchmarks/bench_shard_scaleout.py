"""Shard scale-out bench: fleet throughput vs shard count and 2PC cost.

Drives the payment workload through the sharded fleet
(:mod:`repro.shard`) three ways and asserts the PR's headline claims
deterministically (fixed seed):

* **scale-out** -- with one process per shard (mp driver, all-local
  mix) and a fixed per-shard workload, node-time throughput at 4
  shards reaches at least 3x the 1-shard figure.  Node time is the max
  per-worker CPU time, i.e. the fleet's throughput with a core per
  shard.
* **2PC overhead** -- sweeping the cross-shard ratio on the inline
  driver, every cross-shard commit costs 3 fsyncs per participant
  (PREPARE + DECISION + COMMIT) against 1 for the single-shard fast
  path, so the fsync-per-commit curve climbs with the ratio.
* **group commit** -- batching coordinator decisions collapses one
  DECISION fsync per transaction per shard into one per shard per
  batch.

Runs two ways:

* ``pytest benchmarks/bench_shard_scaleout.py`` -- the bench suite
  path, with the scale-out numbers in ``benchmark.extra_info``;
* ``python benchmarks/bench_shard_scaleout.py [--quick] [--seed N]`` --
  the CI smoke entry point; exits non-zero if any claim fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.report import TextTable
from repro.engine.types import Column, ColumnType, Schema
from repro.shard import ShardedDatabase, run_inline, run_multiprocess

SHARD_COUNTS = [1, 2, 4]
CROSS_RATIOS = [0.0, 0.5, 1.0]


def run_sweeps(quick: bool = False, seed: int = 42):
    """The mp shard-count sweep plus the inline cross-ratio sweep.

    The scale-out sweep holds the *per-shard* transaction count fixed
    (weak scaling): node time is the max per-worker CPU time, so with
    equal work per worker the speedup reads directly as how much total
    throughput a core-per-shard deployment gains per shard added.
    """
    per_shard = 120 if quick else 250
    scaleout = [
        run_multiprocess(n_shards, per_shard * n_shards, seed=seed)
        for n_shards in SHARD_COUNTS
    ]
    cross = [
        run_inline(2, per_shard, cross_ratio=ratio, seed=seed)
        for ratio in CROSS_RATIOS
    ]
    return scaleout, cross


def measure_group_commit(batch: int = 8):
    """Fsyncs for ``batch`` cross-shard txns: one by one vs one batch."""
    costs = {}
    for batched in (False, True):
        fleet = ShardedDatabase(2, name=f"gc-{batched}")
        fleet.create_table(Schema(
            "KV",
            (Column("K", ColumnType.INT, nullable=False),
             Column("V", ColumnType.INT, default=0)),
            primary_key="K",
        ))
        for key in range(batch * 4):
            fleet.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, 0])
        keys = list(range(batch * 4))
        gtxns = []
        before = fleet.fsyncs
        for index in range(batch):
            gtxn = fleet.begin()
            # touch one key per shard so every txn is cross-shard
            pair = [k for k in keys if fleet.router.shard_for("KV", k) == 0]
            other = [k for k in keys if fleet.router.shard_for("KV", k) == 1]
            for key in (pair[index % len(pair)], other[index % len(other)]):
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [index, key], gtxn=gtxn
                )
            if batched:
                gtxns.append(gtxn)
            else:
                gtxn.commit()
        if batched:
            fleet.coordinator.commit_many(gtxns)
        costs[batched] = fleet.fsyncs - before
    return costs[False], costs[True]


def _report(scaleout, cross, unbatched: int, batched: int) -> TextTable:
    base = scaleout[0]
    table = TextTable(
        ["driver", "shards", "cross", "committed", "tps node", "speedup",
         "fsync/commit"],
        title="Fleet scale-out and 2PC cost (payment mix)",
    )
    for result in scaleout:
        table.add_row(
            result.driver, result.n_shards, f"{result.cross_ratio:.0%}",
            result.committed, round(result.tps_node),
            f"x{result.tps_node / base.tps_node:.2f}",
            round(result.fsyncs / max(1, result.committed), 2),
        )
    for result in cross:
        table.add_row(
            result.driver, result.n_shards, f"{result.cross_ratio:.0%}",
            result.committed, round(result.tps_node), "-",
            round(result.fsyncs / max(1, result.committed), 2),
        )
    table.add_row("batch", 2, "100%", "-", "-", "-",
                  f"{unbatched} -> {batched}")
    return table


def _check(scaleout, cross, unbatched: int, batched: int) -> None:
    base = scaleout[0]
    wide = scaleout[-1]
    assert wide.n_shards == 4 and base.n_shards == 1
    # real forked workers, not the sequential fallback, on CI
    speedup = wide.tps_node / base.tps_node
    assert speedup >= 3.0, (
        f"node-time speedup at 4 shards is x{speedup:.2f} "
        f"({wide.driver}); the scale-out claim needs >= x3"
    )
    for result in scaleout:
        assert result.committed == result.transactions, (
            f"{result.aborted} aborts in the all-local mix at "
            f"{result.n_shards} shards"
        )
    # fsync cost climbs with the cross-shard ratio: the fast path pays 1
    # fsync per commit, a 2-participant 2PC commit pays 6
    per_commit = [r.fsyncs / max(1, r.committed) for r in cross]
    assert per_commit == sorted(per_commit), (
        f"fsync/commit not monotone over cross ratios: {per_commit}"
    )
    assert per_commit[0] < 2.0 < per_commit[-1], (
        f"expected ~1 fsync/commit all-local and > 2 all-cross, "
        f"got {per_commit[0]:.2f} and {per_commit[-1]:.2f}"
    )
    # group commit amortizes the DECISION records: 8 txns x 2 shards
    # drop from 3 fsyncs per branch to 2 plus one group fsync per shard
    assert batched < unbatched, (
        f"batched commit cost {batched} fsyncs vs {unbatched} unbatched"
    )


def test_shard_scaleout(benchmark):
    scaleout, cross = benchmark.pedantic(
        run_sweeps, kwargs={"quick": True}, rounds=1, iterations=1
    )
    unbatched, batched = measure_group_commit()
    _report(scaleout, cross, unbatched, batched).print()
    base = scaleout[0]
    benchmark.extra_info["tps_node_1_shard"] = base.tps_node
    benchmark.extra_info["tps_node_4_shards"] = scaleout[-1].tps_node
    benchmark.extra_info["speedup_4_shards"] = scaleout[-1].tps_node / base.tps_node
    benchmark.extra_info["mp_driver"] = scaleout[-1].driver
    _check(scaleout, cross, unbatched, batched)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (120 txns/shard)"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="workload and datagen seed"
    )
    args = parser.parse_args(argv)
    scaleout, cross = run_sweeps(quick=args.quick, seed=args.seed)
    unbatched, batched = measure_group_commit()
    _report(scaleout, cross, unbatched, batched).print()
    try:
        _check(scaleout, cross, unbatched, batched)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    base, wide = scaleout[0], scaleout[-1]
    print(
        f"node-time speedup x{wide.tps_node / base.tps_node:.2f} at "
        f"{wide.n_shards} shards ({wide.driver} driver); group commit "
        f"{unbatched} -> {batched} fsyncs per {8}-txn batch"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table I: feature comparison against existing OLTP benchmarks.

Unlike the other benches this one *probes the implementations*: for
each feature row of Table I it checks, in code, whether the benchmark
in question actually exposes the capability -- CloudyBench through this
repository's evaluators, SysBench/YCSB/TPC-C through the baseline
implementations shipped alongside.
"""

from repro.baselines.sysbench import SysbenchWorkload
from repro.baselines.tpcc import STANDARD_MIX
from repro.baselines.ycsb import WORKLOADS
from repro.core.elasticity import ELASTIC_PATTERNS
from repro.core.metrics import PerfectScores
from repro.core.multitenancy import TENANCY_PATTERNS
from repro.core.report import TextTable
from repro.core.sqlreader import SqlStmts


def probe_features():
    """Feature -> {benchmark: bool} derived from the code base."""
    stmts = SqlStmts()
    cloudy_has_transactions = len(stmts.statements("T2")) > 1
    return {
        "Domain-specific cloud-native application": {
            "SysBench": False, "YCSB": False, "TPC-C": False,
            "CloudyBench": stmts.spec("T2").name == "Order Payment",
        },
        "OLTP evaluation with ACID": {
            "SysBench": True, "YCSB": False, "TPC-C": True,
            "CloudyBench": cloudy_has_transactions,
        },
        "Elasticity evaluation with peaks and valleys": {
            "SysBench": False, "YCSB": False, "TPC-C": False,
            "CloudyBench": len(ELASTIC_PATTERNS) >= 4,
        },
        "Multi-tenancy evaluation with contention patterns": {
            "SysBench": False, "YCSB": False, "TPC-C": False,
            "CloudyBench": len(TENANCY_PATTERNS) >= 4,
        },
        "Fail-over evaluation with built-in module": {
            "SysBench": False, "YCSB": False, "TPC-C": False,
            "CloudyBench": True,  # FailOverEvaluator + restart model
        },
        "Replication lag time evaluation": {
            "SysBench": False, "YCSB": False, "TPC-C": False,
            "CloudyBench": True,  # LagTimeEvaluator with real probes
        },
        "Cloud-native metrics with performance and cost": {
            "SysBench": False, "YCSB": False, "TPC-C": False,
            "CloudyBench": len(PerfectScores.__dataclass_fields__) >= 10,
        },
    }


def test_table1_features(benchmark):
    features = benchmark.pedantic(probe_features, rounds=1, iterations=1)

    columns = ["SysBench", "YCSB", "TPC-C", "CloudyBench"]
    table = TextTable(
        ["feature", *columns],
        title="Table I -- CloudyBench vs existing OLTP benchmarks",
    )
    for feature, support in features.items():
        table.add_row(
            feature, *["yes" if support[column] else "-" for column in columns]
        )
    table.print()

    # CloudyBench is the only benchmark covering all seven features
    assert all(support["CloudyBench"] for support in features.values())
    for baseline in ("SysBench", "YCSB", "TPC-C"):
        assert not all(support[baseline] for support in features.values())
    # the baselines genuinely exist in this repository
    assert set(WORKLOADS) == set("ABCDEF")
    assert sum(STANDARD_MIX.values()) == 100
    assert SysbenchWorkload.__name__ == "SysbenchWorkload"

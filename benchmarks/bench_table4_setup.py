"""Table IV: the experimental setting of the five SUTs.

Dumps the architecture registry in the paper's Table IV layout and
verifies the configuration invariants (engines, compute ranges,
networks, serverless flags, buffer sizes).
"""

from benchmarks.conftest import arch_display
from repro.cloud.architectures import all_architectures
from repro.cloud.specs import NetworkKind
from repro.core.report import TextTable

GIB = 2**30
MIB = 2**20


def test_table4_setup(benchmark):
    architectures = benchmark.pedantic(all_architectures, rounds=1, iterations=1)

    table = TextTable(
        ["database", "engine", "CPU & memory", "network", "serverless", "buffer"],
        title="Table IV -- experimental setting of the SUTs",
    )
    for arch in architectures:
        spec = arch.instance
        if spec.serverless:
            compute = (f"{spec.min_allocation.vcores:g} vCores, "
                       f"{spec.min_allocation.memory_gb:g}GB - "
                       f"{spec.max_allocation.vcores:g} vCores, "
                       f"{spec.max_allocation.memory_gb:g}GB")
        else:
            compute = (f"{spec.max_allocation.vcores:g} vCores, "
                       f"{spec.max_allocation.memory_gb:g}GB RAM")
        if arch.remote_buffer_bytes:
            compute += f" + {arch.remote_buffer_bytes // GIB}GB remote"
        buffer = (f"{arch.buffer_bytes // GIB}GB" if arch.buffer_bytes >= GIB
                  else f"{arch.buffer_bytes // MIB}MB")
        table.add_row(
            arch_display(arch.name), arch.engine, compute,
            f"10 Gbps {arch.network.kind.value.upper()}",
            "yes" if spec.serverless else "no", buffer,
        )
    table.print()

    by_name = {arch.name: arch for arch in architectures}
    assert by_name["aws_rds"].engine == "PostgreSQL 15"
    assert by_name["cdb2"].engine == "SQL Server 12"
    assert by_name["cdb4"].engine == "MySQL 8"
    assert by_name["cdb2"].buffer_bytes == 44 * MIB
    assert by_name["cdb4"].buffer_bytes == 10 * GIB
    assert by_name["cdb4"].network.kind is NetworkKind.RDMA
    serverless = {name for name, arch in by_name.items() if arch.instance.serverless}
    assert serverless == {"cdb1", "cdb2", "cdb3"}

"""Overload knee bench: goodput past saturation with and without qos.

Sweeps offered load from half of saturation to 3x past it with the
overload evaluator (:mod:`repro.qos.overload`) in both configurations
and asserts the PR's headline claims deterministically (fixed seed):

* **qos on** -- goodput at 2x the saturation load stays within 20% of
  the peak, the admission queue stays bounded at the policy cap, and
  successful requests finish within their deadline (p99 <= deadline).
* **qos off** -- goodput at 2x collapses below 50% of the peak while
  the unbounded queue grows past any admission bound.

Runs two ways:

* ``pytest benchmarks/bench_overload_knee.py`` -- the bench suite path,
  with the knee numbers in ``benchmark.extra_info``;
* ``python benchmarks/bench_overload_knee.py [--quick] [--seed N]`` --
  the CI smoke entry point; exits non-zero if either claim fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.cloud.architectures import get as get_architecture
from repro.core.report import TextTable
from repro.qos.overload import OverloadEvaluator, OverloadResult

ARCH = "aws_rds"
MULTIPLES = [0.5, 1.0, 1.5, 2.0, 3.0]


def run_sweeps(quick: bool = False, seed: int = 42):
    """One qos-on and one qos-off sweep of the same arrival schedule."""
    arch = get_architecture(ARCH)
    duration_s = 3.0 if quick else 6.0
    sweeps = {}
    for qos in (True, False):
        evaluator = OverloadEvaluator(arch, qos=qos, duration_s=duration_s, seed=seed)
        sweeps[qos] = evaluator.run(list(MULTIPLES))
    return sweeps[True], sweeps[False]


def _report(with_qos: OverloadResult, without: OverloadResult) -> TextTable:
    table = TextTable(
        ["qos", "load", "offered", "goodput", "shed", "expired",
         "timeouts", "p99 ms", "queue max"],
        title=f"Goodput past the knee ({ARCH}, capacity "
              f"{with_qos.capacity_rps:g} rps, deadline "
              f"{with_qos.deadline_s * 1000:g} ms)",
    )
    for result in (with_qos, without):
        for point in result.points:
            table.add_row(
                "on" if result.qos else "off", f"x{point.multiple:g}",
                round(point.offered_rps), round(point.goodput_rps, 1),
                point.shed, point.expired, point.timeouts,
                round(point.p99_latency_s * 1000, 1), point.peak_queue_depth,
            )
    return table


def _check(with_qos: OverloadResult, without: OverloadResult) -> None:
    protected = with_qos.point_at(2.0)
    unprotected = without.point_at(2.0)
    assert protected is not None and unprotected is not None
    # graceful degradation: within 20% of peak at twice the saturation load
    assert protected.goodput_rps >= 0.8 * with_qos.peak_goodput_rps, (
        f"qos goodput at 2x fell to {protected.goodput_rps:.0f} rps "
        f"(peak {with_qos.peak_goodput_rps:.0f})"
    )
    # backpressure: the admission queue never exceeds the policy cap,
    # and whatever completes does so within its deadline
    for point in with_qos.points:
        assert point.peak_queue_depth <= 2 * 32, (
            f"qos queue unbounded at x{point.multiple:g}: "
            f"{point.peak_queue_depth}"
        )
    assert protected.p99_latency_s <= with_qos.deadline_s
    # the baseline collapses: > 50% goodput loss past the knee
    assert unprotected.goodput_rps <= 0.5 * without.peak_goodput_rps, (
        f"no-qos goodput at 2x held at {unprotected.goodput_rps:.0f} rps "
        f"(peak {without.peak_goodput_rps:.0f}); the baseline should collapse"
    )
    assert unprotected.peak_queue_depth > 10 * 32
    # the D-Scores order the two configurations unambiguously
    assert with_qos.dscore > 0.8 > 0.5 > without.dscore


def test_overload_knee(benchmark):
    with_qos, without = benchmark.pedantic(
        run_sweeps, kwargs={"quick": True}, rounds=1, iterations=1
    )
    _report(with_qos, without).print()
    benchmark.extra_info["dscore_qos"] = with_qos.dscore
    benchmark.extra_info["dscore_noqos"] = without.dscore
    benchmark.extra_info["goodput_2x_qos"] = with_qos.point_at(2.0).goodput_rps
    benchmark.extra_info["goodput_2x_noqos"] = without.point_at(2.0).goodput_rps
    _check(with_qos, without)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (3 s per point)"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="arrival-schedule seed"
    )
    args = parser.parse_args(argv)
    with_qos, without = run_sweeps(quick=args.quick, seed=args.seed)
    _report(with_qos, without).print()
    try:
        _check(with_qos, without)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"D-Score {with_qos.dscore:.3f} with qos vs {without.dscore:.3f} without; "
        f"goodput at 2x: {with_qos.point_at(2.0).goodput_rps:.0f} rps "
        f"vs {without.point_at(2.0).goodput_rps:.0f} rps"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

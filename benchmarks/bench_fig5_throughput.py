"""Figure 5: transaction-processing throughput of the five SUTs.

Regenerates the full TPS matrix -- 5 systems x SF{1,10,100} x
{RO,RW,WO} x concurrency {50,100,150,200} -- and asserts the paper's
four observations:

1. CDB4 has the highest overall throughput (about 3x CDB2).
2. CDB3 outperforms CDB1 (Local File Cache + parallel replay).
3. CDB2's throughput is bounded as concurrency grows (44 MB buffer).
4. AWS RDS leads read-write at SF1/low concurrency but falls off as
   data and concurrency grow (dirty-page flushing + checkpointing).
"""

from benchmarks.conftest import arch_display
from repro.core.report import TextTable


def collect_matrix(bench):
    return bench.run("throughput").payload


def test_fig5_throughput(benchmark, bench_full):
    data = benchmark.pedantic(collect_matrix, args=(bench_full,), rounds=1, iterations=1)
    config = bench_full.config

    for sf in config.scale_factors:
        table = TextTable(
            ["system", "mode", *[f"con={c}" for c in config.concurrencies]],
            title=f"Figure 5 -- TPS at SF{sf}",
        )
        for arch in bench_full.architectures:
            for mode in config.modes:
                table.add_row(
                    arch_display(arch.name), mode,
                    *[round(data[(arch.name, sf, mode, con)])
                      for con in config.concurrencies],
                )
        table.print()

    def avg(name, mode=None, sf=None, con=None):
        values = [
            tps for (a, s, m, c), tps in data.items()
            if a == name
            and (mode is None or m == mode)
            and (sf is None or s == sf)
            and (con is None or c == con)
        ]
        return sum(values) / len(values)

    averages = {arch.name: avg(arch.name) for arch in bench_full.architectures}
    benchmark.extra_info["avg_tps"] = {k: round(v) for k, v in averages.items()}

    # Observation 1: CDB4 wins overall, by roughly 2-4x over CDB2.
    assert max(averages, key=averages.get) == "cdb4"
    assert 1.8 < averages["cdb4"] / averages["cdb2"] < 4.5

    # Observation 2: CDB3 > CDB1 overall.
    assert averages["cdb3"] > averages["cdb1"]

    # Observation 3: CDB2 plateaus with concurrency.
    cdb2_by_con = [avg("cdb2", mode="RO", sf=1, con=c) for c in (100, 150, 200)]
    assert cdb2_by_con[2] < cdb2_by_con[1] * 1.1

    # Observation 4: RDS wins RW at SF1 / con<=100 ...
    for rival in ("cdb1", "cdb2", "cdb3"):
        assert avg("aws_rds", "RW", 1, 100) > avg(rival, "RW", 1, 100)
    # ... but CDB3 catches up at SF100 / high concurrency.
    ratio = avg("cdb3", "RW", 100, 200) / avg("aws_rds", "RW", 100, 200)
    assert ratio > 0.65

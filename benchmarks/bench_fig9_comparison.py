"""Figure 9: CPU fluctuation -- CloudyBench vs SysBench vs TPC-C.

Reruns the paper's 12-minute experiment on CDB3: CloudyBench's four
elasticity patterns execute back to back, while SysBench (constant 11
threads on 3x300k-row tables) and TPC-C (constant 44 threads at scale
factor 1) run flat.  The allocated vCores are sampled each minute and
the per-benchmark scaling ranges compared.

Paper observations asserted:

* CloudyBench's patterns swing CDB3 across most of its CU range with a
  large single-minute drop (paper: 3.25 -> 1 vCore between minutes 9
  and 10, a 2.25-vCore drop);
* SysBench's and TPC-C's constant workloads keep CDB3 nearly flat (the
  paper sees at most a 1-vCore change between any two slots).
"""

from repro.baselines.sysbench import sysbench_mix
from repro.baselines.tpcc import tpcc_mix
from repro.cloud.architectures import get
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator, custom_pattern
from repro.core.report import TextTable, sparkline

#: paper thread counts: peak and valley points of CloudyBench's tau
SYSBENCH_THREADS = 11
TPCC_THREADS = 44
MINUTES = 12


def run_comparison(bench):
    arch = get("cdb3")
    tau = bench.elastic_tau("RW")

    # CloudyBench: the four patterns back to back (12 one-minute slots)
    proportions = []
    for key in ("single_peak", "large_spike", "single_valley", "zero_valley"):
        proportions.extend(ELASTIC_PATTERNS[key].proportions)
    cloudy_pattern = custom_pattern("all_patterns", proportions)
    cloudy = ElasticityEvaluator(
        arch, bench.workload_mix("RW", 1), measure_window_s=MINUTES * 60.0
    ).run(cloudy_pattern, tau)

    flat = [1.0] * MINUTES
    sysbench = ElasticityEvaluator(
        arch, sysbench_mix("oltp_read_write"), measure_window_s=MINUTES * 60.0
    ).run(custom_pattern("sysbench_flat", flat), SYSBENCH_THREADS)
    tpcc = ElasticityEvaluator(
        arch, tpcc_mix(warehouses=1), measure_window_s=MINUTES * 60.0
    ).run(custom_pattern("tpcc_flat", flat), TPCC_THREADS)
    return cloudy, sysbench, tpcc


def per_minute_vcores(result, minutes=MINUTES):
    series = result.collector.vcores
    return [series.average(m * 60.0, (m + 1) * 60.0) for m in range(minutes)]


def test_fig9_benchmark_comparison(benchmark, bench_full):
    cloudy, sysbench, tpcc = benchmark.pedantic(
        run_comparison, args=(bench_full,), rounds=1, iterations=1
    )

    series = {
        "CloudyBench": per_minute_vcores(cloudy),
        "SysBench": per_minute_vcores(sysbench),
        "TPC-C": per_minute_vcores(tpcc),
    }
    table = TextTable(
        ["minute", *series.keys()],
        title="Figure 9 -- CDB3 allocated vCores per minute",
    )
    for minute in range(MINUTES):
        table.add_row(minute + 1, *[round(series[k][minute], 2) for k in series])
    table.print()
    for name, values in series.items():
        print(f"{name:12s} {sparkline(values, width=24)}")
    print()

    def scaling_range(values):
        return max(values) - min(values)

    def max_drop(values):
        return max(
            (a - b for a, b in zip(values, values[1:])), default=0.0
        )

    ranges = {name: scaling_range(values) for name, values in series.items()}
    drops = {name: max_drop(values) for name, values in series.items()}
    benchmark.extra_info["vcore_range"] = {k: round(v, 2) for k, v in ranges.items()}

    # CloudyBench exercises far more of the CU range than either baseline
    assert ranges["CloudyBench"] > 2.0
    assert ranges["CloudyBench"] > 2 * ranges["SysBench"]
    assert ranges["CloudyBench"] > 2 * ranges["TPC-C"]

    # the largest minute-over-minute drop belongs to CloudyBench
    assert drops["CloudyBench"] > 1.5          # paper: 2.25 vCores
    assert drops["SysBench"] <= 1.0            # paper: <= 1 vCore
    assert drops["TPC-C"] <= 1.0

    # baselines never reach the top of the range CloudyBench reaches
    assert max(series["CloudyBench"]) > max(series["SysBench"])
    assert max(series["CloudyBench"]) >= max(series["TPC-C"])

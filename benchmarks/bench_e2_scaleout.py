"""Section III-G's scale-out claim and the E2-Score (Equation 5).

The paper reports that adding one RO node takes AWS RDS from 17 003 to
36 198 TPS (its local-SSD replica owns a full copy), giving it the
highest E2-Score (20), while shared-storage CDB replicas gain less
(CDB1's E2 is 3).  This bench regenerates TPS versus the number of RO
nodes for every SUT and the resulting E2 column of Table IX.
"""

from benchmarks.conftest import arch_display
from repro.core.metrics import e2_score, scale_out_tps
from repro.core.report import TextTable

NODES = [0, 1, 2, 3]


def run_scaleout(bench):
    workload = bench.workload_mix("RW", 1)
    data = {}
    for arch in bench.architectures:
        series = [scale_out_tps(arch, workload, 150, nodes) for nodes in NODES]
        data[arch.name] = (series, e2_score(arch, workload))
    return data


def test_e2_scaleout(benchmark, bench_full):
    data = benchmark.pedantic(run_scaleout, args=(bench_full,),
                              rounds=1, iterations=1)

    table = TextTable(
        ["system", *[f"TPS +{n} RO" for n in NODES], "E2-Score"],
        title="Scale-out: TPS vs added RO nodes (RW mix, con=150)",
    )
    for name, (series, e2) in data.items():
        table.add_row(arch_display(name), *[round(v) for v in series], round(e2, 1))
    table.print()

    e2s = {name: e2 for name, (series, e2) in data.items()}
    benchmark.extra_info["e2"] = {k: round(v, 1) for k, v in e2s.items()}

    # paper: RDS highest E2, CDB1 lowest
    assert max(e2s, key=e2s.get) == "aws_rds"
    assert min(e2s, key=e2s.get) == "cdb1"

    # paper: one RO node roughly doubles RDS's read-heavy throughput
    rds_series, _ = data["aws_rds"]
    gain = rds_series[1] / rds_series[0]
    assert 1.7 < gain < 2.6  # paper: 36198 / 17003 = 2.13

    # every SUT gains monotonically; shared-storage replicas gain less
    for name, (series, _e2) in data.items():
        assert all(b > a for a, b in zip(series, series[1:]))
    cdb1_gain = data["cdb1"][0][1] / data["cdb1"][0][0]
    assert cdb1_gain < gain

"""Section III-F: replication lag time between RW and RO nodes.

The only *fully functional* experiment: real transactions execute on a
real primary engine, WAL batches travel through each architecture's
simulated replication pipeline, and a prober polls the real replica
until every change is visible.  Four IUD mixes are measured, as in the
paper: (60,30,10), (100,0,0), (0,100,0), (0,0,100).

Asserted shape (paper values in ms: CDB4 1.5 << CDB3 14 << CDB1 177
<< CDB2 1082, with AWS RDS small thanks to coupled storage):

* the architecture ordering holds with order-of-magnitude separation
  between CDB3, CDB1, and CDB2;
* deletes lag the least (logical deletion).
"""

from benchmarks.conftest import arch_display
from repro.core.report import TextTable


def test_lagtime(benchmark, bench_full):
    results = benchmark.pedantic(
        lambda: bench_full.run("lagtime").payload, rounds=1, iterations=1
    )

    table = TextTable(
        ["system", "pattern", "insert (ms)", "update (ms)", "delete (ms)",
         "avg (ms)", "C-Score (ms)"],
        title="Replication lag time (Section III-F)",
    )
    for arch_name, by_pattern in results.items():
        for pattern, result in by_pattern.items():
            table.add_row(
                arch_display(arch_name), pattern,
                round(result.insert_lag_s * 1000, 2),
                round(result.update_lag_s * 1000, 2),
                round(result.delete_lag_s * 1000, 2),
                round(result.avg_lag_s * 1000, 2),
                round(result.c_score_s * 1000, 2),
            )
    table.print()

    mixed = {name: by_pattern["mixed"].avg_lag_s * 1000
             for name, by_pattern in results.items()}
    benchmark.extra_info["mixed_lag_ms"] = {
        k: round(v, 2) for k, v in mixed.items()
    }

    # ordering with order-of-magnitude separations
    assert mixed["cdb4"] < mixed["cdb3"] < mixed["aws_rds"] \
        < mixed["cdb1"] < mixed["cdb2"]
    assert mixed["cdb1"] > 5 * mixed["cdb3"]      # paper: 177 vs 14
    assert mixed["cdb2"] > 3 * mixed["cdb1"]      # paper: 1082 vs 177
    assert mixed["cdb4"] < 5.0                    # paper: 1.5 ms

    # deletes lag least on every SUT (logical deletion)
    for name, by_pattern in results.items():
        delete_lag = by_pattern["delete"].avg_lag_s
        insert_lag = by_pattern["insert"].avg_lag_s
        update_lag = by_pattern["update"].avg_lag_s
        assert delete_lag <= min(insert_lag, update_lag) * 1.25

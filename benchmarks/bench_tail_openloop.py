"""Coordinated-omission demo: open-loop vs closed-loop tails at the knee.

A closed-loop driver waits for each reply before issuing the next
request, so when the server stalls the driver *stops offering load* --
the stall shows up once instead of once per request that should have
arrived during it.  An open-loop driver keeps the arrival schedule and
measures from each request's *scheduled* start, so the backlog lands in
the tail.

This bench drives the perf harness's oltp workload through both
recordings of the *same* service-time sequence at a sweep of offered
rates around the measured capacity (the knee) and asserts:

* **below the knee** (0.5x capacity) the two tails roughly agree --
  queueing is negligible, so open-loop adds little;
* **at and past the knee** (1x, 1.2x) the open-loop p99 is at least the
  closed-loop p99, and past the knee it is *far* above it -- the gap
  coordinated omission hides.

Runs two ways:

* ``pytest benchmarks/bench_tail_openloop.py`` -- bench suite path;
* ``python benchmarks/bench_tail_openloop.py [--quick] [--seed N]`` --
  the CI smoke entry point; exits non-zero if the claims fail.
"""

from __future__ import annotations

import argparse
import sys

import time

from repro.core.report import TextTable
from repro.obs.metrics import Histogram
from repro.perf.harness import TwoStageHarness
from repro.perf.openloop import ArrivalSpec, arrival_offsets, replay_open_loop
from repro.sim.rng import RngRegistry, derive_seed

RATE_FACTORS = (0.5, 1.0, 1.2)
KNEE_FACTORS = (1.0, 1.2)


def run_sweep(quick: bool = False, seed: int = 42):
    """Measure one service-time sequence, replay it under each rate.

    The service durations come from one closed-loop drive of the perf
    harness's oltp workload; each open-loop view is then pure
    virtual-queue arithmetic over those same durations and a seeded
    Poisson schedule at ``factor x capacity``.  One execution, N
    recordings -- the comparison cannot be polluted by run-to-run
    service noise, and both tails use the same histogram estimator.
    """
    txns = 192 if quick else 768
    spec = TwoStageHarness(seed=seed, profile=False).workload("oltp")
    run_one, _counters = spec.build(derive_seed(seed, "bench.tail.measured"))
    service_s = []
    for _ in range(txns):
        begin = time.perf_counter()
        run_one()
        service_s.append(time.perf_counter() - begin)
    capacity = len(service_s) / sum(service_s)
    closed = Histogram("service_s")
    for duration in service_s:
        closed.observe(duration)
    points = []
    for factor in RATE_FACTORS:
        rate = capacity * factor
        rng = RngRegistry(
            derive_seed(seed, "bench.tail.arrival")
        ).stream(f"poisson.{factor:g}")
        schedule = arrival_offsets(
            ArrivalSpec(kind="poisson", rate=rate), rate, len(service_s), rng
        )
        openloop = replay_open_loop(service_s, schedule)
        points.append({
            "factor": factor,
            "rate": rate,
            "closed_p99_ms": closed.percentile(99.0) * 1000.0,
            "open_p99_ms": openloop.percentile_ms(99.0),
            "open_p50_ms": openloop.percentile_ms(50.0),
        })
    return capacity, points


def _report(capacity: float, points) -> TextTable:
    table = TextTable(
        ["offered", "rate rps", "closed p99 ms", "open p99 ms", "gap"],
        title=f"Tail latency with and without coordinated omission "
              f"(oltp, capacity {capacity:.0f} tps)",
    )
    for point in points:
        gap = (
            point["open_p99_ms"] / point["closed_p99_ms"]
            if point["closed_p99_ms"] > 0 else float("inf")
        )
        table.add_row(
            f"x{point['factor']:g}", round(point["rate"]),
            round(point["closed_p99_ms"], 2), round(point["open_p99_ms"], 2),
            f"x{gap:.1f}",
        )
    return table


def _check(points) -> None:
    by_factor = {point["factor"]: point for point in points}
    for factor in KNEE_FACTORS:
        point = by_factor[factor]
        # the headline acceptance: CO-free recording can only reveal
        # more waiting, never less
        assert point["open_p99_ms"] >= point["closed_p99_ms"], (
            f"open-loop p99 {point['open_p99_ms']:.2f} ms fell below the "
            f"closed-loop p99 {point['closed_p99_ms']:.2f} ms at "
            f"x{factor:g} offered load"
        )
    past = by_factor[1.2]
    # past the knee the virtual queue grows without bound: the hidden
    # backlog dwarfs any single service time
    assert past["open_p99_ms"] >= 3.0 * past["closed_p99_ms"], (
        f"past the knee the open-loop p99 ({past['open_p99_ms']:.2f} ms) "
        f"should dwarf the closed-loop p99 ({past['closed_p99_ms']:.2f} ms)"
    )
    # well below the knee there is (almost) no queue to hide
    calm = by_factor[0.5]
    assert calm["open_p99_ms"] <= 10.0 * calm["closed_p99_ms"], (
        f"at half capacity the open-loop tail ({calm['open_p99_ms']:.2f} ms) "
        f"should be near the service tail ({calm['closed_p99_ms']:.2f} ms)"
    )


def test_tail_openloop(benchmark):
    capacity, points = benchmark.pedantic(
        run_sweep, kwargs={"quick": True}, rounds=1, iterations=1
    )
    _report(capacity, points).print()
    for point in points:
        benchmark.extra_info[f"open_p99_ms_x{point['factor']:g}"] = (
            point["open_p99_ms"]
        )
        benchmark.extra_info[f"closed_p99_ms_x{point['factor']:g}"] = (
            point["closed_p99_ms"]
        )
    _check(points)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (192 txns)"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="workload + schedule seed"
    )
    args = parser.parse_args(argv)
    capacity, points = run_sweep(quick=args.quick, seed=args.seed)
    _report(capacity, points).print()
    try:
        _check(points)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    knee = next(p for p in points if p["factor"] == 1.0)
    print(
        f"at the knee: open-loop p99 {knee['open_p99_ms']:.2f} ms >= "
        f"closed-loop p99 {knee['closed_p99_ms']:.2f} ms"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""HA failover bench: unavailability window and TPS recovery.

Runs the HA evaluator (:mod:`repro.ha.evaluator`) once per replication
ack mode: a two-shard primary/standby fleet, the PAIRS workload driven
through a retrying client session, and one primary killed mid-run by
the chaos plan.  Asserts the PR's headline claims deterministically
(fixed seed):

* **consistency** -- the history checker finds zero violations in both
  modes, so every acked commit survived the promotion;
* **bounded outage** -- exactly one failover (promotion, not restart)
  fires, and the measured unavailability window (kill -> serving again)
  sits under the analytic bound ``lease + replay + backoff slack``;
* **recovery** -- post-failover throughput returns to at least 90% of
  the pre-kill rate, and end-to-end availability stays >= 0.95 (the
  retry stack rides out the outage).

Runs two ways:

* ``pytest benchmarks/bench_ha_failover.py`` -- the bench suite path,
  with the window and R-Scores in ``benchmark.extra_info``;
* ``python benchmarks/bench_ha_failover.py [--quick] [--seed N]`` --
  the CI smoke entry point; exits non-zero if any claim fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from repro.core.report import TextTable
from repro.ha.evaluator import HAEvaluator, HAResult
from repro.ha.replication import ACK_MODES


def run_modes(quick: bool = False, seed: int = 42) -> Dict[str, HAResult]:
    """One kill-and-recover run per replication ack mode."""
    txns = 120 if quick else 300
    return {
        mode: HAEvaluator(ack_mode=mode, txns=txns, seed=seed).run()
        for mode in ACK_MODES
    }


def _report(results: Dict[str, HAResult]) -> TextTable:
    table = TextTable(
        ["ack", "txns", "acked", "availability", "failovers",
         "unavail ms", "bound ms", "pre TPS", "post TPS", "violations", "R"],
        title="Shard failover: unavailability window and TPS recovery",
    )
    for mode, result in results.items():
        table.add_row(
            mode, result.txns, result.acked, f"{result.availability:.4f}",
            result.failovers,
            round(result.unavailable_s * 1000, 1),
            round(result.bound_s * 1000, 1),
            round(result.pre_kill_tps, 1), round(result.post_recovery_tps, 1),
            len(result.violations), round(result.r_score, 4),
        )
    return table


def _check(results: Dict[str, HAResult]) -> None:
    for mode, result in results.items():
        # every acked commit survived the promotion
        assert result.consistent, (
            f"{mode}: history violations {result.violations}"
        )
        # the kill was detected and handled by promotion, not restart
        assert result.failovers == 1 and result.restarts == 0, (
            f"{mode}: expected one promotion, got "
            f"{result.failovers} promotions / {result.restarts} restarts"
        )
        # the outage is bounded by detection lease + replay + backoffs
        assert result.unavailable_s <= result.bound_s, (
            f"{mode}: unavailable {result.unavailable_s * 1000:.1f}ms "
            f"exceeds bound {result.bound_s * 1000:.1f}ms"
        )
        # the retry stack rides the window out end to end
        assert result.availability >= 0.95, (
            f"{mode}: availability {result.availability:.4f} < 0.95"
        )
        # and throughput comes back once the promoted shard serves
        assert result.post_recovery_tps >= 0.9 * result.pre_kill_tps, (
            f"{mode}: post-failover TPS {result.post_recovery_tps:.1f} "
            f"< 90% of pre-kill {result.pre_kill_tps:.1f}"
        )


def test_ha_failover(benchmark):
    results = benchmark.pedantic(
        run_modes, kwargs={"quick": True}, rounds=1, iterations=1
    )
    _report(results).print()
    for mode, result in results.items():
        benchmark.extra_info[f"r_score_{mode}"] = result.r_score
        benchmark.extra_info[f"unavailable_ms_{mode}"] = result.unavailable_s * 1000
    _check(results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (120 txns per mode)"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    args = parser.parse_args(argv)
    results = run_modes(quick=args.quick, seed=args.seed)
    _report(results).print()
    try:
        _check(results)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    sync, semi = results["sync"], results["semisync"]
    print(
        f"unavailability {sync.unavailable_s * 1000:.1f}ms sync / "
        f"{semi.unavailable_s * 1000:.1f}ms semisync "
        f"(bound {sync.bound_s * 1000:.1f}ms); "
        f"R={sync.r_score:.4f} / {semi.r_score:.4f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""MVCC contention bench: read-only goodput under a read-write mix.

The motivating scenario for snapshot reads: writers hold exclusive
locks on a small hot set while readers point-read those same keys.

* Under 2PL (``READ_COMMITTED``), the no-wait lock manager aborts every
  reader that touches a locked key -- goodput collapses to the abort
  rate.
* Under ``SNAPSHOT``, readers resolve the committed image from the
  version chain without taking locks -- goodput is untouched by the
  writers.

The bench interleaves the two roles deterministically (one writer
transaction pinning the hot set per round, a burst of readers inside
it), measures reader goodput for both isolation levels, and asserts

* snapshot goodput exceeds 2PL goodput, and
* version-chain memory stays bounded by vacuum/GC throughout.

Runs two ways:

* ``pytest benchmarks/bench_mvcc_contention.py`` -- the usual bench
  suite path, with numbers in ``benchmark.extra_info``;
* ``python benchmarks/bench_mvcc_contention.py [--quick]`` -- the CI
  smoke entry point; exits non-zero if snapshot does not win.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

from repro.core.report import TextTable
from repro.engine.database import Database
from repro.engine.errors import TransactionAborted
from repro.engine.txn import IsolationLevel
from repro.engine.types import Column, ColumnType, Schema

HOT_KEYS = 8
#: deliberately small so GC runs many times within one bench
AUTO_VACUUM_VERSIONS = 256


@dataclass
class ContentionResult:
    isolation: str
    reads_ok: int
    reads_aborted: int
    goodput_tps: float
    peak_versions: int
    final_versions: int

    @property
    def success_rate(self) -> float:
        attempts = self.reads_ok + self.reads_aborted
        return self.reads_ok / attempts if attempts else 0.0


def _make_db() -> Database:
    db = Database("mvcc-bench", auto_vacuum_versions=AUTO_VACUUM_VERSIONS)
    db.create_table(Schema(
        "HOT",
        (
            Column("K", ColumnType.INT, nullable=False),
            Column("V", ColumnType.INT, nullable=False),
        ),
        primary_key="K",
    ))
    for key in range(1, HOT_KEYS + 1):
        db.execute("INSERT INTO HOT VALUES (?, ?)", [key, 0])
    return db


def run_contention(
    isolation: IsolationLevel, rounds: int, readers_per_round: int
) -> ContentionResult:
    """Readers at ``isolation`` racing a 2PL writer pinning the hot set."""
    db = _make_db()
    reads_ok = reads_aborted = 0
    peak_versions = 0
    started = time.perf_counter()
    for round_no in range(rounds):
        writer = db.begin()  # X locks on every hot key, held across the burst
        for key in range(1, HOT_KEYS + 1):
            db.execute(
                "UPDATE HOT SET V = ? WHERE K = ?", [round_no, key], txn=writer
            )
        for reader_no in range(readers_per_round):
            key = 1 + (reader_no % HOT_KEYS)
            txn = db.begin(isolation)
            try:
                db.execute(
                    "SELECT V FROM HOT WHERE K = ?", [key], txn=txn
                ).scalar()
                txn.commit()
                reads_ok += 1
            except TransactionAborted:
                reads_aborted += 1
        writer.commit()
        peak_versions = max(peak_versions, db.live_versions())
    elapsed = time.perf_counter() - started
    final = db.live_versions()
    db.checkpoint()  # quiesced vacuum must collapse every chain
    assert db.live_versions() == 0, "vacuum left versions after quiescence"
    return ContentionResult(
        isolation=isolation.name,
        reads_ok=reads_ok,
        reads_aborted=reads_aborted,
        goodput_tps=reads_ok / elapsed if elapsed else 0.0,
        peak_versions=peak_versions,
        final_versions=final,
    )


def run_comparison(quick: bool = False):
    rounds = 40 if quick else 200
    readers = 32 if quick else 64
    twopl = run_contention(IsolationLevel.READ_COMMITTED, rounds, readers)
    snapshot = run_contention(IsolationLevel.SNAPSHOT, rounds, readers)
    return twopl, snapshot


def _report(twopl: ContentionResult, snapshot: ContentionResult) -> TextTable:
    table = TextTable(
        ["readers", "reads ok", "aborted", "goodput (r/s)",
         "peak versions", "final versions"],
        title="RO goodput under a hot-set writer: 2PL vs snapshot",
    )
    for result in (twopl, snapshot):
        table.add_row(
            result.isolation, result.reads_ok, result.reads_aborted,
            round(result.goodput_tps), result.peak_versions,
            result.final_versions,
        )
    return table


def _check(twopl: ContentionResult, snapshot: ContentionResult) -> None:
    # every snapshot read succeeds; 2PL loses the whole hot set
    assert snapshot.reads_aborted == 0
    assert snapshot.success_rate == 1.0
    assert twopl.success_rate < 0.5
    # the headline claim: snapshot RO goodput beats 2PL under contention
    assert snapshot.goodput_tps > twopl.goodput_tps
    assert snapshot.reads_ok > twopl.reads_ok
    # GC keeps chain memory bounded well below total row-writes
    assert snapshot.peak_versions <= AUTO_VACUUM_VERSIONS + 2 * HOT_KEYS


def test_mvcc_contention(benchmark):
    twopl, snapshot = benchmark.pedantic(
        run_comparison, kwargs={"quick": True}, rounds=1, iterations=1
    )
    _report(twopl, snapshot).print()
    benchmark.extra_info["goodput_2pl"] = twopl.goodput_tps
    benchmark.extra_info["goodput_snapshot"] = snapshot.goodput_tps
    benchmark.extra_info["peak_versions"] = snapshot.peak_versions
    _check(twopl, snapshot)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizing (40 rounds x 32 readers)",
    )
    args = parser.parse_args(argv)
    twopl, snapshot = run_comparison(quick=args.quick)
    _report(twopl, snapshot).print()
    try:
        _check(twopl, snapshot)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"snapshot RO goodput beats 2PL: "
        f"{snapshot.goodput_tps:.0f} r/s vs {twopl.goodput_tps:.0f} r/s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Observability overhead: instrumentation must be ~free when off.

Runs the identical engine transaction workload four ways -- no
observer at all, the NULL_OBSERVER fast path, a live observer with
tracing and metrics, and a live observer with a saturated ring buffer
-- interleaved round-robin so machine-load drift hits every mode
equally.  The contract from the design:

* **disabled**: instrumented call sites cost one attribute load and a
  predictable branch, so throughput is indistinguishable from the
  uninstrumented engine (within timing noise);
* **enabled**: full observability costs a small *fixed* amount per
  transaction (~17 observation points: counters, two histogram
  observations, one span, three clock reads -- ~15 microseconds in
  total).  The percentage column therefore depends on transaction
  weight: this workload's txns are deliberately tiny (two point
  statements, tens of microseconds), the worst case, and read 30-40%
  now that the engine hot-path overhaul (compiled statements, binary
  WAL codec) roughly halved the per-txn engine time under the fixed
  observer cost; for any realistic transaction (>=300us of engine
  work -- contention, scans, DES client round trips) the same fixed
  cost is under the 5% target.

The table and ``benchmark.extra_info`` report both the percentage and
the absolute added microseconds per transaction.  Timing asserts use
generous regression bounds (60% enabled on the worst-case workload,
10% disabled) so CI noise cannot flake the suite.
"""

import time

from repro.core.report import TextTable
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.obs import NULL_OBSERVER, Observer

N_ROWS = 200
N_TXNS = 600
REPEATS = 5


def _make_db(observer=None) -> Database:
    db = Database("bench-obs", buffer_size_bytes=1 << 22, observer=observer)
    db.create_table(Schema(
        "ACCOUNTS",
        (
            Column("A_ID", ColumnType.INT, nullable=False),
            Column("BALANCE", ColumnType.DECIMAL, nullable=False, default=0.0),
        ),
        primary_key="A_ID",
    ))
    for a_id in range(1, N_ROWS + 1):
        db.table("ACCOUNTS").insert_row((a_id, 100.0))
    return db


def _workload(db: Database) -> None:
    update = db.prepare("UPDATE accounts SET BALANCE = ? WHERE A_ID = ?")
    select = db.prepare("SELECT BALANCE FROM accounts WHERE A_ID = ?")
    for index in range(N_TXNS):
        key = index % N_ROWS + 1
        txn = db.begin()
        db.execute(update, [float(index), key], txn=txn)
        db.execute(select, [key], txn=txn)
        txn.commit()


def _measure(observers) -> list:
    """Best-of-REPEATS wall seconds per observer mode, interleaved.

    Modes are timed round-robin (mode1, mode2, ... repeated) rather
    than in contiguous blocks, so machine-load drift during the run
    hits every mode equally instead of biasing whichever ran last.
    """
    best = [float("inf")] * len(observers)
    for _ in range(REPEATS):
        for index, observer in enumerate(observers):
            db = _make_db(observer)
            started = time.perf_counter()
            _workload(db)
            best[index] = min(best[index], time.perf_counter() - started)
    return best


def test_observability_overhead(benchmark):
    # Warm up bytecode and allocator caches so the first timed mode is
    # not penalised for going first.
    _workload(_make_db(None))

    enabled_obs = Observer()
    # a tiny ring buffer forces constant drop-from-the-back churn
    saturated_obs = Observer(trace_capacity=64)

    baseline, disabled, enabled, saturated = benchmark.pedantic(
        lambda: _measure([None, NULL_OBSERVER, enabled_obs, saturated_obs]),
        rounds=1,
        iterations=1,
    )

    def pct(value: float) -> float:
        return (value / baseline - 1.0) * 100.0

    def us_per_txn(value: float) -> float:
        return (value - baseline) / N_TXNS * 1e6

    table = TextTable(
        ["mode", "best of 5 (s)", "overhead %", "us/txn added"],
        title=f"Observability overhead ({N_TXNS} txns, {N_ROWS} rows)",
    )
    table.add_row("no observer", round(baseline, 4), 0.0, 0.0)
    table.add_row(
        "NULL_OBSERVER", round(disabled, 4),
        round(pct(disabled), 2), round(us_per_txn(disabled), 2),
    )
    table.add_row(
        "enabled", round(enabled, 4),
        round(pct(enabled), 2), round(us_per_txn(enabled), 2),
    )
    table.add_row(
        "enabled, tiny ring", round(saturated, 4),
        round(pct(saturated), 2), round(us_per_txn(saturated), 2),
    )
    table.print()

    benchmark.extra_info["overhead_pct"] = {
        "disabled": round(pct(disabled), 3),
        "enabled": round(pct(enabled), 3),
        "saturated": round(pct(saturated), 3),
    }
    benchmark.extra_info["us_per_txn_added"] = {
        "disabled": round(us_per_txn(disabled), 3),
        "enabled": round(us_per_txn(enabled), 3),
        "saturated": round(us_per_txn(saturated), 3),
    }

    # The observer actually observed: txns counted, spans recorded.
    # (One observer accumulates over all REPEATS timing runs.)
    commits = enabled_obs.metrics.counters["engine.txn.commit"].value
    assert commits == N_TXNS * REPEATS
    assert len(enabled_obs.tracer) > 0
    assert saturated_obs.tracer.dropped > 0

    # Regression bounds, deliberately loose against CI noise.  Typical
    # measured values: ~0% disabled (within noise either way), and
    # 30-40% enabled on this worst-case tiny-txn workload -- a fixed
    # ~15us cost per transaction that reads large against the engine's
    # post-overhaul ~35us txns but sits under 5% at realistic
    # transaction weights (see module docstring).
    assert disabled <= baseline * 1.10, (
        f"NULL_OBSERVER should be free, measured {pct(disabled):.1f}% overhead"
    )
    assert enabled <= baseline * 1.60, (
        f"enabled observability too expensive: {pct(enabled):.1f}% overhead"
        f" ({us_per_txn(enabled):.1f}us per txn)"
    )
    assert saturated <= baseline * 1.60, (
        f"ring-buffer churn too expensive: {pct(saturated):.1f}% overhead"
        f" ({us_per_txn(saturated):.1f}us per txn)"
    )

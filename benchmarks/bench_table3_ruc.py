"""Table III: resource unit cost per hour.

Regenerates the RUC table verbatim and verifies the derivation rules
of Section II-F: the CPU:RAM price ratio fixed at 0.95:0.05 from
hardware prices, and the RDMA network at 3x the TCP/IP unit price.
"""

import pytest

from repro.core.pricing import (
    CPU_RAM_RATIO,
    CPU_VCORE_HOUR,
    MEMORY_GB_HOUR,
    RDMA_GBPS_HOUR,
    RUC_TABLE,
    TCP_GBPS_HOUR,
)
from repro.core.report import TextTable


def test_table3_ruc(benchmark):
    rows = benchmark.pedantic(lambda: RUC_TABLE, rounds=1, iterations=1)

    table = TextTable(
        ["resource unit", "cost/hour", "reference"],
        title="Table III -- resource unit cost per hour",
    )
    for row in rows:
        table.add_row(row.unit, f"${row.cost_per_hour}", row.reference)
    table.print()

    by_unit = {row.unit: row.cost_per_hour for row in rows}
    assert by_unit["CPU (vCore)"] == 0.1847
    assert by_unit["Memory (GB)"] == 0.0095
    assert by_unit["Storage (GB)"] == 0.000853
    assert by_unit["IOPS (100)"] == 0.00015
    assert by_unit["TCP/IP Network (Gbps)"] == 0.07696
    assert by_unit["RDMA Network (Gbps)"] == 0.23088

    # Section II-F derivation checks.
    # 1. The Aurora ACU costs $0.2/h for 1 vCPU + 2 GB; with the
    #    CPU:RAM price ratio fixed at 0.95:0.05 per (vCore + GB), the
    #    decomposition c + 2m = 0.2, c = 0.95 (c + m) gives the paper's
    #    $0.1809/vCore and $0.0095/GB; vendor averaging then lands the
    #    final CPU unit at $0.1847.
    cpu_share, ram_share = CPU_RAM_RATIO
    acu_cpu = 0.2 * cpu_share / (cpu_share + 2 * ram_share)
    acu_ram = acu_cpu * ram_share / cpu_share
    assert acu_cpu == pytest.approx(0.1809, abs=1e-3)
    assert MEMORY_GB_HOUR == pytest.approx(acu_ram, rel=0.02)
    assert CPU_VCORE_HOUR == pytest.approx(acu_cpu, rel=0.03)
    # 2. RDMA = 3x TCP
    assert RDMA_GBPS_HOUR == pytest.approx(3 * TCP_GBPS_HOUR)

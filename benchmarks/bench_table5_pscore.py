"""Table V: P-Score with the detailed resource cost breakdown.

Regenerates the per-resource cost columns (CPU / memory / storage /
IOPS / network per minute), the total deployment cost (1 RW + 1 RO
node) and the P-Score per workload mode, and asserts:

* AWS RDS has the highest P-Score across workloads (high TPS, lowest
  cost);
* CDB2 the lowest (bounded TPS);
* CDB2's IOPS cost is orders of magnitude above RDS's (paper: 327x);
* CDB4's network line is 3x the TCP systems (RDMA premium).
"""

from benchmarks.conftest import arch_display
from repro.core.report import TextTable


def test_table5_pscore(benchmark, bench_full):
    rows = benchmark.pedantic(
        lambda: bench_full.run("pscore").payload, rounds=1, iterations=1
    )

    table = TextTable(
        ["system", "cpu", "mem", "sto", "iops", "net", "total/min",
         "P(RO)", "P(RW)", "P(WO)", "P(AVG)"],
        title="Table V -- P-Score with detailed resource cost",
    )
    for row in rows:
        b = row.cost_breakdown
        table.add_row(
            arch_display(row.arch_name),
            round(b["cpu"], 4), round(b["memory"], 4), round(b["storage"], 4),
            round(b["iops"], 6), round(b["network"], 4),
            round(row.total_cost_per_minute, 4),
            *[round(row.p_by_mode[mode]) for mode in ("RO", "RW", "WO")],
            round(row.p_avg),
        )
    table.print()

    by_name = {row.arch_name: row for row in rows}
    benchmark.extra_info["p_avg"] = {
        name: round(row.p_avg) for name, row in by_name.items()
    }

    p_avg = {name: row.p_avg for name, row in by_name.items()}
    assert max(p_avg, key=p_avg.get) == "aws_rds"
    assert min(p_avg, key=p_avg.get) == "cdb2"
    # paper rank has cdb1 and cdb2 at the bottom among CDBs
    assert p_avg["cdb3"] > p_avg["cdb1"] > p_avg["cdb2"]

    # IOPS cost gap (paper: 327x)
    iops_ratio = (by_name["cdb2"].cost_breakdown["iops"]
                  / by_name["aws_rds"].cost_breakdown["iops"])
    assert 100 < iops_ratio < 1000

    # RDMA network premium is 3x
    net_ratio = (by_name["cdb4"].cost_breakdown["network"]
                 / by_name["aws_rds"].cost_breakdown["network"])
    assert 2.5 < net_ratio < 3.5

    # RDS total cost per minute ~ $0.0437 (paper's number)
    assert abs(by_name["aws_rds"].total_cost_per_minute - 0.0437) < 0.005

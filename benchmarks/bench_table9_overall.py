"""Table IX: overall performance -- the PERFECT framework + O-Score.

Composes all seven scores (P, E1, E2, R, F, C, T) per SUT, both under
the resource unit cost and under the vendors' actual prices (the
starred variants), and asserts the paper's headline results:

* CDB4 wins the unified O-Score (fast recovery + millisecond lag);
* CDB3 wins the actual-cost O-Score* (startup pricing);
* AWS RDS has the highest P-Score and E2-Score but the slowest
  recovery; CDB3 the highest E1; CDB4 the best R/F/C.
"""

from benchmarks.conftest import arch_display
from repro.core.report import TextTable


def test_table9_overall(benchmark, overall_scores):
    scores = benchmark.pedantic(lambda: overall_scores, rounds=1, iterations=1)

    table = TextTable(
        ["system", "P", "P*", "E1", "E1*", "R", "F", "E2", "C(ms)",
         "T", "T*", "O", "O*"],
        title="Table IX -- overall performance (starred = vendor actual cost)",
    )
    for name, s in scores.items():
        table.add_row(arch_display(name), *s.as_row()[1:])
    table.print()

    o = {name: s.o for name, s in scores.items()}
    o_star = {name: s.o_star for name, s in scores.items()}
    benchmark.extra_info["o_score"] = {k: round(v, 2) for k, v in o.items()}
    benchmark.extra_info["o_star"] = {k: round(v, 2) for k, v in o_star.items()}

    # headline winners
    assert max(o, key=o.get) == "cdb4"            # paper: 17.7
    assert max(o_star, key=o_star.get) == "cdb3"  # paper: 16.19

    # per-dimension winners from the paper's narrative
    assert max(scores, key=lambda n: scores[n].p) == "aws_rds"
    assert max(scores, key=lambda n: scores[n].e1) == "cdb3"
    assert max(scores, key=lambda n: scores[n].e2) == "aws_rds"
    assert min(scores, key=lambda n: scores[n].r_s) == "cdb4"
    assert min(scores, key=lambda n: scores[n].f_s) == "cdb4"
    assert min(scores, key=lambda n: scores[n].c_ms) == "cdb4"
    assert max(scores, key=lambda n: scores[n].f_s) == "aws_rds"

    # the second tier of the unified metric: cdb3 and rds close together
    order = sorted(o, key=o.get, reverse=True)
    assert order[0] == "cdb4"
    assert set(order[1:3]) == {"cdb3", "aws_rds"}

    # actual cost reranks: every starred CDB3 score improves on its
    # RUC-normalised value relative to RDS
    rds, c3 = scores["aws_rds"], scores["cdb3"]
    assert c3.p_star / rds.p_star > c3.p / rds.p

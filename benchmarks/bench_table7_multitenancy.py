"""Table VII: multi-tenancy evaluation.

Regenerates per-pattern total TPS, the billed resource bundle, cost
per minute, and the T-Score for each SUT over the four contention
patterns, and asserts the paper's observations:

1. Isolated instances (CDB4) top the high-contention throughput at the
   highest cost; the elastic pool is crushed under contention (the
   paper measures CDB1 at ~2.45x CDB2 on pattern (a)).
2. The elastic pool (CDB2) wins the staggered patterns (paper: ~2.1x
   CDB1) because all pool capacity flows to the one active tenant.
3. Branches (CDB3) hit the lowest TPS on staggered-low: stringently
   isolated compute plus cold resumes.
4. Cost rank: CDB4 most expensive, CDB2/CDB3 cheapest.
"""

from benchmarks.conftest import arch_display
from repro.core.report import TextTable


def test_table7_multitenancy(benchmark, bench_full):
    results = benchmark.pedantic(
        lambda: bench_full.run("multitenancy").payload, rounds=1, iterations=1
    )

    table = TextTable(
        ["system", "TPS(a)", "TPS(b)", "TPS(c)", "TPS(d)",
         "resources (vC/GB/GB/IOPS/Gbps)", "cost/min",
         "T(a)", "T(b)", "T(c)", "T(d)", "T(avg)"],
        title="Table VII -- multi-tenancy evaluation",
    )
    keys = ["high_contention", "low_contention", "staggered_high", "staggered_low"]
    summary = {}
    for arch_name, by_pattern in results.items():
        package = by_pattern[keys[0]].package
        t_scores = [by_pattern[key].t_score for key in keys]
        summary[arch_name] = {
            "tps": {key: by_pattern[key].total_tps for key in keys},
            "t_avg": sum(t_scores) / len(t_scores),
            "cost": by_pattern[keys[0]].cost_per_minute,
        }
        table.add_row(
            arch_display(arch_name),
            *[round(by_pattern[key].total_tps) for key in keys],
            f"{package.vcores:g}/{package.memory_gb:g}/{package.storage_gb:g}"
            f"/{package.iops:g}/{package.network_gbps:g}",
            round(by_pattern[keys[0]].cost_per_minute, 4),
            *[round(score) for score in t_scores],
            round(summary[arch_name]["t_avg"]),
        )
    table.print()
    benchmark.extra_info["t_avg"] = {
        name: round(info["t_avg"]) for name, info in summary.items()
    }

    # 1. isolation protects under high contention
    high = {name: info["tps"]["high_contention"] for name, info in summary.items()}
    assert max(high, key=high.get) == "cdb4"
    assert 1.5 < high["cdb1"] / high["cdb2"] < 6.0  # paper: 2.45x

    # 2. the pool wins staggered patterns
    stag = {name: info["tps"]["staggered_high"] for name, info in summary.items()}
    assert max(stag, key=stag.get) == "cdb2"
    assert 1.5 < stag["cdb2"] / stag["cdb1"] < 4.0  # paper: 2.13x

    # 3. branches lowest on staggered-low (cold resumes)
    low = {name: info["tps"]["staggered_low"] for name, info in summary.items()}
    assert min(low, key=low.get) == "cdb3"

    # 4. cost rank
    costs = {name: info["cost"] for name, info in summary.items()}
    assert max(costs, key=costs.get) == "cdb4"
    assert min(costs, key=costs.get) in ("cdb2", "cdb3")
    # CDB4's bundle costs ~$0.176/min in the paper
    assert abs(costs["cdb4"] - 0.176) / 0.176 < 0.25

    # average T-Score: shared-resource models at the top, CDB1 at the bottom
    t_avg = {name: info["t_avg"] for name, info in summary.items()}
    order = sorted(t_avg, key=t_avg.get, reverse=True)
    assert set(order[:2]) <= {"cdb2", "aws_rds", "cdb3"}
    assert order[-1] in ("cdb1", "cdb4")

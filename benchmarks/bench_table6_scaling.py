"""Table VI: per-transition scaling times and scaling costs.

For the three autoscaling SUTs (CDB1, CDB2, CDB3), regenerates the
per-slot-transition scaling durations and the scaling cost attributed
to each transition, and asserts the paper's observations:

* CDB1 scales up fast (~14 s) but takes hundreds of seconds to scale
  back down (gradual policy), making its down-scaling cost dominate;
* CDB2 completes every transition within roughly one control period
  (~30 s), in both directions;
* CDB3 ignores the Single Valley's middle slot (no scale-down within
  the stabilisation window) and pauses to zero on idle.
"""

from benchmarks.conftest import arch_display
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator
from repro.core.report import TextTable


def run_scaling(bench):
    tau = bench.elastic_tau("RW")
    workload = bench.workload_mix("RW", 1)
    results = {}
    for arch in bench.architectures:
        if arch.name not in ("cdb1", "cdb2", "cdb3"):
            continue
        evaluator = ElasticityEvaluator(arch, workload, measure_window_s=600.0)
        results[arch.name] = {
            key: evaluator.run(pattern, tau)
            for key, pattern in ELASTIC_PATTERNS.items()
        }
    return tau, results


def test_table6_scaling(benchmark, bench_full):
    tau, results = benchmark.pedantic(run_scaling, args=(bench_full,),
                                      rounds=1, iterations=1)

    table = TextTable(
        ["system", "pattern", "transition", "scaling time (s)", "scaling cost ($)"],
        title=f"Table VI -- autoscaling transitions (tau={tau})",
    )
    for arch_name, by_pattern in results.items():
        for pattern_key, result in by_pattern.items():
            for transition in result.transitions:
                time_s = transition.scaling_time_s
                table.add_row(
                    arch_display(arch_name), pattern_key, transition.label,
                    "never" if time_s is None else round(time_s),
                    round(transition.scaling_cost, 4),
                )
    table.print()

    def transition(name, pattern, index):
        return results[name][pattern].transitions[index]

    # CDB1: fast up, very slow down (paper: 14 s up, ~480 s down).
    cdb1_up = transition("cdb1", "single_peak", 0).scaling_time_s
    cdb1_down = transition("cdb1", "single_peak", 1).scaling_time_s
    assert cdb1_up is not None and cdb1_up <= 40
    assert cdb1_down is None or cdb1_down > 150
    benchmark.extra_info["cdb1_up_s"] = cdb1_up

    # CDB1's gradual scale-down dominates its scaling cost.
    assert (transition("cdb1", "single_peak", 1).scaling_cost
            > 3 * transition("cdb1", "single_peak", 0).scaling_cost)

    # CDB2: every transition settles within ~2 control periods.
    for pattern_key, result in results["cdb2"].items():
        for tr in result.transitions:
            assert tr.scaling_time_s is not None and tr.scaling_time_s <= 70

    # CDB3: the Single Valley's mid-slot dip is not followed
    # (stabilisation window longer than the slot).
    valley = results["cdb3"]["single_valley"]
    mid_down = valley.transitions[0]   # 44 -> 22
    assert mid_down.scaling_time_s is None or mid_down.scaling_time_s > 55

    # CDB3 pauses on the idle tail of the single peak.
    peak = results["cdb3"]["single_peak"]
    assert 0.0 in peak.collector.vcores.values

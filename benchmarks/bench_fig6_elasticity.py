"""Figure 6: elasticity evaluation -- TPS, total cost, E1-Score.

Runs the four elastic patterns (single peak, large spike, single
valley, zero valley) x {RO,RW,WO} on every SUT, with the cost
integrated over the paper's ten-minute window, and asserts:

* serverless systems cost far less than the fixed ones (the paper
  measures RDS/CDB4 at ~9-12x CDB3's cost);
* the E1-Score ranking puts CDB3 first and CDB1 last, with CDB2 ahead
  of both fixed systems;
* fixed systems deliver the highest raw TPS (no scaling lag).
"""

from benchmarks.conftest import arch_display
from repro.core.report import TextTable


def test_fig6_elasticity(benchmark, bench_full):
    results = benchmark.pedantic(
        lambda: bench_full.run("elasticity").payload, rounds=1, iterations=1
    )

    table = TextTable(
        ["system", "pattern", "mode", "avg TPS", "total cost", "E1-Score"],
        title="Figure 6 -- elasticity: TPS / total cost / E1-Score",
    )
    for arch_name, by_pattern in results.items():
        for pattern_key, by_mode in by_pattern.items():
            for mode, result in by_mode.items():
                table.add_row(
                    arch_display(arch_name), pattern_key, mode,
                    round(result.avg_tps), round(result.total_cost, 4),
                    round(result.e1_score),
                )
    table.print()

    def aggregate(name, field):
        values = [
            getattr(result, field)
            for by_mode in results[name].values()
            for result in by_mode.values()
        ]
        return sum(values) / len(values)

    avg_tps = {name: aggregate(name, "avg_tps") for name in results}
    cost = {name: aggregate(name, "total_cost") for name in results}
    e1 = {name: aggregate(name, "e1_score") for name in results}
    benchmark.extra_info["e1"] = {k: round(v) for k, v in e1.items()}

    # Fixed systems top raw TPS...
    assert sorted(avg_tps, key=avg_tps.get, reverse=True)[:2] == ["cdb4", "aws_rds"] \
        or sorted(avg_tps, key=avg_tps.get, reverse=True)[:2] == ["aws_rds", "cdb4"]
    # ... and top raw cost.  The paper's 9-12x gap is measured on the
    # single-peak pattern (two idle slots let CDB3 pause); across all
    # patterns the separation compresses but stays decisive.
    assert cost["aws_rds"] > 2.5 * cost["cdb3"]
    assert cost["cdb4"] > 2.5 * cost["cdb3"]
    peak_cost = {
        name: sum(r.total_cost for r in results[name]["single_peak"].values())
        for name in results
    }
    assert peak_cost["aws_rds"] > 4 * peak_cost["cdb3"]
    assert peak_cost["cdb4"] > 4 * peak_cost["cdb3"]

    # E1 rank: CDB3 first, CDB1 last, CDB2 above the fixed systems.
    order = sorted(e1, key=e1.get, reverse=True)
    assert order[0] == "cdb3"
    assert order[-1] == "cdb1"
    assert e1["cdb2"] > e1["aws_rds"]

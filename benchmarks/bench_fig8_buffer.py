"""Figure 8: varying the buffer size from 128 MB to 10 GB.

Sweeps the local buffer of AWS RDS and CDB1 (CDB4 keeps its fixed
10 GB; CDB2/CDB3 are excluded as their buffers are not user-tunable)
on the RW pattern at SF1 and regenerates TPS, cost, and P-Score per
concurrency, asserting the paper's findings:

* CDB1 gains substantially from a 10 GB buffer (paper: 6753 -> 14833)
  and becomes more cost-efficient than CDB4 (higher P-Score at ~2/3 of
  the cost);
* AWS RDS stays ahead of CDB1 on average TPS at lower cost.
"""

from benchmarks.conftest import arch_display
from repro.cloud.architectures import get
from repro.cloud.mva_model import estimate_throughput
from repro.core.pricing import package_cost_breakdown_per_minute, package_cost_per_minute
from repro.core.report import TextTable

MIB = 2**20
GIB = 2**30
BUFFER_SIZES = [128 * MIB, 512 * MIB, 2 * GIB, 10 * GIB]
CONCURRENCIES = [50, 100, 150, 200]


def deployment_cost(arch):
    breakdown = package_cost_breakdown_per_minute(arch.provisioned)
    return package_cost_per_minute(arch.provisioned) + breakdown["cpu"] + breakdown["memory"]


def run_sweep(bench):
    workload = bench.workload_mix("RW", 1)
    rows = []
    for name in ("aws_rds", "cdb1"):
        arch = get(name)
        for buffer_bytes in BUFFER_SIZES:
            tps = [
                estimate_throughput(arch, workload, con, buffer_bytes=buffer_bytes).tps
                for con in CONCURRENCIES
            ]
            rows.append((name, buffer_bytes, tps, deployment_cost(arch)))
    cdb4 = get("cdb4")
    tps = [estimate_throughput(cdb4, workload, con).tps for con in CONCURRENCIES]
    rows.append(("cdb4", cdb4.buffer_bytes, tps, deployment_cost(cdb4)))
    return rows


def test_fig8_buffer_sweep(benchmark, bench_full):
    rows = benchmark.pedantic(run_sweep, args=(bench_full,), rounds=1, iterations=1)

    table = TextTable(
        ["system", "buffer", *[f"TPS@{c}" for c in CONCURRENCIES],
         "avg TPS", "cost/min", "P-Score"],
        title="Figure 8 -- buffer size sweep, RW pattern at SF1",
    )
    summary = {}
    for name, buffer_bytes, tps, cost in rows:
        avg = sum(tps) / len(tps)
        label = f"{buffer_bytes // MIB}MB" if buffer_bytes < GIB \
            else f"{buffer_bytes // GIB}GB"
        summary[(name, buffer_bytes)] = (avg, cost, avg / cost)
        table.add_row(
            arch_display(name), label, *[round(value) for value in tps],
            round(avg), round(cost, 4), round(avg / cost),
        )
    table.print()

    cdb1_small = summary[("cdb1", 128 * MIB)]
    cdb1_large = summary[("cdb1", 10 * GIB)]
    cdb4 = summary[("cdb4", 10 * GIB)]
    rds_large = summary[("aws_rds", 10 * GIB)]
    benchmark.extra_info["cdb1_gain"] = round(cdb1_large[0] / cdb1_small[0], 2)

    # CDB1 gains markedly from the bigger buffer
    assert cdb1_large[0] > 1.2 * cdb1_small[0]
    # ... and overtakes CDB4 on P-Score (paper: 1.8x) at ~2/3 the cost
    assert cdb1_large[2] > 1.1 * cdb4[2]
    assert cdb1_large[1] < 0.75 * cdb4[1]

    # AWS RDS keeps a TPS edge over CDB1 at lower cost (paper: 16%/12%)
    assert rds_large[0] > cdb1_large[0]
    assert rds_large[1] < cdb1_large[1]

    # RDS barely moves with the buffer (OS page cache already covers SF1)
    rds_small = summary[("aws_rds", 128 * MIB)]
    assert rds_large[0] / rds_small[0] < 1.2

"""Figure 7: timeline of CDB4's fail-over process.

Regenerates the phase log of CDB4's RW fail-over -- prepare (notify +
collect LSNs), switch-over (promote an RO node), recovering (undo scan
in the background) -- plus the TPS timeline around the failure, and
asserts the paper's phase durations: ~1 s prepare, ~2 s switch-over,
~3 s recovering, with the cluster serving again after ~6 s.
"""

import pytest

from repro.cloud.architectures import get
from repro.cloud.failure import FailoverSimulator
from repro.core.report import TextTable, sparkline


def run_timeline(bench):
    workload = bench.workload_mix("RW", 1)
    simulator = FailoverSimulator(get("cdb4"), workload, concurrency=150)
    return simulator.run(node="rw", inject_at_s=30.0, tick_s=0.25)


def test_fig7_cdb4_failover_timeline(benchmark, bench_full):
    result = benchmark.pedantic(run_timeline, args=(bench_full,),
                                rounds=1, iterations=1)

    table = TextTable(
        ["phase", "start (s)", "end (s)", "duration (s)", "description"],
        title="Figure 7 -- CDB4 fail-over timeline (failure injected at t=30 s)",
    )
    for phase in result.phases:
        table.add_row(
            phase.name, round(phase.start_s, 1), round(phase.end_s, 1),
            round(phase.duration_s, 1), phase.description,
        )
    table.print()
    tps_values = [tps for _t, tps in result.timeline]
    print("TPS timeline:", sparkline(tps_values))
    print(f"service restored after {result.f_score_s:.1f}s, "
          f"TPS recovered after another {result.r_score_s:.1f}s\n")

    names = [phase.name for phase in result.phases]
    assert names == ["detect", "prepare", "switch_over", "undo"]
    durations = {phase.name: phase.duration_s for phase in result.phases}
    assert durations["prepare"] == pytest.approx(1.0, abs=0.5)
    assert durations["switch_over"] == pytest.approx(2.0, abs=1.0)
    assert durations["undo"] == pytest.approx(3.0, abs=1.5)

    # the promoted cluster serves while the undo scan runs in background
    undo = next(phase for phase in result.phases if phase.name == "undo")
    assert result.service_restored_s == pytest.approx(undo.start_s)
    # end-to-end service gap stays in the single-digit seconds
    assert result.f_score_s < 10
    benchmark.extra_info["phases_s"] = {
        name: round(value, 2) for name, value in durations.items()
    }

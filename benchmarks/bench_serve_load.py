"""Serving-tier load bench: faults survive, qos holds the knee.

Two end-to-end claims about the SQL-over-socket tier, both measured
over real loopback connections with a fixed seed:

* **fault tolerance** -- with ``CONN_DROP`` chaos active the whole
  run, the load generator reconnects around the drops and finishes
  with nonzero committed TPS, every offered transaction accounted
  for, and a clean server shutdown;
* **the knee** -- driven ~2.5x past the measured service rate with a
  tight deadline, the qos stack (bounded admission queue + deadline
  shedding) holds goodput >= 1.2x of the qos-off baseline, whose
  unbounded queue serves everything arbitrarily late.

Runs two ways:

* ``pytest benchmarks/bench_serve_load.py`` -- the bench suite path,
  with the headline numbers in ``benchmark.extra_info``;
* ``python benchmarks/bench_serve_load.py [--quick] [--seed N]`` --
  the CI smoke entry point; exits non-zero if either claim fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.core.report import TextTable
from repro.serve.driver import ServeRunResult, run_serve

#: the calibrated past-the-knee shape: ~2.5x the closed-loop service
#: rate offered open-loop with a deadline much tighter than the backlog
#: (recalibrated after the engine hot-path overhaul raised the socket
#: tier's service rate -- 2500 tps no longer cleared the knee)
KNEE_CONNECTIONS = 256
KNEE_TXNS_PER_CONN = 24
KNEE_RATE_TPS = 4000.0
KNEE_DEADLINE_S = 0.1
KNEE_MAX_QUEUE = 8


def run_fault_load(quick: bool = False, seed: int = 42) -> ServeRunResult:
    """A closed-loop drive with connection drops active throughout."""
    plan = FaultPlan(
        [FaultSpec(kind=FaultKind.CONN_DROP, target="serve",
                   start_s=0.0, duration_s=3600.0, intensity=0.2)],
        seed=seed, name="serve-drops",
    )
    return run_serve(
        16, 8 if quick else 24,
        n_shards=2, workers=0, qos=True,
        persona="payment", arrival="closed",
        seed=seed, row_scale=0.002, fault_plan=plan,
    )


def run_knee(seed: int = 42):
    """The same overload drive once with qos on, once off."""
    results = {}
    for qos in (True, False):
        results[qos] = run_serve(
            KNEE_CONNECTIONS, KNEE_TXNS_PER_CONN,
            n_shards=2, workers=0, qos=qos,
            persona="payment",
            arrival=f"poisson:{KNEE_RATE_TPS:g}",
            deadline_s=KNEE_DEADLINE_S,
            max_queue=KNEE_MAX_QUEUE,
            seed=seed, row_scale=0.002,
        )
    return results[True], results[False]


def _report(fault: ServeRunResult, with_qos, without) -> TextTable:
    table = TextTable(
        ["stage", "qos", "conns", "offered", "committed", "lost",
         "shed+exp", "TPS", "goodput", "p99 ms"],
        title="Serving tier under faults and overload",
    )
    for stage, result in (
        ("conn-drop", fault), ("knee", with_qos), ("knee", without),
    ):
        table.add_row(
            stage, "on" if result.qos else "off", result.connections,
            result.offered, result.committed, result.lost,
            result.shed + result.expired,
            round(result.tps), round(result.goodput_tps),
            round(result.latency_ms.get("p99", 0.0), 1),
        )
    return table


def _check_fault(result: ServeRunResult) -> None:
    # the run committed real work at a nonzero rate despite the drops
    assert result.committed > 0 and result.tps > 0, (
        f"no committed throughput under CONN_DROP chaos: {result}"
    )
    # the chaos actually bit, and the generator reconnected around it
    assert result.server.get("abrupt_disconnects", 0) >= 1, (
        "CONN_DROP never fired (no abrupt disconnects server-side)"
    )
    assert result.reconnects >= 1, "no client ever reconnected after a drop"
    # every offered transaction is accounted for -- nothing vanished
    accounted = (
        result.committed + result.aborted + result.shed
        + result.expired + result.errors + result.lost
    )
    assert accounted == result.offered, (
        f"accounting leak: offered {result.offered}, accounted {accounted}"
    )
    # clean shutdown: the server stopped and handed its stats over
    assert result.server.get("accepted", 0) >= result.connections


def _check_knee(with_qos: ServeRunResult, without: ServeRunResult) -> None:
    # past the knee, shedding beats serving everything arbitrarily late
    assert with_qos.goodput_tps > 1.2 * without.goodput_tps, (
        f"qos-on goodput {with_qos.goodput_tps:.1f} tps does not clear "
        f"1.2x qos-off ({without.goodput_tps:.1f} tps)"
    )
    # and it wins *by* shedding: the queue cap / deadline did real work
    assert with_qos.shed + with_qos.expired > 0, (
        "qos-on shed nothing -- the drive never reached the knee"
    )
    assert without.shed == 0 and without.expired == 0, (
        "qos-off shed work; its queue should be unbounded"
    )


def test_serve_fault_load(benchmark):
    result = benchmark.pedantic(
        run_fault_load, kwargs={"quick": True}, rounds=1, iterations=1
    )
    benchmark.extra_info["committed_tps"] = result.tps
    benchmark.extra_info["reconnects"] = result.reconnects
    _check_fault(result)


def test_serve_knee(benchmark):
    with_qos, without = benchmark.pedantic(
        run_knee, rounds=1, iterations=1
    )
    benchmark.extra_info["goodput_qos"] = with_qos.goodput_tps
    benchmark.extra_info["goodput_noqos"] = without.goodput_tps
    _check_knee(with_qos, without)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="workload and fault-plan seed"
    )
    args = parser.parse_args(argv)
    fault = run_fault_load(quick=args.quick, seed=args.seed)
    with_qos, without = run_knee(seed=args.seed)
    _report(fault, with_qos, without).print()
    try:
        _check_fault(fault)
        _check_knee(with_qos, without)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"fault stage: {fault.tps:.0f} committed tps with "
        f"{fault.reconnects} reconnects; knee: qos-on goodput "
        f"{with_qos.goodput_tps:.1f} tps vs off {without.goodput_tps:.1f} "
        f"({with_qos.goodput_tps / max(without.goodput_tps, 1e-9):.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Availability under deterministic chaos (A-Score).

Runs every SUT through the *same* seeded fault plan -- network
partitions, delay/loss spikes, replica stalls and gray nodes -- with
all client traffic going through the resilience stack (retries,
failover, circuit breakers), and scores goodput against the SLO.

Asserts the chaos layer's determinism contract:

* the same seed reproduces a byte-identical fault schedule
  (fingerprint *and* human-readable schedule) and the identical
  A-Score, request for request;
* a different seed produces a different schedule;
* the resilience stack keeps goodput strictly positive under the
  injected faults.
"""

from benchmarks.conftest import arch_display
from repro.core.config import BenchConfig
from repro.core.report import TextTable
from repro.core.runner import CloudyBench


def _testbed(seed: int, architectures=None) -> CloudyBench:
    config = BenchConfig.quick()
    config.seed = seed
    if architectures:
        config.architectures = list(architectures)
    return CloudyBench(config)


def test_chaos_availability(benchmark):
    bench = _testbed(42)
    results = benchmark.pedantic(
        lambda: bench.run("chaos").payload, rounds=1, iterations=1
    )
    plan = bench.chaos_plan()

    print(f"\nfault plan fingerprint: {plan.fingerprint()}")
    for line in plan.describe():
        print(f"  {line}")
    table = TextTable(
        ["system", "requests", "goodput", "budget burn", "opens", "recloses"],
        title=f"Availability under chaos (SLO {bench.config.chaos_slo:g})",
    )
    for arch_name, score in results.items():
        table.add_row(
            arch_display(arch_name), score.requests,
            round(score.goodput, 4), round(score.error_budget_burn, 3),
            score.breaker_opened, score.breaker_reclosed,
        )
    table.print()

    benchmark.extra_info["plan_fingerprint"] = plan.fingerprint()
    benchmark.extra_info["goodput"] = {
        name: round(score.goodput, 4) for name, score in results.items()
    }

    # Chaos bites, resilience holds: every SUT keeps serving.
    for score in results.values():
        assert score.requests > 100
        assert 0.0 < score.goodput <= 1.0
        assert score.plan_fingerprint == plan.fingerprint()

    # Determinism: an independent testbed with the same seed yields a
    # byte-identical fault schedule and the identical A-Score.
    first = _testbed(42, ["cdb1"]).run("chaos").payload["cdb1"]
    second = _testbed(42, ["cdb1"]).run("chaos").payload["cdb1"]
    assert _testbed(42).chaos_plan().fingerprint() == plan.fingerprint()
    assert _testbed(42).chaos_plan().describe() == plan.describe()
    assert first.plan_fingerprint == second.plan_fingerprint
    assert first.requests == second.requests
    assert first.goodput == second.goodput
    assert first.samples == second.samples

    # A different seed is a different experiment.
    other = _testbed(7).chaos_plan()
    assert other.fingerprint() != plan.fingerprint()
    assert other.describe() != plan.describe()

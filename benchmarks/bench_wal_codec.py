"""WAL record codec bakeoff: JSON vs legacy repr vs binary (v2).

The engine hot path stamps a CRC over a canonical encoding of every
appended record and (on the archive/replication path) serializes the
record into a wire frame.  This bench races the three candidate codecs
on both jobs over a realistic record mix -- BEGIN/COMMIT control
records and INSERT/UPDATE data records carrying the sales-schema row
shapes (ints, strings, whole-valued float timestamps):

* **json** -- ``json.dumps`` with sorted keys: readable, but slow and
  *lossy* (tuples decay to lists, bytes unsupported), so decode cannot
  be type-preserving;
* **repr** -- the legacy v1 format: ``repr`` out, ``ast.literal_eval``
  back, type-preserving but not canonical (``1`` vs ``1.0`` and list
  vs tuple checksum differently -- the DR scrubber's false repairs);
* **binary** -- the committed v2 codec: marshal-backed canonical CRC
  payload plus the tagged struct wire frame.

The committed winner is the binary codec; the asserts at the bottom
pin why: CRC stamping at parity with repr on the aggregate append
stream (and ~2x faster on control records), an archive/replication
round-trip several times faster (repr encodes fast via C ``repr()``
but its ``ast.literal_eval`` decode is an order of magnitude slower
than everything else), the smallest frames, and -- the tiebreak that
is really a correctness requirement -- the only *canonical* CRC
payload.  JSON is additionally disqualified on fidelity: composite
(tuple) keys decay to lists and bytes cannot be encoded at all.

Run standalone: ``python benchmarks/bench_wal_codec.py [--quick]``
or under pytest (CI): ``pytest benchmarks/bench_wal_codec.py``.
"""

import argparse
import ast
import json
import sys
import time
import zlib

from repro.core.report import TextTable
from repro.engine.wal import LogKind, LogRecord, record_crc
from repro.engine.walcodec import (
    canonical_payload,
    decode_record,
    encode_record,
    encode_record_legacy,
)

_EPOCH = 1_700_000_000.0


def sample_records(n: int):
    """A realistic append mix: per txn one BEGIN, two UPDATEs over the
    sales row shapes, one COMMIT (the T1-T4 OLTP profile)."""
    records = []
    lsn = 1
    for txn_id in range(1, n // 4 + 2):
        prev = 0
        def stamp(kind, table=None, key=None, before=None, after=None):
            nonlocal lsn, prev
            record = LogRecord(
                lsn, txn_id, kind, table, key, before, after, prev,
                record_crc(lsn, txn_id, kind, table, key, before, after, prev),
            )
            prev = 0 if kind in (LogKind.COMMIT, LogKind.ABORT) else lsn
            lsn += 1
            records.append(record)
        order = (txn_id, txn_id % 97, _EPOCH + txn_id, "NEW", 104.5, 99.0)
        stamp(LogKind.BEGIN)
        stamp(LogKind.UPDATE, "ORDERS", txn_id,
              before=order,
              after=order[:3] + ("PAID", 104.5, _EPOCH + txn_id + 1.0))
        stamp(LogKind.UPDATE, "CUSTOMER", txn_id % 97,
              before=(txn_id % 97, "name-x", 500.0, "GC", _EPOCH),
              after=(txn_id % 97, "name-x", 504.5, "GC", _EPOCH))
        stamp(LogKind.COMMIT)
    return records[:n]


# -- the three contestants ----------------------------------------------------

def json_encode(record):
    return json.dumps(
        [record.lsn, record.txn_id, record.kind.value, record.table,
         record.key, record.before, record.after, record.prev_lsn,
         record.crc],
        separators=(",", ":"),
    ).encode("utf-8")


def json_decode(frame):
    (lsn, txn_id, kind_value, table, key, before,
     after, prev_lsn, crc) = json.loads(frame)
    return LogRecord(
        lsn, txn_id, LogKind(kind_value), table, key,
        tuple(before) if before is not None else None,
        tuple(after) if after is not None else None,
        prev_lsn, crc,
    )


def json_crc_payload(record):
    return json.dumps(
        [record.lsn, record.txn_id, record.kind.value, record.table,
         record.key, record.before, record.after, record.prev_lsn],
        separators=(",", ":"),
    ).encode("utf-8")


def repr_decode(frame):
    fields = ast.literal_eval(frame[1:].decode("utf-8"))
    lsn, txn_id, kind_value, table, key, before, after, prev_lsn, crc = fields
    return LogRecord(lsn, txn_id, LogKind(kind_value), table, key,
                     before, after, prev_lsn, crc)


def repr_crc_payload(record):
    return repr((record.lsn, record.txn_id, record.kind.value, record.table,
                 record.key, record.before, record.after,
                 record.prev_lsn)).encode("utf-8")


def binary_crc_payload(record):
    return canonical_payload(
        record.lsn, record.txn_id, record.kind.value, record.table,
        record.key, record.before, record.after, record.prev_lsn,
    )


CODECS = {
    "json": (json_encode, json_decode, json_crc_payload),
    "repr": (encode_record_legacy, repr_decode, repr_crc_payload),
    "binary": (encode_record, decode_record, binary_crc_payload),
}


def _lap(fn, items):
    start = time.perf_counter()
    for item in items:
        fn(item)
    return (time.perf_counter() - start) / len(items)


def run_bakeoff(quick: bool = False):
    n = 400 if quick else 2000
    repeats = 5 if quick else 8
    records = sample_records(n)
    jobs = {}
    for name, (encode, decode, crc_payload) in CODECS.items():
        frames = [encode(record) for record in records]
        jobs[name] = {
            "encode_ns": (encode, records),
            "decode_ns": (decode, frames),
            "crc_ns": (lambda r, _p=crc_payload: zlib.crc32(_p(r)), records),
        }
    best = {name: {job: float("inf") for job in jobs[name]} for name in jobs}
    # Interleave the repeats round-robin so machine-load drift hits
    # every codec equally instead of whichever ran last.
    for _ in range(repeats):
        for name, per_job in jobs.items():
            for job, (fn, items) in per_job.items():
                best[name][job] = min(best[name][job], _lap(fn, items) * 1e9)
    results = {}
    for name, (encode, _decode, _crc) in CODECS.items():
        frames = [encode(record) for record in records]
        results[name] = dict(
            best[name], bytes=sum(len(f) for f in frames) / len(frames),
        )
    return records, results


def _canonical_checks(records):
    """Which CRC payloads are canonical: equal bytes for value-equal
    records that round-tripped with decayed types (list for tuple,
    float for int)?"""
    import dataclasses

    outcomes = {}
    sample = next(r for r in records if r.kind is LogKind.UPDATE)
    decayed = dataclasses.replace(
        sample,
        key=float(sample.key),
        before=list(sample.before),
        after=list(sample.after),
    )
    for name, (_encode, _decode, crc_payload) in CODECS.items():
        try:
            outcomes[name] = crc_payload(sample) == crc_payload(decayed)
        except TypeError:  # codec cannot even encode the decayed form
            outcomes[name] = False
    return outcomes


def _report(results, canonical) -> TextTable:
    table = TextTable(
        ["codec", "encode ns/rec", "decode ns/rec", "crc ns/rec",
         "bytes/rec", "canonical crc"],
        title="WAL record codec bakeoff (lower is better)",
    )
    for name, row in results.items():
        table.add_row(
            name, round(row["encode_ns"]), round(row["decode_ns"]),
            round(row["crc_ns"]), round(row["bytes"], 1),
            "yes" if canonical[name] else "no",
        )
    return table


def _check(results, canonical) -> None:
    # The committed codec must win the jobs the engine actually pays
    # for: CRC stamping (every append) and the archive/replication
    # round-trip (encode + decode).  On CRC the stream-aggregate race
    # vs repr is a dead heat (C-level repr() is hard to beat on tiny
    # rows; binary wins the control records ~2x) -- a 25% band keeps
    # machine noise from flaking CI, and canonicality is the tiebreak.
    assert results["binary"]["crc_ns"] < results["json"]["crc_ns"], \
        "binary CRC payload slower than JSON"
    assert results["binary"]["crc_ns"] < results["repr"]["crc_ns"] * 1.25, \
        "binary CRC payload materially slower than legacy repr"
    assert results["binary"]["encode_ns"] < results["json"]["encode_ns"], \
        "binary wire encode slower than JSON"
    binary_rt = results["binary"]["encode_ns"] + results["binary"]["decode_ns"]
    repr_rt = results["repr"]["encode_ns"] + results["repr"]["decode_ns"]
    assert binary_rt < repr_rt, "binary round-trip slower than legacy repr"
    assert results["binary"]["bytes"] < results["json"]["bytes"]
    assert results["binary"]["bytes"] < results["repr"]["bytes"]
    # JSON's remaining edge (decode speed) does not matter because it is
    # disqualified on fidelity: a composite key round-trips as a list.
    composite = LogRecord(
        1, 2, LogKind.INSERT, "T", (1, "k"), None, (1, "k", None), 0, 0,
    )
    assert json_decode(json_encode(composite)).key != composite.key, \
        "JSON unexpectedly preserved tuple keys -- revisit the bakeoff"
    assert decode_record(encode_record(composite)).key == composite.key
    # and it is the only canonical one -- the correctness half of the
    # bakeoff (the repr CRC's false scrubber repairs)
    assert canonical["binary"], "binary CRC payload must be canonical"
    assert not canonical["repr"], "repr CRC was never canonical"
    # decoded frames must round-trip losslessly for the committed codec
    record = sample_records(8)[1]
    decoded = decode_record(encode_record(record))
    assert decoded == record, "binary round-trip must be lossless"


def test_wal_codec_bakeoff(benchmark):
    records, results = benchmark.pedantic(
        lambda: run_bakeoff(quick=True), rounds=1, iterations=1
    )
    canonical = _canonical_checks(records)
    _report(results, canonical).print()
    for name, row in results.items():
        benchmark.extra_info[f"{name}_encode_ns"] = round(row["encode_ns"], 1)
        benchmark.extra_info[f"{name}_crc_ns"] = round(row["crc_ns"], 1)
    _check(results, canonical)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (400 records)"
    )
    args = parser.parse_args(argv)
    records, results = run_bakeoff(quick=args.quick)
    canonical = _canonical_checks(records)
    _report(results, canonical).print()
    try:
        _check(results, canonical)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    rt = lambda name: results[name]["encode_ns"] + results[name]["decode_ns"]  # noqa: E731
    print(
        f"winner: binary (crc {results['repr']['crc_ns'] / results['binary']['crc_ns']:.1f}x "
        f"faster than legacy repr; round-trip {rt('repr') / rt('binary'):.1f}x faster)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

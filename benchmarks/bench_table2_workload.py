"""Table II: CloudyBench's OLTP workload definition.

Prints the four transactions with their SQL statements and patterns as
loaded from the decoupled ``stmt_db.toml``, and verifies each statement
parses and plans against the sales schema (T2's three-statement
read-write flow, T1's DEFAULT-keyed insert, etc.).
"""

from repro.core.datagen import load_sales_database
from repro.core.report import TextTable
from repro.core.sqlreader import SqlStmts


def test_table2_workload(benchmark):
    stmts = benchmark.pedantic(SqlStmts, rounds=1, iterations=1)

    table = TextTable(
        ["task", "transaction name", "SQL statement", "pattern"],
        title="Table II -- CloudyBench's OLTP workload",
    )
    for task in stmts.tasks:
        spec = stmts.spec(task)
        for index, sql in enumerate(spec.statements):
            prefix = f"({index + 1}) " if len(spec.statements) > 1 else ""
            table.add_row(
                task if index == 0 else "",
                spec.name if index == 0 else "",
                prefix + sql,
                spec.pattern.replace("_", "-") if index == 0 else "",
            )
    table.print()

    # Table II's structure
    assert stmts.tasks == ["T1", "T2", "T3", "T4"]
    assert stmts.spec("T1").name == "New Orderline"
    assert stmts.spec("T1").pattern == "write_only"
    assert "VALUES (DEFAULT" in stmts.statements("T1")[0]
    assert len(stmts.statements("T2")) == 3
    assert "C_CREDIT = C_CREDIT + ?" in stmts.statements("T2")[2]
    assert stmts.spec("T3").pattern == "read_only"
    assert stmts.spec("T4").name == "Orderline Deletion"

    # every statement parses, plans and validates against the schema
    db, _ = load_sales_database(row_scale=0.001)
    plans = []
    for task in stmts.tasks:
        for sql in stmts.statements(task):
            plans.append(db.explain(sql, [0] * sql.count("?")))
    # the point lookups actually use the primary keys
    assert any("primary-key lookup" in plan for plan in plans)

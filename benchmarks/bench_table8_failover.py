"""Table VIII: fail-over evaluation (F-Score and R-Score).

Injects restart-model failures into the RW node and an RO node of each
SUT under a constant read-write workload (concurrency 150), measures
service-restoration (F) and TPS-recovery (R) times off the TPS
timeline, and asserts the paper's results:

* total recovery rank: CDB4 < CDB1 < CDB3 < CDB2 < AWS RDS;
* AWS RDS is the slowest (ARIES restart + dirty-page flushing),
  roughly 2.5x CDB1 on service restoration;
* CDB4 recovers within seconds thanks to its surviving remote buffer.
"""

from benchmarks.conftest import arch_display
from repro.core.report import TextTable


def test_table8_failover(benchmark, bench_full):
    results = benchmark.pedantic(
        lambda: bench_full.run("failover").payload, rounds=1, iterations=1
    )

    table = TextTable(
        ["system", "F(RW)", "F(RO)", "F(avg)", "R(RW)", "R(RO)", "R(avg)", "total (s)"],
        title="Table VIII -- F-Score and R-Score (seconds)",
    )
    for arch_name, scores in results.items():
        table.add_row(
            arch_display(arch_name),
            round(scores.f_rw_s, 1), round(scores.f_ro_s, 1), round(scores.f_avg_s, 1),
            round(scores.r_rw_s, 1), round(scores.r_ro_s, 1), round(scores.r_avg_s, 1),
            round(scores.total_s, 1),
        )
    table.print()

    totals = {name: scores.total_s for name, scores in results.items()}
    benchmark.extra_info["totals_s"] = {k: round(v, 1) for k, v in totals.items()}

    # the paper's total ordering
    assert sorted(totals, key=totals.get) == [
        "cdb4", "cdb1", "cdb3", "cdb2", "aws_rds",
    ]

    # RDS ~2.5x slower than CDB1 on RW service restoration (paper: 24 vs 6 s)
    ratio = results["aws_rds"].f_rw_s / results["cdb1"].f_rw_s
    assert 1.8 < ratio < 6.0

    # CDB4 end-to-end within seconds (paper: ~12 s total)
    assert totals["cdb4"] < 25
    # RDS end-to-end near the paper's ~78 s
    assert 45 < totals["aws_rds"] < 120

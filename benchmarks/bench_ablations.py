"""Ablations: knock out each architectural design choice and measure.

The paper's takeaways attribute each SUT's edge to a specific
mechanism.  These benches verify the attribution *causally* inside the
model: rebuild the architecture with one mechanism removed and confirm
the advantage disappears.

* redo pushdown (CDB1)        -> write-path throughput at scale
* remote buffer pool (CDB4)   -> big-data throughput and fail-over
* parallel log replay (CDB3)  -> replication lag
* pause-and-resume (CDB3)     -> elasticity cost / E1-Score
"""

import dataclasses

from repro.cloud.architectures import cdb1, cdb3, cdb4
from repro.cloud.failure import FailoverSimulator
from repro.cloud.mva_model import estimate_throughput
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator
from repro.core.report import TextTable
from repro.core.workload import LAG_PATTERNS, READ_WRITE, WRITE_ONLY
from repro.core.lagtime import LagTimeEvaluator
from repro.cloud.specs import ScalingKind


def test_ablation_redo_pushdown(benchmark):
    """Without redo pushdown CDB1 inherits dirty-page flushing, and its
    write throughput collapses at SF100 just like a coupled engine."""

    def run():
        base = cdb1()
        ablated = dataclasses.replace(
            base,
            storage=dataclasses.replace(base.storage, redo_pushdown=False),
            flush_coeff=0.9,            # must now flush like ARIES
            checkpoint_interval_s=30.0,
        )
        mix = WRITE_ONLY.to_workload_mix(100)
        return (
            estimate_throughput(base, mix, 200).tps,
            estimate_throughput(ablated, mix, 200).tps,
        )

    with_pushdown, without = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(["variant", "WO TPS @ SF100, con=200"],
                      title="Ablation: redo pushdown (CDB1)")
    table.add_row("with pushdown", round(with_pushdown))
    table.add_row("without (ARIES flushing)", round(without))
    table.print()
    assert without < with_pushdown * 0.9


def test_ablation_remote_buffer(benchmark):
    """Remove CDB4's 24 GB remote pool: SF100 reads fall back to the
    distributed store and the fail-over warm-up loses its shortcut."""

    def run():
        base = cdb4()
        ablated = dataclasses.replace(
            base,
            remote_buffer_bytes=0,
            recovery=dataclasses.replace(
                base.recovery,
                remote_buffer_survives=False,
                warmup_tau_rw_s=8.0,     # cold local cache refills from storage
            ),
        )
        mix = READ_WRITE.to_workload_mix(100)
        tps_with = estimate_throughput(base, mix, 200).tps
        tps_without = estimate_throughput(ablated, mix, 200).tps
        failover_with = FailoverSimulator(base, mix, 150).run("rw")
        failover_without = FailoverSimulator(ablated, mix, 150).run("rw")
        return tps_with, tps_without, failover_with.total_s, failover_without.total_s

    tps_with, tps_without, total_with, total_without = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = TextTable(
        ["variant", "RW TPS @ SF100", "fail-over total (s)"],
        title="Ablation: remote buffer pool (CDB4)",
    )
    table.add_row("with remote pool", round(tps_with), round(total_with, 1))
    table.add_row("without", round(tps_without), round(total_without, 1))
    table.print()
    assert tps_without < tps_with
    assert total_without > total_with * 1.5


def test_ablation_parallel_replay(benchmark):
    """Serialise CDB3's replayer: its millisecond-class lag inflates to
    the sequential-replay class of CDB1."""

    def run():
        base = cdb3()
        ablated = dataclasses.replace(
            base,
            storage=dataclasses.replace(
                base.storage,
                replay_parallelism=1,
                replay_batch_interval_s=0.2,  # sequential replayers batch long
            ),
        )
        lags = {}
        for name, arch in (("parallel", base), ("sequential", ablated)):
            evaluator = LagTimeEvaluator(
                arch, row_scale=0.001, concurrency=4, transactions=60
            )
            lags[name] = evaluator.run(LAG_PATTERNS["mixed"]).avg_lag_s * 1000
        return lags

    lags = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(["variant", "mixed lag (ms)"],
                      title="Ablation: parallel log replay (CDB3)")
    for name, value in lags.items():
        table.add_row(name, round(value, 2))
    table.print()
    assert lags["sequential"] > 5 * lags["parallel"]


def test_ablation_pause_resume(benchmark):
    """Disable pause-and-resume: CDB3 keeps billing an idle floor.

    Scale-to-zero's value is releasing the instance *floor*: without it
    a serverless instance cannot drop below its minimum compute unit
    (we grant the ablated variant the common 1-vCore/4-GB floor; with
    CDB3's unusually tiny 0.25-CU minimum even the floor is nearly
    free, which is itself an interesting model finding).  Over a
    single-peak run whose window is ~85% idle, the floor dominates.
    """

    def run():
        base = cdb3()
        from repro.cloud.specs import ComputeAllocation

        ablated = dataclasses.replace(
            base,
            scaling=dataclasses.replace(
                base.scaling,
                kind=ScalingKind.ON_DEMAND,   # same tracking, no pause
                reaction_s=60.0,
            ),
            instance=dataclasses.replace(
                base.instance,
                min_allocation=ComputeAllocation(1.0, 4.0),
            ),
        )
        mix = READ_WRITE.to_workload_mix(1)
        pattern = ELASTIC_PATTERNS["single_peak"]  # two idle slots + idle tail
        results = {}
        for name, arch in (("pause-resume", base), ("no pause", ablated)):
            result = ElasticityEvaluator(arch, mix, measure_window_s=600.0).run(
                pattern, 110
            )
            results[name] = (result.avg_tps, result.elastic_cost, result.e1_score)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["variant", "avg TPS", "elastic cost ($)", "E1-Score"],
        title="Ablation: pause-and-resume (CDB3, single peak)",
    )
    for name, (tps, cost, e1) in results.items():
        table.add_row(name, round(tps), round(cost, 4), round(e1))
    table.print()
    with_pause = results["pause-resume"]
    without = results["no pause"]
    assert without[1] > with_pause[1] * 1.3   # idle floor keeps billing
    assert without[2] < with_pause[2]         # E1 advantage vanishes

"""Shared fixtures for the CloudyBench reproduction benchmarks.

Each bench regenerates one table or figure of the paper: it prints the
rows/series in the paper's layout (run pytest with ``-s`` to see them)
and asserts the paper's qualitative claims -- who wins, by roughly what
factor, where the crossovers fall.  Measured numbers also land in
``benchmark.extra_info`` so ``--benchmark-json`` output carries them.
"""

import pytest

from repro.core.config import BenchConfig
from repro.core.runner import CloudyBench


@pytest.fixture(scope="session")
def bench_full():
    """The full paper configuration (all SUTs, SF1-100, con 50-200)."""
    config = BenchConfig()
    # Functional (engine-backed) evaluations use scaled-down rows.
    config.row_scale = 0.002
    config.lag_transactions = 240
    return CloudyBench(config)


@pytest.fixture(scope="session")
def overall_scores(bench_full):
    """Table IX scores, computed once and shared."""
    return bench_full.run("overall").payload


def arch_display(name: str) -> str:
    return {
        "aws_rds": "AWS RDS", "cdb1": "CDB1", "cdb2": "CDB2",
        "cdb3": "CDB3", "cdb4": "CDB4",
    }.get(name, name)

#!/usr/bin/env python3
"""CloudyBench quickstart: load the sales microservice, run real
transactions, then estimate cloud-scale throughput for every SUT.

Run with::

    python examples/quickstart.py
"""

from repro.cloud import CloudDatabase, all_architectures
from repro.core import READ_WRITE, WorkloadManager, load_sales_database
from repro.core.report import TextTable


def functional_demo() -> None:
    """Real SQL against the real storage engine (scaled-down rows)."""
    print("== functional run: real engine, real SQL ==")
    db, data = load_sales_database(scale_factor=1, row_scale=0.002)
    print(f"loaded {data.total_rows} rows "
          f"(scale factor {data.scale_factor}, row_scale {data.row_scale})")

    manager = WorkloadManager(db, READ_WRITE, concurrency=4, record_latencies=True)
    result = manager.run_transactions(2000)
    print(f"executed {result.transactions} transactions in "
          f"{result.elapsed_s:.2f}s -> {result.tps:.0f} TPS (engine wall clock)")
    print(f"mix: {result.counts}, aborted: {result.aborted}")
    print(f"p50 latency {result.latency_percentile(50) * 1e6:.0f}us, "
          f"p99 {result.latency_percentile(99) * 1e6:.0f}us")

    paid = db.query("SELECT COUNT(*) FROM orders WHERE O_STATUS = 'PAID'").scalar()
    print(f"orders now marked PAID: {paid}\n")


def modelled_demo() -> None:
    """Cloud-scale throughput from the architectural model (Figure 5)."""
    print("== modelled run: the five SUT architectures ==")
    workload = READ_WRITE.to_workload_mix(scale_factor=10)
    table = TextTable(
        ["system", "engine", "TPS@50", "TPS@100", "TPS@200", "bottleneck"],
        title="Read-write throughput at SF10 (modelled)",
    )
    for arch in all_architectures():
        cloud_db = CloudDatabase(arch)
        estimates = {con: cloud_db.estimate(workload, con) for con in (50, 100, 200)}
        table.add_row(
            arch.display_name, arch.engine,
            *[round(estimates[con].tps) for con in (50, 100, 200)],
            estimates[200].bottleneck,
        )
    table.print()


if __name__ == "__main__":
    functional_demo()
    modelled_demo()

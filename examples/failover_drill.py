#!/usr/bin/env python3
"""Fail-over drill: inject a primary-node failure into every SUT.

Reproduces the Section III-E methodology: a constant read-write
workload at concurrency 150, a restart-model failure on the RW node,
then the recovery pipeline plays out -- detection, promotion or ARIES
restart, redo/undo -- followed by cache warm-up.  Prints each system's
phase log, a TPS sparkline around the outage, and the F/R scores.

Run with::

    python examples/failover_drill.py
"""

from repro.cloud import all_architectures
from repro.cloud.failure import FailoverSimulator
from repro.core import READ_WRITE
from repro.core.report import TextTable, sparkline


def main() -> None:
    workload = READ_WRITE.to_workload_mix(scale_factor=1)
    summary = TextTable(
        ["system", "steady TPS", "F-Score (s)", "R-Score (s)", "total (s)"],
        title="RW-node fail-over at concurrency 150",
    )

    for arch in all_architectures():
        simulator = FailoverSimulator(arch, workload, concurrency=150)
        result = simulator.run(node="rw", inject_at_s=30.0)

        print(f"-- {arch.display_name} ({arch.engine}) --")
        for phase in result.phases:
            print(f"   {phase.name:12s} {phase.start_s:6.1f}s -> {phase.end_s:6.1f}s  "
                  f"{phase.description}")
        tps = [value for _t, value in result.timeline]
        print(f"   TPS  {sparkline(tps, width=60)}")
        print(f"   service restored {result.f_score_s:.1f}s after injection, "
              f"TPS back {result.r_score_s:.1f}s later\n")

        summary.add_row(
            arch.display_name, round(result.steady_tps),
            round(result.f_score_s, 1), round(result.r_score_s, 1),
            round(result.total_s, 1),
        )

    summary.print()
    print("The memory-disaggregated design (CDB4) recovers in seconds: the")
    print("remote buffer pool survives the failure, so the promoted node")
    print("starts warm while the undo scan runs in the background.")


if __name__ == "__main__":
    main()

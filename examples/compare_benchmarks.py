#!/usr/bin/env python3
"""Why a cloud benchmark needs cloud workloads (the Figure 9 story).

Runs three functional workloads against the real engine -- CloudyBench's
sales transactions, SysBench OLTP, and TPC-C -- then drives CDB3's
autoscaler with each of them to show that only CloudyBench's elastic
patterns actually exercise the scaling range.

Run with::

    python examples/compare_benchmarks.py
"""

from repro.baselines.sysbench import SysbenchWorkload, load_sysbench, sysbench_mix
from repro.baselines.tpcc import TpccWorkload, load_tpcc, tpcc_mix
from repro.cloud.architectures import get
from repro.core import READ_WRITE, load_sales_database
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator, custom_pattern
from repro.core.report import TextTable, sparkline
from repro.core.workload import SalesWorkload
from repro.engine.database import Database


def functional_side_by_side() -> None:
    print("== the same engine, three benchmarks (functional, scaled down) ==")
    table = TextTable(["benchmark", "tables", "transactions run", "notes"])

    sales_db, _ = load_sales_database(row_scale=0.001)
    sales = SalesWorkload(sales_db, READ_WRITE)
    sales.run_many(500)
    table.add_row("CloudyBench", len(sales_db.table_names), 500,
                  f"mix {sales.executed}")

    sysbench_db = Database("sysbench")
    load_sysbench(sysbench_db, tables=3, rows=300)
    sysbench = SysbenchWorkload(sysbench_db, "oltp_read_write")
    sysbench.run_many(200)
    table.add_row("SysBench", len(sysbench_db.table_names), 200,
                  "single-table read/write, no business logic")

    tpcc_db = Database("tpcc")
    scale = load_tpcc(tpcc_db, warehouses=1, customer_scale=0.003, item_scale=0.003)
    tpcc = TpccWorkload(tpcc_db, scale)
    tpcc.run_many(200)
    table.add_row("TPC-C", len(tpcc_db.table_names), 200,
                  f"mix {tpcc.executed}")
    table.print()


def autoscaler_comparison() -> None:
    print("== CDB3's CPU allocation under each benchmark (12 minutes) ==")
    arch = get("cdb3")

    proportions = []
    for key in ("single_peak", "large_spike", "single_valley", "zero_valley"):
        proportions.extend(ELASTIC_PATTERNS[key].proportions)
    runs = {
        "CloudyBench": (custom_pattern("cloudy", proportions),
                        READ_WRITE.to_workload_mix(1), 110),
        "SysBench": (custom_pattern("flat", [1.0] * 12),
                     sysbench_mix("oltp_read_write"), 11),
        "TPC-C": (custom_pattern("flat", [1.0] * 12), tpcc_mix(1), 44),
    }
    for name, (pattern, mix, tau) in runs.items():
        evaluator = ElasticityEvaluator(arch, mix, measure_window_s=720.0)
        result = evaluator.run(pattern, tau)
        values = result.collector.vcores.values
        print(f"  {name:12s} range {min(values):.2f}-{max(values):.2f} vCores  "
              f"{sparkline(values, width=48)}")
    print("\nConstant-load benchmarks barely move the allocation; the")
    print("peaks and valleys of CloudyBench sweep it across the CU range.")


if __name__ == "__main__":
    functional_side_by_side()
    autoscaler_comparison()

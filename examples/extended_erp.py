#!/usr/bin/env python3
"""The full ERP of Figure 2: Sales + Inventory + Manufacturing.

The paper focuses on the sales service and names the other two
microservices as future work; this repository ships them.  The script
loads all three services into ONE shared database (the paper: tenants
can share schema/database/server among the services), runs a blended
workload, inspects query plans with EXPLAIN, and models the blended
mix on the cloud architectures.

Run with::

    python examples/extended_erp.py
"""

from repro.cloud import all_architectures
from repro.cloud.workload_model import blend
from repro.core import READ_WRITE, SalesWorkload, load_sales_database
from repro.core.microservices import (
    ExtendedWorkload,
    INVENTORY_MIX,
    load_extended,
)
from repro.core.report import TextTable


def main() -> None:
    print("== one shared database, three microservices ==")
    db, sales_data = load_sales_database(row_scale=0.002)
    scale = load_extended(db, row_scale=0.005)
    print(f"tables: {', '.join(db.table_names)}")
    print(f"rows: {db.total_rows()} across sales + inventory + manufacturing\n")

    sales = SalesWorkload(db, READ_WRITE, seed=1)
    erp = ExtendedWorkload(db, scale, mix=INVENTORY_MIX, seed=1)
    for _ in range(300):
        sales.run_one()
        erp.run_one()
    print(f"sales mix executed:    {sales.executed}")
    print(f"extended mix executed: {erp.executed}\n")

    print("== EXPLAIN: how the planner serves each service ==")
    for sql, params in [
        ("SELECT O_ID, O_STATUS FROM orders WHERE O_ID = ?", [1]),
        ("SELECT I_QUANTITY FROM inventory WHERE I_P_ID = ? AND I_WAREHOUSE = ?", [1, 1]),
        ("SELECT B_COMPONENT_ID FROM bom WHERE B_P_ID = ?", [1]),
        ("SELECT W_ID FROM workorder WHERE W_ID >= ? AND W_ID <= ?", [1, 10]),
        ("SELECT COUNT(*) FROM restock_event", []),
    ]:
        print(f"  {sql}")
        print(f"    -> {db.explain(sql, params)}")
    print()

    print("== the blended ERP mix on the five cloud architectures ==")
    blended = blend(
        "erp-blend",
        [(READ_WRITE.to_workload_mix(1), 2.0),
         (INVENTORY_MIX.to_workload_mix(1), 1.0)],
    )
    table = TextTable(["system", "TPS@100", "TPS@200", "bottleneck"])
    for arch in all_architectures():
        from repro.cloud.mva_model import estimate_throughput

        low = estimate_throughput(arch, blended, 100)
        high = estimate_throughput(arch, blended, 200)
        table.add_row(arch.display_name, round(low.tps), round(high.tps),
                      high.bottleneck)
    table.print()


if __name__ == "__main__":
    main()

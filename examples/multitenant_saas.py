#!/usr/bin/env python3
"""Multi-tenant SaaS scenario: picking a deployment model.

A SaaS vendor has three tenants with very different traffic: a small
always-on shop, a mid-size retailer, and a flash-sale platform whose
load arrives in bursts.  Which cloud database -- isolated instances,
an elastic pool, or copy-on-write branches -- serves them best?

The script runs the paper's high-contention and staggered patterns for
all five SUTs and prints per-tenant throughput, the billed bundle, and
the T-Score, ending with a recommendation per traffic shape.

Run with::

    python examples/multitenant_saas.py
"""

from repro.cloud import all_architectures
from repro.core import READ_WRITE
from repro.core.multitenancy import (
    TENANCY_PATTERNS,
    MultiTenancyEvaluator,
)
from repro.core.report import TextTable


def run_pattern(pattern_key: str, tau: int) -> dict:
    workload = READ_WRITE.to_workload_mix(scale_factor=1)
    pattern = TENANCY_PATTERNS[pattern_key]
    print(f"pattern {pattern.name}: demand matrix "
          f"{pattern.demand_matrix(tau)} (tenants x slots)")
    results = {}
    table = TextTable(
        ["system", "tenancy model", "tenant TPS", "total TPS", "cost/min", "T-Score"],
    )
    for arch in all_architectures():
        evaluator = MultiTenancyEvaluator(arch, workload)
        result = evaluator.run(pattern, tau)
        results[arch.name] = result
        table.add_row(
            arch.display_name,
            arch.tenancy.kind.value,
            "/".join(str(round(tps)) for tps in result.tenant_avg_tps),
            round(result.total_tps),
            round(result.cost_per_minute, 4),
            round(result.t_score),
        )
    table.print()
    return results


def main() -> None:
    print("== scenario 1: everyone busy at once (high contention) ==")
    contended = run_pattern("high_contention", tau=330)

    print("== scenario 2: tenants take turns (staggered bursts) ==")
    staggered = run_pattern("staggered_high", tau=330)

    best_contended = max(contended, key=lambda n: contended[n].total_tps)
    best_staggered = max(staggered, key=lambda n: staggered[n].total_tps)
    cheapest = min(contended, key=lambda n: contended[n].cost_per_minute)
    print("recommendations:")
    print(f"  steady heavy tenants  -> {best_contended} "
          "(isolation protects against noisy neighbours)")
    print(f"  bursty staggered load -> {best_staggered} "
          "(a shared pool lends idle capacity to the active tenant)")
    print(f"  tightest budget       -> {cheapest} "
          "(shared storage + per-second compute)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Elasticity study: how each cloud database rides a demand spike.

Reproduces the Section III-C methodology on a single pattern: find the
saturation concurrency tau, run the Large Spike pattern on every SUT,
and report TPS, cost and the E1-Score -- plus the allocation timeline
that shows each autoscaling policy's personality (fast-up/slow-down,
on-demand, pause-and-resume, or simply fixed).

Run with::

    python examples/elasticity_study.py
"""

from repro.cloud import all_architectures
from repro.core import READ_WRITE
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator
from repro.core.report import TextTable, sparkline


def main() -> None:
    workload = READ_WRITE.to_workload_mix(scale_factor=1)
    pattern = ELASTIC_PATTERNS["large_spike"]

    # tau: the paper sets it to the maximum saturation concurrency
    taus = {}
    for arch in all_architectures():
        evaluator = ElasticityEvaluator(arch, workload)
        taus[arch.name] = evaluator.saturation_concurrency()
    tau = max(taus.values())
    print(f"saturation concurrencies: {taus} -> tau = {tau}")
    print(f"pattern '{pattern.name}': slots {pattern.concurrency_slots(tau)} "
          f"(one minute each), cost window 10 minutes\n")

    table = TextTable(
        ["system", "avg TPS", "execution $", "scaling $", "E1-Score"],
        title="Large Spike elasticity run",
    )
    timelines = {}
    for arch in all_architectures():
        evaluator = ElasticityEvaluator(arch, workload, measure_window_s=600.0)
        result = evaluator.run(pattern, tau)
        timelines[arch.display_name] = result.collector.vcores.values
        table.add_row(
            arch.display_name, round(result.avg_tps),
            round(result.execution_cost, 4), round(result.scaling_cost, 4),
            round(result.e1_score),
        )
    table.print()

    print("allocated vCores over the 10-minute window:")
    for name, values in timelines.items():
        print(f"  {name:8s} {sparkline(values, width=50)}")
    print("\nNote the shapes: AWS RDS and CDB4 are flat (fixed instances),")
    print("CDB1 climbs fast but descends in slow steps, CDB2 re-fits every")
    print("control period, and CDB3 drops to zero once the spike passes.")


if __name__ == "__main__":
    main()

"""YCSB baseline: core workloads A-F over a key-value usertable.

YCSB (Cooper et al., SoCC'10) is the classic cloud-serving benchmark
the paper lists in Table I: simple reads/updates/inserts/scans on one
table, no transactions, request keys drawn from zipfian / latest /
uniform distributions.  Implementing it here lets the test suite and
the Table I bench demonstrate concretely which cloud-native features
YCSB does *not* exercise.

Core workloads:

====  =========================  ==================
name  operations                 request distribution
====  =========================  ==================
A     50% read / 50% update      zipfian
B     95% read / 5% update       zipfian
C     100% read                  zipfian
D     95% read / 5% insert       latest
E     95% scan / 5% insert       zipfian
F     50% read / 50% r-m-w       zipfian
====  =========================  ==================
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.cloud.workload_model import TxnClass, WorkloadMix
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema

DEFAULT_RECORDS = 1000
FIELD_COUNT = 10
FIELD_BYTES = 100
#: nominal bytes per record (10 fields x 100 B + key overhead)
RECORD_BYTES = FIELD_COUNT * FIELD_BYTES + 24

WORKLOADS: Dict[str, Dict[str, float]] = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}

_OP_CLASSES: Dict[str, TxnClass] = {
    "read": TxnClass("ycsb_read", cpu_s=0.09e-3, page_reads=1, page_writes=0,
                     log_bytes=0, statements=1),
    "update": TxnClass("ycsb_update", cpu_s=0.14e-3, page_reads=1, page_writes=1,
                       log_bytes=FIELD_BYTES + 40, rows_written=1, rows_updated=1,
                       statements=1),
    "insert": TxnClass("ycsb_insert", cpu_s=0.16e-3, page_reads=1, page_writes=1,
                       log_bytes=RECORD_BYTES, rows_written=1, statements=1),
    "scan": TxnClass("ycsb_scan", cpu_s=0.60e-3, page_reads=12, page_writes=0,
                     log_bytes=0, statements=1),
    "rmw": TxnClass("ycsb_rmw", cpu_s=0.24e-3, page_reads=1, page_writes=1,
                    log_bytes=FIELD_BYTES + 40, rows_written=1, rows_updated=1,
                    statements=2),
}


class ZipfianGenerator:
    """Zipf-distributed integers in ``[1, n]`` (YCSB's constant 0.99).

    Uses the Gray et al. rejection-inversion-free formulation that YCSB
    itself uses: draw via the transformed inverse CDF with precomputed
    zeta values.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError("zipfian needs n >= 1")
        self.n = n
        self.theta = theta
        self._rng = rng or random.Random(0)
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self._zeta2 = 1.0 + 2.0 ** -theta
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 1
        if uz < self._zeta2:
            return 2
        return 1 + int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


USERTABLE = Schema(
    "USERTABLE",
    (
        Column("Y_ID", ColumnType.INT, nullable=False, autoincrement=True),
        *(
            Column(f"FIELD{i}", ColumnType.VARCHAR, length=FIELD_BYTES, default="")
            for i in range(FIELD_COUNT)
        ),
    ),
    primary_key="Y_ID",
)


def load_ycsb(db: Database, records: int = DEFAULT_RECORDS, seed: int = 42) -> int:
    """Create and populate the usertable; returns records loaded."""
    db.create_table(USERTABLE)
    rng = random.Random(seed)
    table = db.table("USERTABLE")
    for key in range(1, records + 1):
        table.insert_row((
            key,
            *(f"f{field}-{key}-{rng.randint(0, 999999):06d}"
              for field in range(FIELD_COUNT)),
        ))
    return records


def ycsb_mix(workload: str = "A", records: int = DEFAULT_RECORDS) -> WorkloadMix:
    """The cloud-model view of one YCSB core workload."""
    ops = WORKLOADS.get(workload.upper())
    if ops is None:
        raise ValueError(f"unknown YCSB workload {workload!r} (A-F)")
    classes = tuple((_OP_CLASSES[op], weight) for op, weight in ops.items())
    working_set = float(records * RECORD_BYTES)
    # zipfian(0.99): ~75% of accesses hit ~20% of the keys; latest is
    # even tighter.
    if workload.upper() == "D":
        hot_fraction, hot_share = 0.9, 0.05
    else:
        hot_fraction, hot_share = 0.75, 0.2
    return WorkloadMix(
        name=f"ycsb/{workload.upper()}",
        classes=classes,
        working_set_bytes=working_set,
        hot_fraction=hot_fraction,
        hot_set_bytes=working_set * hot_share,
    )


class YcsbWorkload:
    """Functional YCSB driver over a loaded engine database."""

    def __init__(
        self,
        db: Database,
        workload: str = "A",
        records: int = DEFAULT_RECORDS,
        seed: int = 42,
        max_scan: int = 10,
    ):
        ops = WORKLOADS.get(workload.upper())
        if ops is None:
            raise ValueError(f"unknown YCSB workload {workload!r} (A-F)")
        self.db = db
        self.workload = workload.upper()
        self.ops = ops
        self.max_scan = max_scan
        self._rng = random.Random(seed)
        self._records = records
        self._zipf = ZipfianGenerator(records, rng=self._rng)
        self.executed: Dict[str, int] = {op: 0 for op in ops}

    def _next_key(self) -> int:
        if self.workload == "D":
            # latest: prefer recently inserted keys
            offset = min(self._records - 1, int(self._rng.expovariate(1 / 20.0)))
            return max(1, self._records - offset)
        return self._zipf.next()

    def _read(self) -> None:
        self.db.query("SELECT FIELD0 FROM usertable WHERE Y_ID = ?", [self._next_key()])

    def _update(self) -> None:
        field = self._rng.randint(0, FIELD_COUNT - 1)
        self.db.execute(
            f"UPDATE usertable SET FIELD{field} = ? WHERE Y_ID = ?",
            [f"upd-{self._rng.randint(0, 999999):06d}", self._next_key()],
        )

    def _insert(self) -> None:
        self._records += 1
        self.db.execute(
            "INSERT INTO usertable (Y_ID, FIELD0) VALUES (?, ?)",
            [self._records, f"new-{self._records}"],
        )

    def _scan(self) -> None:
        start = self._next_key()
        length = self._rng.randint(1, self.max_scan)
        self.db.query(
            "SELECT Y_ID, FIELD0 FROM usertable WHERE Y_ID >= ? AND Y_ID < ?",
            [start, start + length],
        )

    def _rmw(self) -> None:
        key = self._next_key()
        with self.db.begin() as txn:
            self.db.execute(
                "SELECT FIELD0 FROM usertable WHERE Y_ID = ?", [key], txn=txn
            )
            self.db.execute(
                "UPDATE usertable SET FIELD0 = ? WHERE Y_ID = ?",
                [f"rmw-{self._rng.randint(0, 999999):06d}", key], txn=txn,
            )

    def run_one(self) -> str:
        ops, weights = zip(*self.ops.items())
        op = self._rng.choices(ops, weights=weights, k=1)[0]
        {
            "read": self._read,
            "update": self._update,
            "insert": self._insert,
            "scan": self._scan,
            "rmw": self._rmw,
        }[op]()
        self.executed[op] += 1
        return op

    def run_many(self, count: int) -> Dict[str, int]:
        for _ in range(count):
            self.run_one()
        return dict(self.executed)

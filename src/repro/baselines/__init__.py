"""Baseline benchmarks CloudyBench is compared against (Table I, Fig. 9).

* :mod:`repro.baselines.sysbench` -- SysBench OLTP (point selects and
  read-write mixes over ``sbtest`` tables).
* :mod:`repro.baselines.tpcc`     -- a faithful TPC-C subset (all five
  transactions over the nine-table schema).
* :mod:`repro.baselines.ycsb`     -- YCSB core workloads A-F with
  zipfian/latest/uniform request distributions.

Each baseline provides (i) a functional executor against the real
engine and (ii) a :class:`~repro.cloud.workload_model.WorkloadMix` so
the same workload can drive the cloud model -- that is how Figure 9
runs SysBench and TPC-C against CDB3's autoscaler.
"""

from repro.baselines.sysbench import SysbenchWorkload, sysbench_mix
from repro.baselines.tpcc import TpccWorkload, tpcc_mix
from repro.baselines.ycsb import YcsbWorkload, ycsb_mix

__all__ = [
    "SysbenchWorkload",
    "TpccWorkload",
    "YcsbWorkload",
    "sysbench_mix",
    "tpcc_mix",
    "ycsb_mix",
]

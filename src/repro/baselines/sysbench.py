"""SysBench OLTP baseline.

Reproduces the classic ``oltp_*`` workloads over ``sbtest<N>`` tables
(``id`` PK, integer ``k``, char payloads ``c`` and ``pad``).  The paper
runs SysBench with 3 tables of 300 000 rows (~226 MB) at a constant 11
threads to contrast its flat resource profile against CloudyBench's
elastic patterns (Figure 9).

Two entry points:

* :class:`SysbenchWorkload` -- functional executor against the engine.
* :func:`sysbench_mix` -- the analytical mix for the cloud model.
"""

from __future__ import annotations

import random

from repro.cloud.workload_model import TxnClass, WorkloadMix
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema

#: paper configuration: 3 tables x 300 000 rows ~= 226 MB
DEFAULT_TABLES = 3
DEFAULT_ROWS = 300_000
DATASET_BYTES = 226 * 2**20

#: model footprints: sysbench statements are single-row primary-key ops
_POINT_SELECT = TxnClass(
    "sb_point_select", cpu_s=0.10e-3, page_reads=1, page_writes=0,
    log_bytes=0, statements=1,
)
_INDEX_UPDATE = TxnClass(
    "sb_index_update", cpu_s=0.16e-3, page_reads=1, page_writes=1,
    log_bytes=120, rows_written=1, rows_updated=1, statements=1,
)
_OLTP_RW = TxnClass(
    # the classic oltp read/write transaction: 10 selects + 4 writes
    "sb_oltp_rw", cpu_s=1.9e-3, page_reads=12, page_writes=4,
    log_bytes=600, rows_written=4, rows_updated=2, statements=14,
)


def table_schema(index: int) -> Schema:
    return Schema(
        f"SBTEST{index}",
        (
            Column("ID", ColumnType.INT, nullable=False, autoincrement=True),
            Column("K", ColumnType.INT, nullable=False, default=0),
            Column("C", ColumnType.VARCHAR, length=120, default=""),
            Column("PAD", ColumnType.VARCHAR, length=60, default=""),
        ),
        primary_key="ID",
    )


def create_sysbench_schema(db: Database, tables: int = DEFAULT_TABLES) -> None:
    for index in range(1, tables + 1):
        db.create_table(table_schema(index))
        db.create_index(f"SBTEST{index}", f"sbtest{index}_k", ("K",))


def load_sysbench(
    db: Database,
    tables: int = DEFAULT_TABLES,
    rows: int = DEFAULT_ROWS,
    seed: int = 42,
) -> int:
    """Create and populate the sbtest tables; returns rows loaded."""
    create_sysbench_schema(db, tables)
    rng = random.Random(seed)
    loaded = 0
    for index in range(1, tables + 1):
        table = db.table(f"SBTEST{index}")
        for row_id in range(1, rows + 1):
            table.insert_row((
                row_id,
                rng.randint(1, rows),
                f"c-{row_id:012d}-{rng.randint(0, 999999):06d}",
                f"pad-{row_id:08d}",
            ))
            loaded += 1
    return loaded


def sysbench_mix(
    kind: str = "oltp_read_write",
    tables: int = DEFAULT_TABLES,
    rows: int = DEFAULT_ROWS,
) -> WorkloadMix:
    """The cloud-model view of a sysbench run.

    ``kind``: ``oltp_point_select``, ``oltp_read_write`` or
    ``oltp_write_only``.
    """
    working_set = DATASET_BYTES * (tables / DEFAULT_TABLES) * (rows / DEFAULT_ROWS)
    if kind == "oltp_point_select":
        classes = ((_POINT_SELECT, 1.0),)
    elif kind == "oltp_read_write":
        classes = ((_OLTP_RW, 1.0),)
    elif kind == "oltp_write_only":
        classes = ((_INDEX_UPDATE, 1.0),)
    else:
        raise ValueError(f"unknown sysbench workload {kind!r}")
    return WorkloadMix(
        name=f"sysbench/{kind}",
        classes=classes,
        working_set_bytes=working_set,
    )


class SysbenchWorkload:
    """Functional sysbench driver over a loaded engine database."""

    def __init__(
        self,
        db: Database,
        kind: str = "oltp_read_write",
        tables: int = DEFAULT_TABLES,
        seed: int = 42,
    ):
        if kind not in ("oltp_point_select", "oltp_read_write", "oltp_write_only"):
            raise ValueError(f"unknown sysbench workload {kind!r}")
        self.db = db
        self.kind = kind
        self.tables = tables
        self._rng = random.Random(seed)
        self._rows = {
            index: db.table(f"SBTEST{index}").row_count
            for index in range(1, tables + 1)
        }
        self.executed = 0

    def _pick(self) -> tuple[str, int]:
        index = self._rng.randint(1, self.tables)
        row_id = self._rng.randint(1, max(1, self._rows[index]))
        return f"SBTEST{index}", row_id

    def _point_select(self) -> None:
        table, row_id = self._pick()
        self.db.query(f"SELECT C FROM {table} WHERE ID = ?", [row_id])

    def _index_update(self) -> None:
        table, row_id = self._pick()
        self.db.execute(f"UPDATE {table} SET K = K + ? WHERE ID = ?", [1, row_id])

    def _non_index_update(self) -> None:
        table, row_id = self._pick()
        self.db.execute(
            f"UPDATE {table} SET C = ? WHERE ID = ?",
            [f"u-{self.executed:012d}", row_id],
        )

    def _range_sum(self) -> None:
        table, row_id = self._pick()
        self.db.query(
            f"SELECT SUM(K) FROM {table} WHERE ID >= ? AND ID <= ?",
            [row_id, row_id + 99],
        )

    def _oltp_read_write(self) -> None:
        """The classic transaction: 10 point selects, 1 range sum,
        2 updates, 1 delete+insert pair, in one transaction."""
        table, _ = self._pick()
        with self.db.begin() as txn:
            for _ in range(10):
                _, row_id = self._pick()
                self.db.execute(
                    f"SELECT C FROM {table} WHERE ID = ?", [row_id], txn=txn
                )
            _, low = self._pick()
            self.db.execute(
                f"SELECT SUM(K) FROM {table} WHERE ID >= ? AND ID <= ?",
                [low, low + 99], txn=txn,
            )
            _, upd = self._pick()
            self.db.execute(
                f"UPDATE {table} SET K = K + ? WHERE ID = ?", [1, upd], txn=txn
            )
            _, upd2 = self._pick()
            self.db.execute(
                f"UPDATE {table} SET C = ? WHERE ID = ?",
                [f"rw-{self.executed:010d}", upd2], txn=txn,
            )
            _, victim = self._pick()
            deleted = self.db.execute(
                f"DELETE FROM {table} WHERE ID = ?", [victim], txn=txn
            ).rowcount
            if deleted:
                self.db.execute(
                    f"INSERT INTO {table} (ID, K, C, PAD) VALUES (?, ?, ?, ?)",
                    [victim, 1, f"re-{victim}", f"pad-{victim}"], txn=txn,
                )

    def run_one(self) -> None:
        if self.kind == "oltp_point_select":
            self._point_select()
        elif self.kind == "oltp_write_only":
            self._index_update()
        else:
            self._oltp_read_write()
        self.executed += 1

    def run_many(self, count: int) -> int:
        for _ in range(count):
            self.run_one()
        return self.executed

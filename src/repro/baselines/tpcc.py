"""TPC-C baseline: the five standard transactions over nine tables.

The paper contrasts TPC-C (via OLTP-Bench, scale factor 1, constant 44
threads) with CloudyBench's elastic patterns in Figure 9.  This module
implements a faithful subset: the full nine-table schema with the
standard scaling ratios, the NewOrder / Payment / OrderStatus /
Delivery / StockLevel transactions with the 45/43/4/4/4 mix, and the
1% intentional NewOrder abort.

Composite TPC-C keys are mapped onto surrogate integer primary keys
plus unique secondary indexes, since the engine keys rows by a single
column.  ``item_scale``/``customer_scale`` shrink the loaded rows for
functional runs while preserving key relationships.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.workload_model import TxnClass, WorkloadMix
from repro.core.resilience import retry_transaction
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema

#: standard TPC-C scaling ratios (per warehouse)
DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
ITEMS = 100_000
#: nominal on-disk footprint of one warehouse (~100 MB)
BYTES_PER_WAREHOUSE = 100 * 2**20

#: the standard transaction mix (percent)
STANDARD_MIX = {
    "new_order": 45,
    "payment": 43,
    "order_status": 4,
    "delivery": 4,
    "stock_level": 4,
}

#: model footprints of the five transactions
TPCC_CLASSES: Dict[str, TxnClass] = {
    "new_order": TxnClass(
        "tpcc_new_order", cpu_s=4.2e-3, page_reads=23, page_writes=12,
        log_bytes=2200, rows_written=12, rows_updated=10, statements=26,
    ),
    "payment": TxnClass(
        "tpcc_payment", cpu_s=1.6e-3, page_reads=4, page_writes=4,
        log_bytes=500, rows_written=4, rows_updated=3, statements=6,
    ),
    "order_status": TxnClass(
        "tpcc_order_status", cpu_s=0.9e-3, page_reads=13, page_writes=0,
        log_bytes=0, statements=4,
    ),
    "delivery": TxnClass(
        "tpcc_delivery", cpu_s=5.0e-3, page_reads=40, page_writes=30,
        log_bytes=1800, rows_written=30, rows_updated=30, statements=34,
    ),
    "stock_level": TxnClass(
        "tpcc_stock_level", cpu_s=2.4e-3, page_reads=200, page_writes=0,
        log_bytes=0, statements=3,
    ),
}


def tpcc_mix(warehouses: int = 1) -> WorkloadMix:
    """The cloud-model view of a TPC-C run at ``warehouses`` scale."""
    classes = tuple(
        (TPCC_CLASSES[name], float(weight)) for name, weight in STANDARD_MIX.items()
    )
    return WorkloadMix(
        name=f"tpcc/W{warehouses}",
        classes=classes,
        working_set_bytes=float(BYTES_PER_WAREHOUSE * warehouses),
        # TPC-C confines most traffic to each warehouse's districts,
        # which behave like a hot set of ~15% of the data.
        hot_fraction=0.75,
        hot_set_bytes=float(BYTES_PER_WAREHOUSE * warehouses) * 0.15,
    )


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------

def _schemas() -> List[Schema]:
    i, dec, vc, ts = ColumnType.INT, ColumnType.DECIMAL, ColumnType.VARCHAR, ColumnType.TIMESTAMP
    return [
        Schema("WAREHOUSE", (
            Column("W_ID", i, nullable=False),
            Column("W_NAME", vc, length=10),
            Column("W_TAX", dec, default=0.1),
            Column("W_YTD", dec, default=0.0),
        ), primary_key="W_ID"),
        Schema("DISTRICT", (
            Column("D_KEY", i, nullable=False, autoincrement=True),
            Column("D_ID", i, nullable=False),
            Column("D_W_ID", i, nullable=False),
            Column("D_TAX", dec, default=0.1),
            Column("D_YTD", dec, default=0.0),
            Column("D_NEXT_O_ID", i, nullable=False, default=1),
        ), primary_key="D_KEY"),
        Schema("CUSTOMER", (
            Column("C_KEY", i, nullable=False, autoincrement=True),
            Column("C_ID", i, nullable=False),
            Column("C_D_ID", i, nullable=False),
            Column("C_W_ID", i, nullable=False),
            Column("C_LAST", vc, length=16),
            Column("C_BALANCE", dec, default=-10.0),
            Column("C_YTD_PAYMENT", dec, default=10.0),
            Column("C_PAYMENT_CNT", i, default=1),
            Column("C_DELIVERY_CNT", i, default=0),
        ), primary_key="C_KEY"),
        Schema("HISTORY", (
            Column("H_ID", i, nullable=False, autoincrement=True),
            Column("H_C_KEY", i, nullable=False),
            Column("H_D_ID", i, nullable=False),
            Column("H_W_ID", i, nullable=False),
            Column("H_AMOUNT", dec, default=0.0),
            Column("H_DATE", ts),
        ), primary_key="H_ID"),
        Schema("NEW_ORDER", (
            Column("NO_KEY", i, nullable=False, autoincrement=True),
            Column("NO_O_ID", i, nullable=False),
            Column("NO_D_ID", i, nullable=False),
            Column("NO_W_ID", i, nullable=False),
        ), primary_key="NO_KEY"),
        Schema("ORDERS", (
            Column("O_KEY", i, nullable=False, autoincrement=True),
            Column("O_ID", i, nullable=False),
            Column("O_D_ID", i, nullable=False),
            Column("O_W_ID", i, nullable=False),
            Column("O_C_ID", i, nullable=False),
            Column("O_CARRIER_ID", i),
            Column("O_OL_CNT", i, default=0),
            Column("O_ENTRY_D", ts),
        ), primary_key="O_KEY"),
        Schema("ORDER_LINE", (
            Column("OL_KEY", i, nullable=False, autoincrement=True),
            Column("OL_O_ID", i, nullable=False),
            Column("OL_D_ID", i, nullable=False),
            Column("OL_W_ID", i, nullable=False),
            Column("OL_NUMBER", i, nullable=False),
            Column("OL_I_ID", i, nullable=False),
            Column("OL_QUANTITY", i, default=5),
            Column("OL_AMOUNT", dec, default=0.0),
        ), primary_key="OL_KEY"),
        Schema("ITEM", (
            Column("I_ID", i, nullable=False),
            Column("I_NAME", vc, length=24),
            Column("I_PRICE", dec, default=1.0),
        ), primary_key="I_ID"),
        Schema("STOCK", (
            Column("S_KEY", i, nullable=False, autoincrement=True),
            Column("S_I_ID", i, nullable=False),
            Column("S_W_ID", i, nullable=False),
            Column("S_QUANTITY", i, default=50),
            Column("S_YTD", i, default=0),
            Column("S_ORDER_CNT", i, default=0),
        ), primary_key="S_KEY"),
    ]


def create_tpcc_schema(db: Database) -> None:
    for schema in _schemas():
        db.create_table(schema)
    db.create_index("DISTRICT", "district_wd", ("D_W_ID", "D_ID"), unique=True)
    db.create_index("CUSTOMER", "customer_wdc", ("C_W_ID", "C_D_ID", "C_ID"), unique=True)
    db.create_index("NEW_ORDER", "new_order_wdo", ("NO_W_ID", "NO_D_ID", "NO_O_ID"), unique=True)
    db.create_index("NEW_ORDER", "new_order_wd", ("NO_W_ID", "NO_D_ID"))
    db.create_index("ORDERS", "orders_wdo", ("O_W_ID", "O_D_ID", "O_ID"), unique=True)
    db.create_index("ORDERS", "orders_wdc", ("O_W_ID", "O_D_ID", "O_C_ID"))
    db.create_index("ORDER_LINE", "order_line_wdo", ("OL_W_ID", "OL_D_ID", "OL_O_ID"))
    db.create_index("STOCK", "stock_wi", ("S_W_ID", "S_I_ID"), unique=True)


@dataclass
class TpccScale:
    """Loaded sizes (possibly shrunk for functional runs)."""

    warehouses: int
    districts: int
    customers_per_district: int
    items: int


def load_tpcc(
    db: Database,
    warehouses: int = 1,
    customer_scale: float = 0.01,
    item_scale: float = 0.01,
    seed: int = 42,
) -> TpccScale:
    """Create and populate the TPC-C tables (scaled-down row counts)."""
    create_tpcc_schema(db)
    rng = random.Random(seed)
    customers = max(3, int(CUSTOMERS_PER_DISTRICT * customer_scale))
    items = max(10, int(ITEMS * item_scale))
    now = 1_700_000_000.0

    for i_id in range(1, items + 1):
        db.table("ITEM").insert_row((i_id, f"item-{i_id:06d}", round(rng.uniform(1, 100), 2)))

    for w_id in range(1, warehouses + 1):
        db.table("WAREHOUSE").insert_row((w_id, f"W{w_id}", 0.08, 300_000.0))
        for i_id in range(1, items + 1):
            db.table("STOCK").insert_row(
                (db.table("STOCK").next_autoincrement(), i_id, w_id,
                 rng.randint(10, 100), 0, 0)
            )
        for d_id in range(1, DISTRICTS_PER_WAREHOUSE + 1):
            db.table("DISTRICT").insert_row(
                (db.table("DISTRICT").next_autoincrement(), d_id, w_id,
                 0.09, 30_000.0, customers + 1)
            )
            for c_id in range(1, customers + 1):
                c_key = db.table("CUSTOMER").next_autoincrement()
                db.table("CUSTOMER").insert_row(
                    (c_key, c_id, d_id, w_id, f"LAST{c_id:04d}",
                     -10.0, 10.0, 1, 0)
                )
                # one initial order per customer, already delivered
                o_key = db.table("ORDERS").next_autoincrement()
                db.table("ORDERS").insert_row(
                    (o_key, c_id, d_id, w_id, c_id, rng.randint(1, 10), 5, now)
                )
                for number in range(1, 6):
                    db.table("ORDER_LINE").insert_row(
                        (db.table("ORDER_LINE").next_autoincrement(),
                         c_id, d_id, w_id, number, rng.randint(1, items),
                         5, round(rng.uniform(1, 100), 2))
                    )
    return TpccScale(
        warehouses=warehouses,
        districts=DISTRICTS_PER_WAREHOUSE,
        customers_per_district=customers,
        items=items,
    )


class TpccAbort(Exception):
    """The intentional 1% NewOrder rollback of the TPC-C spec."""


class TpccWorkload:
    """Functional TPC-C driver over a loaded engine database."""

    def __init__(self, db: Database, scale: TpccScale, seed: int = 42):
        self.db = db
        self.scale = scale
        self._rng = random.Random(seed)
        self.executed: Dict[str, int] = {name: 0 for name in STANDARD_MIX}
        self.aborted = 0

    # -- helpers ------------------------------------------------------------

    def _wdc(self) -> Tuple[int, int, int]:
        return (
            self._rng.randint(1, self.scale.warehouses),
            self._rng.randint(1, self.scale.districts),
            self._rng.randint(1, self.scale.customers_per_district),
        )

    def _district_row(self, txn, w_id: int, d_id: int):
        return self.db.execute(
            "SELECT D_KEY, D_NEXT_O_ID, D_TAX FROM district WHERE D_W_ID = ? AND D_ID = ?",
            [w_id, d_id], txn=txn,
        ).first()

    # -- transactions ----------------------------------------------------------

    def new_order(self) -> bool:
        """Insert an order with 5-15 lines; 1% roll back intentionally."""
        w_id, d_id, c_id = self._wdc()
        n_lines = self._rng.randint(5, 15)
        rollback = self._rng.random() < 0.01
        try:
            with self.db.begin() as txn:
                district = self._district_row(txn, w_id, d_id)
                if district is None:
                    return False
                d_key, next_o_id, _d_tax = district
                self.db.execute(
                    "UPDATE district SET D_NEXT_O_ID = D_NEXT_O_ID + ? WHERE D_KEY = ?",
                    [1, d_key], txn=txn,
                )
                self.db.execute(
                    "INSERT INTO orders (O_ID, O_D_ID, O_W_ID, O_C_ID, O_OL_CNT, O_ENTRY_D)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    [next_o_id, d_id, w_id, c_id, n_lines, 1_700_000_000.0], txn=txn,
                )
                self.db.execute(
                    "INSERT INTO new_order (NO_O_ID, NO_D_ID, NO_W_ID) VALUES (?, ?, ?)",
                    [next_o_id, d_id, w_id], txn=txn,
                )
                for number in range(1, n_lines + 1):
                    i_id = self._rng.randint(1, self.scale.items)
                    item = self.db.execute(
                        "SELECT I_PRICE FROM item WHERE I_ID = ?", [i_id], txn=txn
                    ).first()
                    if item is None:
                        raise TpccAbort()
                    quantity = self._rng.randint(1, 10)
                    self.db.execute(
                        "UPDATE stock SET S_QUANTITY = S_QUANTITY - ?, S_YTD = S_YTD + ?,"
                        " S_ORDER_CNT = S_ORDER_CNT + ? WHERE S_W_ID = ? AND S_I_ID = ?",
                        [quantity, quantity, 1, w_id, i_id], txn=txn,
                    )
                    self.db.execute(
                        "INSERT INTO order_line (OL_O_ID, OL_D_ID, OL_W_ID, OL_NUMBER,"
                        " OL_I_ID, OL_QUANTITY, OL_AMOUNT) VALUES (?, ?, ?, ?, ?, ?, ?)",
                        [next_o_id, d_id, w_id, number, i_id, quantity,
                         round(item[0] * quantity, 2)], txn=txn,
                    )
                if rollback:
                    raise TpccAbort()
        except TpccAbort:
            self.aborted += 1
            return False
        return True

    def payment(self) -> bool:
        w_id, d_id, c_id = self._wdc()
        amount = round(self._rng.uniform(1, 5000), 2)
        with self.db.begin() as txn:
            self.db.execute(
                "UPDATE warehouse SET W_YTD = W_YTD + ? WHERE W_ID = ?",
                [amount, w_id], txn=txn,
            )
            district = self._district_row(txn, w_id, d_id)
            if district is None:
                return False
            self.db.execute(
                "UPDATE district SET D_YTD = D_YTD + ? WHERE D_KEY = ?",
                [amount, district[0]], txn=txn,
            )
            customer = self.db.execute(
                "SELECT C_KEY FROM customer WHERE C_W_ID = ? AND C_D_ID = ? AND C_ID = ?",
                [w_id, d_id, c_id], txn=txn,
            ).first()
            if customer is None:
                return False
            self.db.execute(
                "UPDATE customer SET C_BALANCE = C_BALANCE - ?,"
                " C_YTD_PAYMENT = C_YTD_PAYMENT + ?, C_PAYMENT_CNT = C_PAYMENT_CNT + ?"
                " WHERE C_KEY = ?",
                [amount, amount, 1, customer[0]], txn=txn,
            )
            self.db.execute(
                "INSERT INTO history (H_C_KEY, H_D_ID, H_W_ID, H_AMOUNT, H_DATE)"
                " VALUES (?, ?, ?, ?, ?)",
                [customer[0], d_id, w_id, amount, 1_700_000_000.0], txn=txn,
            )
        return True

    def order_status(self) -> Optional[Tuple]:
        w_id, d_id, c_id = self._wdc()
        latest = self.db.query(
            "SELECT O_ID, O_CARRIER_ID FROM orders"
            " WHERE O_W_ID = ? AND O_D_ID = ? AND O_C_ID = ?"
            " ORDER BY O_ID DESC LIMIT 1",
            [w_id, d_id, c_id],
        ).first()
        if latest is None:
            return None
        self.db.query(
            "SELECT OL_I_ID, OL_QUANTITY, OL_AMOUNT FROM order_line"
            " WHERE OL_W_ID = ? AND OL_D_ID = ? AND OL_O_ID = ?",
            [w_id, d_id, latest[0]],
        )
        return latest

    def delivery(self) -> int:
        """Deliver the oldest new order of each district; returns count."""
        w_id = self._rng.randint(1, self.scale.warehouses)
        delivered = 0
        with self.db.begin() as txn:
            for d_id in range(1, self.scale.districts + 1):
                oldest = self.db.execute(
                    "SELECT NO_KEY, NO_O_ID FROM new_order"
                    " WHERE NO_W_ID = ? AND NO_D_ID = ? ORDER BY NO_O_ID LIMIT 1",
                    [w_id, d_id], txn=txn,
                ).first()
                if oldest is None:
                    continue
                no_key, o_id = oldest
                self.db.execute(
                    "DELETE FROM new_order WHERE NO_KEY = ?", [no_key], txn=txn
                )
                order = self.db.execute(
                    "SELECT O_KEY, O_C_ID FROM orders"
                    " WHERE O_W_ID = ? AND O_D_ID = ? AND O_ID = ?",
                    [w_id, d_id, o_id], txn=txn,
                ).first()
                if order is None:
                    continue
                self.db.execute(
                    "UPDATE orders SET O_CARRIER_ID = ? WHERE O_KEY = ?",
                    [self._rng.randint(1, 10), order[0]], txn=txn,
                )
                total = self.db.execute(
                    "SELECT SUM(OL_AMOUNT) FROM order_line"
                    " WHERE OL_W_ID = ? AND OL_D_ID = ? AND OL_O_ID = ?",
                    [w_id, d_id, o_id], txn=txn,
                ).scalar() or 0.0
                customer = self.db.execute(
                    "SELECT C_KEY FROM customer"
                    " WHERE C_W_ID = ? AND C_D_ID = ? AND C_ID = ?",
                    [w_id, d_id, order[1]], txn=txn,
                ).first()
                if customer is not None:
                    self.db.execute(
                        "UPDATE customer SET C_BALANCE = C_BALANCE + ?,"
                        " C_DELIVERY_CNT = C_DELIVERY_CNT + ? WHERE C_KEY = ?",
                        [total, 1, customer[0]], txn=txn,
                    )
                delivered += 1
        return delivered

    def stock_level(self) -> int:
        """Count distinct recent items below a stock threshold."""
        w_id = self._rng.randint(1, self.scale.warehouses)
        d_id = self._rng.randint(1, self.scale.districts)
        threshold = self._rng.randint(10, 20)
        district = self.db.query(
            "SELECT D_NEXT_O_ID FROM district WHERE D_W_ID = ? AND D_ID = ?",
            [w_id, d_id],
        ).first()
        if district is None:
            return 0
        next_o_id = district[0]
        lines = self.db.query(
            "SELECT OL_I_ID FROM order_line"
            " WHERE OL_W_ID = ? AND OL_D_ID = ? AND OL_O_ID >= ? AND OL_O_ID < ?",
            [w_id, d_id, max(1, next_o_id - 20), next_o_id],
        ).rows
        low = 0
        for (i_id,) in set(lines):
            stock = self.db.query(
                "SELECT S_QUANTITY FROM stock WHERE S_W_ID = ? AND S_I_ID = ?",
                [w_id, i_id],
            ).first()
            if stock is not None and stock[0] < threshold:
                low += 1
        return low

    # -- driver -------------------------------------------------------------------

    def run_one(self, name: Optional[str] = None) -> str:
        if name is None:
            names, weights = zip(*STANDARD_MIX.items())
            name = self._rng.choices(names, weights=weights, k=1)[0]
        runner = {
            "new_order": self.new_order,
            "payment": self.payment,
            "order_status": self.order_status,
            "delivery": self.delivery,
            "stock_level": self.stock_level,
        }[name]
        # Classification-driven retry: replay the transaction on
        # retryable aborts (lock timeout / deadlock victim), never on
        # semantic failures.  The TPC-C spec's intentional 1% NewOrder
        # rollback is handled inside new_order and is NOT retried.
        outcome = retry_transaction(runner, attempts=3)
        self.aborted += outcome.aborts
        if outcome.committed:
            self.executed[name] += 1
        return name

    def run_many(self, count: int) -> Dict[str, int]:
        for _ in range(count):
            self.run_one()
        return dict(self.executed)

"""CloudyBench reproduction: a testbed for cloud-native databases.

The package reproduces *CloudyBench: A Testbed for A Comprehensive
Evaluation of Cloud-Native Databases* (ICDE 2025) as a self-contained
Python library:

* :mod:`repro.engine`    -- a miniature transactional storage engine.
* :mod:`repro.sim`       -- the deterministic simulation kernel.
* :mod:`repro.cloud`     -- architectural models of the five SUTs.
* :mod:`repro.core`      -- the CloudyBench workloads, evaluators and
  the PERFECT metric framework.
* :mod:`repro.baselines` -- SysBench, TPC-C and YCSB comparators.

Quickstart::

    from repro import CloudyBench, BenchConfig
    bench = CloudyBench(BenchConfig.quick())
    for key, tps in bench.run("throughput").payload.items():
        print(key, round(tps))
"""

from repro.core import BenchConfig, CloudyBench

__version__ = "1.0.0"

__all__ = ["BenchConfig", "CloudyBench", "__version__"]

"""Sharded engine fleet: hash partitioning plus cross-shard 2PC.

The package scales the single-node engine *out*: a
:class:`~repro.shard.fleet.ShardedDatabase` fronts N real
:class:`~repro.engine.database.Database` instances, a
:class:`~repro.shard.router.ShardRouter` hashes each table's partition
key to an owning shard (single-shard statements take a fast path), and
a :class:`~repro.shard.coordinator.TxnCoordinator` runs presumed-abort
two-phase commit for the transactions that touch more than one shard.

Durability follows the textbook protocol: PREPARE records on every
participant, the coordinator's commit DECISION logged on each
participant's WAL (group-committed to amortize the fsync point), and a
fleet-level recovery pass that resolves in-doubt branches after a crash
by consulting the union of durable decisions.
"""

from repro.engine.errors import ShardUnavailableError
from repro.shard.coordinator import (
    PHASES,
    CoordinatorCrash,
    GlobalTransaction,
    TxnCoordinator,
)
from repro.shard.driver import ShardRunResult, run_inline, run_multiprocess, run_scaleout
from repro.shard.fleet import (
    FleetRecoveryReport,
    ShardedDatabase,
    load_sales_fleet,
    load_sales_shard,
    sales_router,
)
from repro.shard.router import ShardError, ShardRouter, stable_hash
from repro.shard.workload import LocalShardWorkload, ShardSalesWorkload

__all__ = [
    "PHASES",
    "CoordinatorCrash",
    "ShardUnavailableError",
    "GlobalTransaction",
    "TxnCoordinator",
    "ShardRunResult",
    "run_inline",
    "run_multiprocess",
    "run_scaleout",
    "FleetRecoveryReport",
    "ShardedDatabase",
    "load_sales_fleet",
    "load_sales_shard",
    "sales_router",
    "ShardError",
    "ShardRouter",
    "stable_hash",
    "LocalShardWorkload",
    "ShardSalesWorkload",
]

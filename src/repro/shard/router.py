"""Hash partitioning: which shard owns a row, which shard runs a statement.

Routing is a pure function of (table, partition-key value, shard
count).  The hash must be *stable across processes* -- Python's builtin
``hash`` is salted per interpreter, so the multiprocess load driver and
the inline fleet would disagree about row placement.  CRC32 over the
value's canonical repr is deterministic everywhere and cheap.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional, Sequence

from repro.engine.errors import EngineError
from repro.engine.sql import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    Value,
)
from repro.engine.types import Schema


class ShardError(EngineError):
    """A statement cannot be routed or merged across the fleet."""


def stable_hash(value: Any) -> int:
    """Process-stable 32-bit hash of a partition-key value.

    ``repr`` canonicalizes: ints, floats and strings each map to one
    byte sequence per logical value, unlike the salted builtin ``hash``.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


class ShardRouter:
    """Maps partition-key values to shard ids for registered tables."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ShardError("a fleet needs at least one shard")
        self.n_shards = n_shards
        self._partition_keys: Dict[str, str] = {}

    def register(self, table: str, column: str) -> None:
        """Declare ``column`` as the partition key of ``table``."""
        self._partition_keys[table.upper()] = column.upper()

    def partition_column(self, table: str) -> str:
        try:
            return self._partition_keys[table.upper()]
        except KeyError:
            raise ShardError(f"no partition key registered for {table!r}") from None

    def shard_for(self, table: str, value: Any) -> int:
        """Owning shard of the row of ``table`` keyed by ``value``."""
        self.partition_column(table)  # validate registration
        return stable_hash(value) % self.n_shards

    def shard_for_row(self, schema: Schema, row: Sequence[Any]) -> int:
        """Owning shard of a full row (used by the fleet loaders)."""
        column = self.partition_column(schema.table)
        return self.shard_for(schema.table, row[schema.column_index(column)])

    # -- statement routing ---------------------------------------------------

    @staticmethod
    def _concrete(value: Value, params: Sequence[Any]) -> Any:
        """Resolve a parser :class:`Value` to a Python value, or None
        when the statement carries no concrete value (DEFAULT)."""
        if value.kind == "param":
            return params[value.param_index]
        if value.kind == "literal":
            return value.literal
        return None  # DEFAULT: decided by the shard, unknowable here

    def route_statement(
        self, statement: Statement, params: Sequence[Any], schema: Schema
    ) -> Optional[int]:
        """The single shard a statement targets, or ``None`` for fan-out.

        A statement is single-shard when its WHERE clause pins the
        table's partition key with equality (or, for INSERT, when the
        row being inserted carries a concrete partition-key value).
        Everything else scatters to all shards; INSERTs must always
        route, so an INSERT without a concrete partition value raises.
        """
        partition = self.partition_column(statement.table)
        if isinstance(statement, InsertStatement):
            columns = statement.columns or schema.column_names
            for column, value in zip(columns, statement.values):
                if column.upper() == partition:
                    concrete = self._concrete(value, params)
                    if concrete is None:
                        break
                    return self.shard_for(statement.table, concrete)
            raise ShardError(
                f"INSERT into {statement.table} carries no concrete value for "
                f"partition key {partition}; sharded inserts must supply one "
                f"(autoincrement would mint conflicting ids per shard)"
            )
        if isinstance(statement, (SelectStatement, UpdateStatement, DeleteStatement)):
            for condition in statement.where:
                if condition.column.upper() == partition and condition.op == "=":
                    concrete = self._concrete(condition.value, params)
                    if concrete is not None:
                        return self.shard_for(statement.table, concrete)
            return None
        raise ShardError(f"cannot route statement type {type(statement).__name__}")

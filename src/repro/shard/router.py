"""Hash partitioning: which shard owns a row, which shard runs a statement.

Routing is a pure function of (table, partition-key value, shard
count).  The hash must be *stable across processes* -- Python's builtin
``hash`` is salted per interpreter, so the multiprocess load driver and
the inline fleet would disagree about row placement.  CRC32 over the
value's canonical repr is deterministic everywhere and cheap.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional, Sequence

from repro.engine.errors import EngineError
from repro.engine.sql import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    Value,
)
from repro.engine.types import Schema


class ShardError(EngineError):
    """A statement cannot be routed or merged across the fleet."""


def stable_hash(value: Any) -> int:
    """Process-stable 32-bit hash of a partition-key value.

    ``repr`` canonicalizes: ints, floats and strings each map to one
    byte sequence per logical value, unlike the salted builtin ``hash``.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


class ShardRouter:
    """Maps partition-key values to shard ids for registered tables."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ShardError("a fleet needs at least one shard")
        self.n_shards = n_shards
        self._partition_keys: Dict[str, str] = {}
        #: bumped on every (re-)registration; cached route plans carry
        #: the version they were compiled under and miss when it moves
        self._version = 0

    def register(self, table: str, column: str) -> None:
        """Declare ``column`` as the partition key of ``table``."""
        self._partition_keys[table.upper()] = column.upper()
        self._version += 1

    def partition_column(self, table: str) -> str:
        try:
            return self._partition_keys[table.upper()]
        except KeyError:
            raise ShardError(f"no partition key registered for {table!r}") from None

    def shard_for(self, table: str, value: Any) -> int:
        """Owning shard of the row of ``table`` keyed by ``value``."""
        self.partition_column(table)  # validate registration
        return stable_hash(value) % self.n_shards

    def shard_for_row(self, schema: Schema, row: Sequence[Any]) -> int:
        """Owning shard of a full row (used by the fleet loaders)."""
        column = self.partition_column(schema.table)
        return self.shard_for(schema.table, row[schema.column_index(column)])

    # -- statement routing ---------------------------------------------------

    @staticmethod
    def _concrete(value: Value, params: Sequence[Any]) -> Any:
        """Resolve a parser :class:`Value` to a Python value, or None
        when the statement carries no concrete value (DEFAULT)."""
        if value.kind == "param":
            return params[value.param_index]
        if value.kind == "literal":
            return value.literal
        return None  # DEFAULT: decided by the shard, unknowable here

    def route_statement(
        self, statement: Statement, params: Sequence[Any], schema: Schema
    ) -> Optional[int]:
        """The single shard a statement targets, or ``None`` for fan-out.

        A statement is single-shard when its WHERE clause pins the
        table's partition key with equality (or, for INSERT, when the
        row being inserted carries a concrete partition-key value).
        Everything else scatters to all shards; INSERTs must always
        route, so an INSERT without a concrete partition value raises.
        """
        partition = self.partition_column(statement.table)
        plan = self._compile_route(statement, schema, partition)
        return self._run_route(plan, statement.table, partition, params)

    def route_prepared(
        self, prepared, params: Sequence[Any]
    ) -> Optional[int]:
        """Route a prepared statement, caching its route plan.

        The plan -- which statement value pins the partition key -- is
        a function of the statement shape alone, so it compiles once
        and is memoised on the prepared object.  Parameter values stay
        run-time: the same plan hashes a different key per call.
        """
        cached = prepared.route_plan
        if cached is None or cached[0] != self._version:
            statement = prepared.statement
            partition = self.partition_column(statement.table)
            plan = self._compile_route(
                statement, prepared.table.schema, partition
            )
            cached = (self._version, plan, statement.table, partition)
            prepared.route_plan = cached
        return self._run_route(cached[1], cached[2], cached[3], params)

    @staticmethod
    def _compile_route(statement: Statement, schema: Schema, partition: str):
        """Find the statement value that pins the partition key.

        Returns ``("value", is_param, payload)`` when one exists,
        ``("candidates", [...])`` for a WHERE clause whose equality
        values must be inspected per call (a NULL falls through to the
        next candidate), ``("fanout",)`` or ``("unroutable",)``.
        """
        if isinstance(statement, InsertStatement):
            columns = statement.columns or schema.column_names
            for column, value in zip(columns, statement.values):
                if column.upper() == partition:
                    if value.kind == "param":
                        return ("insert", True, value.param_index)
                    if value.kind == "literal":
                        return ("insert", False, value.literal)
                    break  # DEFAULT: decided by the shard, unknowable here
            return ("unroutable",)
        if isinstance(statement, (SelectStatement, UpdateStatement, DeleteStatement)):
            candidates = []
            for condition in statement.where:
                if condition.column.upper() == partition and condition.op == "=":
                    value = condition.value
                    if value.kind == "param":
                        candidates.append((True, value.param_index))
                    elif value.kind == "literal":
                        candidates.append((False, value.literal))
            return ("where", candidates)
        raise ShardError(f"cannot route statement type {type(statement).__name__}")

    def _run_route(
        self, plan, table: str, partition: str, params: Sequence[Any]
    ) -> Optional[int]:
        kind = plan[0]
        n = self.n_shards
        if kind == "where":
            for is_param, payload in plan[1]:
                value = params[payload] if is_param else payload
                if value is not None:
                    # one shard: any pinned value routes there, unhashed
                    return 0 if n == 1 else stable_hash(value) % n
            return None
        if kind == "insert":
            _kind, is_param, payload = plan
            value = params[payload] if is_param else payload
            if value is not None:
                return 0 if n == 1 else stable_hash(value) % n
        raise ShardError(
            f"INSERT into {table} carries no concrete value for "
            f"partition key {partition}; sharded inserts must supply one "
            f"(autoincrement would mint conflicting ids per shard)"
        )

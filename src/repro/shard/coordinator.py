"""Presumed-abort two-phase commit across the shard fleet.

Protocol (the classic presumed-abort variant):

1. **Prepare.**  Every participant branch appends a PREPARE record
   (carrying the global transaction id) and moves to ``PREPARED`` --
   durable, locks held, fate undecided.  Any prepare failure aborts all
   branches: nothing was promised yet.
2. **Decision.**  The coordinator durably logs its COMMIT decision as a
   DECISION record *on each participant's WAL* (this testbed has no
   separate coordinator log; co-logging the decision with the data it
   governs is what real disaggregated systems do with a commit-log
   service).  Decisions for a batch of transactions landing on the same
   shard share one fsync via :meth:`~repro.engine.wal.WriteAheadLog.
   group_commit` -- the group-commit batching that amortizes 2PC's extra
   fsync point.
3. **Commit.**  Branches append COMMIT and release locks.

Abort needs no decision record: recovery *presumes abort* for any
prepared branch with no DECISION anywhere in the fleet.

Crash points: the coordinator can be killed at any of the
:data:`PHASES` boundaries, either armed directly (:meth:`TxnCoordinator.
arm_crash`) or scheduled through a chaos plan (``FaultKind.COORD_CRASH``
with the phase name as target).  A fired crash point raises
:class:`~repro.engine.errors.SimulatedCrash` *without* cleaning up --
the half-run protocol state is exactly what crash-recovery tests need.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.engine.database import Database
from repro.engine.errors import (
    ShardUnavailableError,
    SimulatedCrash,
    TransactionAborted,
)
from repro.engine.txn import IsolationLevel, Transaction, TxnState
from repro.obs import NULL_OBSERVER, Observer

#: 2PC phase boundaries a coordinator crash can be scheduled at.
#: ``mid_*`` fires after the first unit of the phase completed, so the
#: phase is left half-done (the interesting recovery cases).
PHASES = (
    "before_prepare",
    "mid_prepare",
    "after_prepare",
    "mid_decision",
    "after_decision",
    "mid_commit",
    "after_commit",
)


class CoordinatorCrash(SimulatedCrash):
    """The node hosting the coordinator died at a 2PC phase boundary.

    Distinct from a plain :class:`SimulatedCrash` raised by a
    *participant's* WAL: when the coordinator itself dies there is
    nobody left to clean up, whereas a surviving coordinator can (and
    must) drive the remaining branches to a safe state.
    """


class GlobalTransaction:
    """A transaction that may span several shards.

    Branches are lazy: :meth:`local` begins a branch on a shard the
    first time a statement routes there, so a global transaction that
    happens to touch one shard commits with zero 2PC overhead.
    """

    __slots__ = (
        "_coordinator", "gtid", "isolation", "deadline", "state",
        "is_retry", "locals",
    )

    def __init__(
        self,
        coordinator: "TxnCoordinator",
        gtid: str,
        isolation: Optional[IsolationLevel] = None,
        deadline=None,
        is_retry: bool = False,
    ):
        self._coordinator = coordinator
        self.gtid = gtid
        self.isolation = isolation
        self.deadline = deadline
        self.state = TxnState.ACTIVE
        #: a client-supplied gtid marks this as the retry of an earlier
        #: commit whose outcome the client never learned; commit checks
        #: the durable DECISION records before re-applying anything
        self.is_retry = is_retry
        #: shard id -> local branch transaction
        self.locals: Dict[int, Transaction] = {}

    def local(self, shard_id: int) -> Transaction:
        """The branch on ``shard_id``, begun on first use."""
        txn = self.locals.get(shard_id)
        if txn is None:
            shard = self._coordinator.shards[shard_id]
            txn = shard.begin(isolation=self.isolation, deadline=self.deadline)
            self.locals[shard_id] = txn
        return txn

    @property
    def participants(self) -> List[int]:
        return sorted(self.locals)

    @property
    def is_cross_shard(self) -> bool:
        return len(self.locals) > 1

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def commit(self) -> None:
        self._coordinator.commit(self)

    def rollback(self) -> None:
        self._coordinator.rollback(self)

    def __enter__(self) -> "GlobalTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        elif issubclass(exc_type, SimulatedCrash):
            # A crash point fired: the node is gone, not misbehaving.
            # Leave every branch exactly as the protocol left it -- that
            # dangling state is what fleet crash recovery resolves.
            pass
        else:
            if self.is_active:
                self.rollback()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GlobalTransaction {self.gtid} {self.state.value} "
            f"shards={self.participants}>"
        )


class TxnCoordinator:
    """Drives presumed-abort 2PC over a list of shard databases."""

    def __init__(
        self,
        shards: Sequence[Database],
        observer: Optional[Observer] = None,
        chaos=None,
        name: str = "fleet",
        start_gtid: int = 1,
    ):
        self.shards = list(shards)
        self.obs = observer or NULL_OBSERVER
        # Pre-resolved counters: 2PC accounting runs on the commit hot
        # path, so the registry lookup happens once here instead of a
        # dict lookup per protocol step (same idiom as qos.admission).
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._c = {
                event: metrics.counter(f"shard.2pc.{event}")
                for event in (
                    "prepare",
                    "single_shard",
                    "cross_shard",
                    "abort",
                    "idempotent",
                    "participant_crash",
                    "dangling",
                    "dangling_resolved",
                )
            }
        else:
            self._c = None
        self.chaos = chaos
        self.name = name
        self._gtid_counter = start_gtid
        self._armed: Set[str] = set()
        #: one-shot callables to run at a phase boundary (the crash
        #: matrix kills participants / standbys here)
        self._armed_actions: Dict[str, List[Callable[[], None]]] = {}
        #: global transactions a participant crash left half-decided:
        #: the decision phase had started but no decision is durable on
        #: a *reachable* shard, so the survivors' prepared branches must
        #: stay in doubt until failover makes the failed shard's log
        #: readable again (see :meth:`finish_dangling`)
        self.dangling: List[GlobalTransaction] = []
        self.single_commits = 0
        self.cross_commits = 0
        self.aborts = 0
        #: retried commits satisfied from durable DECISION records
        self.idempotent_commits = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def next_gtid(self) -> int:
        """Handed to the replacement coordinator after a crash so global
        transaction ids stay unique across the fleet's lifetime."""
        return self._gtid_counter

    def begin(
        self,
        isolation: Optional[IsolationLevel] = None,
        deadline=None,
        gtid: Optional[str] = None,
    ) -> GlobalTransaction:
        """Start a global transaction.

        Passing ``gtid`` replays an earlier transaction under its
        original id (the client's retry token after it lost the first
        commit's outcome to a crash): commit then consults the durable
        DECISION records and skips re-applying a transaction the fleet
        already committed.
        """
        if gtid is not None:
            return GlobalTransaction(
                self, gtid, isolation=isolation, deadline=deadline, is_retry=True
            )
        gtid = f"{self.name}:{self._gtid_counter}"
        self._gtid_counter += 1
        return GlobalTransaction(self, gtid, isolation=isolation, deadline=deadline)

    # -- crash points --------------------------------------------------------

    def arm_crash(self, phase: str) -> None:
        """One-shot: die when the next commit reaches ``phase``."""
        if phase not in PHASES:
            raise ValueError(f"unknown 2PC phase {phase!r}; one of {PHASES}")
        self._armed.add(phase)

    def arm_action(self, phase: str, action: Callable[[], None]) -> None:
        """One-shot: run ``action`` when the next commit reaches ``phase``.

        The crash matrix uses this to kill a participant's WAL (or an HA
        standby) at an exact protocol position; unlike :meth:`arm_crash`
        the boundary itself does not raise -- the protocol discovers the
        damage at its next touch of the dead node.
        """
        if phase not in PHASES:
            raise ValueError(f"unknown 2PC phase {phase!r}; one of {PHASES}")
        self._armed_actions.setdefault(phase, []).append(action)

    @property
    def armed(self) -> bool:
        """Is any crash point or phase action still waiting to fire?"""
        return bool(self._armed or self._armed_actions)

    def _crash_point(self, phase: str) -> None:
        actions = self._armed_actions.pop(phase, ())
        for action in actions:
            action()
        fire = phase in self._armed
        if fire:
            self._armed.discard(phase)
        elif self.chaos is not None and self.chaos.take_coordinator_crash(phase):
            fire = True
        if fire:
            if self.obs.enabled:
                self.obs.event(
                    "2pc.coord_crash", "shard", track="shard",
                    attrs={"phase": phase},
                )
            raise CoordinatorCrash(f"coordinator {self.name} crashed at {phase}")

    # -- commit / abort ------------------------------------------------------

    def commit(self, gtxn: GlobalTransaction) -> None:
        self.commit_many([gtxn])

    def commit_many(self, gtxns: Sequence[GlobalTransaction]) -> None:
        """Commit a batch of global transactions.

        Single-shard transactions commit directly (no prepare, no
        decision record -- one fsync, same as a local commit).  The
        cross-shard remainder runs the two-phase protocol as one batch,
        so coordinator decisions landing on the same shard share a
        group-committed fsync.
        """
        for gtxn in gtxns:
            if not gtxn.is_active:
                raise TransactionAborted(
                    f"global transaction {gtxn.gtid} is {gtxn.state.value}"
                )
        crosses = []
        for gtxn in gtxns:
            if gtxn.is_retry and self._absorb_retry(gtxn):
                continue
            if gtxn.is_cross_shard:
                crosses.append(gtxn)
            else:
                for txn in gtxn.locals.values():
                    txn.commit()
                gtxn.state = TxnState.COMMITTED
                self.single_commits += 1
                if self._c is not None:
                    self._c["single_shard"].inc()
        if crosses:
            self._two_phase(crosses)

    def _decided_union(self) -> Set[object]:
        """Union of durable DECISION gtids across every reachable shard."""
        decided: Set[object] = set()
        for shard in self.shards:
            if not shard.wal.is_dead:
                decided |= shard.wal.decided_gtids()
        return decided

    def _absorb_retry(self, gtxn: GlobalTransaction) -> bool:
        """Idempotent commit: satisfy a retried commit from the log.

        A client that lost the first commit's outcome to a crash replays
        the transaction under the same gtid.  If any reachable shard
        holds a DECISION for that gtid, the original commit already
        happened (recovery finished its branches off the decision
        records) -- so the retry's freshly written branches are rolled
        back, not committed, and the commit reports success.  Without
        this check the replayed writes would apply *again* on every
        shard, double-applying the transaction.
        """
        if gtxn.gtid not in self._decided_union():
            return False
        for txn in gtxn.locals.values():
            try:
                txn.rollback()
            except SimulatedCrash:  # a branch shard died; nothing to undo there
                continue
        gtxn.state = TxnState.COMMITTED
        self.idempotent_commits += 1
        if self._c is not None:
            self._c["idempotent"].inc()
        return True

    def _two_phase(self, gtxns: List[GlobalTransaction]) -> None:
        stage = "prepare"
        try:
            with self.obs.span(
                "2pc.commit", "shard", track="shard",
                attrs={"txns": len(gtxns)},
            ):
                # Phase one: prepare every branch of every transaction.
                with self.obs.span("2pc.prepare", "shard", track="shard"):
                    self._crash_point("before_prepare")
                    first = True
                    for gtxn in gtxns:
                        for shard_id in gtxn.participants:
                            self.shards[shard_id].prepare_commit(
                                gtxn.locals[shard_id], gtxn.gtid
                            )
                            if self._c is not None:
                                self._c["prepare"].inc()
                            if first:
                                first = False
                                self._crash_point("mid_prepare")
                    self._crash_point("after_prepare")
                stage = "decision"

                # Decision: log COMMIT per participant, batched per shard
                # so N decisions on one shard cost one fsync.
                with self.obs.span("2pc.decision", "shard", track="shard"):
                    by_shard: Dict[int, List[GlobalTransaction]] = {}
                    for gtxn in gtxns:
                        for shard_id in gtxn.participants:
                            by_shard.setdefault(shard_id, []).append(gtxn)
                    first = True
                    for shard_id in sorted(by_shard):
                        shard = self.shards[shard_id]
                        with self.obs.span(
                            "2pc.group_commit", "shard", track="shard",
                            attrs={
                                "shard": shard_id,
                                "batch": len(by_shard[shard_id]),
                            },
                        ):
                            with shard.wal.group_commit():
                                for gtxn in by_shard[shard_id]:
                                    shard.log_decision(
                                        gtxn.locals[shard_id].txn_id, gtxn.gtid
                                    )
                        if first:
                            first = False
                            self._crash_point("mid_decision")
                    self._crash_point("after_decision")
                stage = "commit"

                # Phase two: the outcome is durable; finish the branches.
                first = True
                for gtxn in gtxns:
                    for shard_id in gtxn.participants:
                        gtxn.locals[shard_id].commit()
                        if first:
                            first = False
                            self._crash_point("mid_commit")
                    gtxn.state = TxnState.COMMITTED
                    self.cross_commits += 1
                    if self._c is not None:
                        self._c["cross_shard"].inc()
                self._crash_point("after_commit")
        except CoordinatorCrash:
            # The coordinator itself died mid-protocol.  No cleanup:
            # prepared branches stay in doubt until the fleet
            # crash-recovers and resolves them against the durable
            # DECISION records.  That dangling state is the point.
            raise
        except SimulatedCrash as crash:
            # A *participant* died mid-protocol; this coordinator is
            # alive and must drive the survivors to a safe state.
            self._participant_died(gtxns, stage, crash)
        except BaseException:
            # A non-crash failure in phase one (lock conflict, deadline)
            # means nothing was promised: abort every branch.
            self._abort_all(gtxns)
            raise

    def _participant_died(
        self,
        gtxns: List[GlobalTransaction],
        stage: str,
        crash: SimulatedCrash,
    ) -> None:
        """Finish the surviving branches after a participant crash.

        * During **prepare** nothing was promised: presumed abort holds
          everywhere (a commit needs a DECISION, and none can exist),
          so the survivors abort and the client gets a retryable
          :class:`~repro.engine.errors.ShardUnavailableError`.
        * From the **decision** phase on: a transaction whose DECISION
          is durable on a *reachable* shard is committed -- finish its
          surviving branches and report success (the dead shard learns
          its fate at recovery or promotion).  A transaction with no
          reachable decision is genuinely unknown (the classic blocking
          window of 2PC): its survivors stay prepared, locks held,
          recorded as *dangling* until failover restores access to the
          failed shard's log (:meth:`finish_dangling`).
        """
        if self._c is not None:
            self._c["participant_crash"].inc()
        if stage == "prepare":
            self._abort_all(gtxns)
            raise ShardUnavailableError(
                f"participant shard died during prepare: {crash}"
            ) from crash
        decided = self._decided_union()
        blocked = False
        for gtxn in gtxns:
            if gtxn.state is not TxnState.ACTIVE:
                continue  # already fully committed before the crash
            if gtxn.gtid in decided:
                for txn in gtxn.locals.values():
                    if txn.state is not TxnState.PREPARED:
                        continue
                    try:
                        txn.commit()
                    except SimulatedCrash:
                        continue  # that shard is dead too; its log decides
                gtxn.state = TxnState.COMMITTED
                self.cross_commits += 1
                if self._c is not None:
                    self._c["cross_shard"].inc()
            else:
                self.dangling.append(gtxn)
                blocked = True
        if blocked:
            if self._c is not None:
                self._c["dangling"].inc()
            raise crash

    def finish_dangling(self) -> Dict[str, int]:
        """Resolve transactions a participant crash left half-decided.

        Call after failover: once the failed shard's authoritative log
        (its promoted standby, or the recovered primary) is reachable
        again, the decision union is complete -- each dangling
        transaction commits iff a DECISION exists anywhere, and is
        presumed aborted otherwise.  Releases the survivors' locks
        either way.
        """
        done = {"committed": 0, "aborted": 0}
        if not self.dangling:
            return done
        decided = self._decided_union()
        for gtxn in self.dangling:
            commit = gtxn.gtid in decided
            for txn in gtxn.locals.values():
                if txn.state is not TxnState.PREPARED:
                    continue
                try:
                    if commit:
                        txn.commit()
                    else:
                        txn.rollback()
                except SimulatedCrash:
                    continue  # dead branch: recovery applies the same verdict
            if commit:
                gtxn.state = TxnState.COMMITTED
                self.cross_commits += 1
                done["committed"] += 1
            else:
                gtxn.state = TxnState.ABORTED
                self.aborts += 1
                done["aborted"] += 1
        self.dangling = []
        if self._c is not None:
            self._c["dangling_resolved"].inc(sum(done.values()))
        return done

    def rollback(self, gtxn: GlobalTransaction) -> None:
        if not gtxn.is_active:
            return
        self._abort_all([gtxn])

    def _abort_all(self, gtxns: Sequence[GlobalTransaction]) -> None:
        for gtxn in gtxns:
            for txn in gtxn.locals.values():
                try:
                    txn.rollback()  # no-op for branches a shard already aborted
                except SimulatedCrash:
                    # The branch's shard is dead: its volatile state is
                    # gone with it and recovery presumes abort anyway.
                    continue
            gtxn.state = TxnState.ABORTED
            self.aborts += 1
            if self._c is not None:
                self._c["abort"].inc()

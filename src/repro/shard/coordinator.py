"""Presumed-abort two-phase commit across the shard fleet.

Protocol (the classic presumed-abort variant):

1. **Prepare.**  Every participant branch appends a PREPARE record
   (carrying the global transaction id) and moves to ``PREPARED`` --
   durable, locks held, fate undecided.  Any prepare failure aborts all
   branches: nothing was promised yet.
2. **Decision.**  The coordinator durably logs its COMMIT decision as a
   DECISION record *on each participant's WAL* (this testbed has no
   separate coordinator log; co-logging the decision with the data it
   governs is what real disaggregated systems do with a commit-log
   service).  Decisions for a batch of transactions landing on the same
   shard share one fsync via :meth:`~repro.engine.wal.WriteAheadLog.
   group_commit` -- the group-commit batching that amortizes 2PC's extra
   fsync point.
3. **Commit.**  Branches append COMMIT and release locks.

Abort needs no decision record: recovery *presumes abort* for any
prepared branch with no DECISION anywhere in the fleet.

Crash points: the coordinator can be killed at any of the
:data:`PHASES` boundaries, either armed directly (:meth:`TxnCoordinator.
arm_crash`) or scheduled through a chaos plan (``FaultKind.COORD_CRASH``
with the phase name as target).  A fired crash point raises
:class:`~repro.engine.errors.SimulatedCrash` *without* cleaning up --
the half-run protocol state is exactly what crash-recovery tests need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.engine.database import Database
from repro.engine.errors import SimulatedCrash, TransactionAborted
from repro.engine.txn import IsolationLevel, Transaction, TxnState
from repro.obs import NULL_OBSERVER, Observer

#: 2PC phase boundaries a coordinator crash can be scheduled at.
#: ``mid_*`` fires after the first unit of the phase completed, so the
#: phase is left half-done (the interesting recovery cases).
PHASES = (
    "before_prepare",
    "mid_prepare",
    "after_prepare",
    "mid_decision",
    "after_decision",
    "mid_commit",
    "after_commit",
)


class GlobalTransaction:
    """A transaction that may span several shards.

    Branches are lazy: :meth:`local` begins a branch on a shard the
    first time a statement routes there, so a global transaction that
    happens to touch one shard commits with zero 2PC overhead.
    """

    def __init__(
        self,
        coordinator: "TxnCoordinator",
        gtid: str,
        isolation: Optional[IsolationLevel] = None,
        deadline=None,
    ):
        self._coordinator = coordinator
        self.gtid = gtid
        self.isolation = isolation
        self.deadline = deadline
        self.state = TxnState.ACTIVE
        #: shard id -> local branch transaction
        self.locals: Dict[int, Transaction] = {}

    def local(self, shard_id: int) -> Transaction:
        """The branch on ``shard_id``, begun on first use."""
        txn = self.locals.get(shard_id)
        if txn is None:
            shard = self._coordinator.shards[shard_id]
            txn = shard.begin(isolation=self.isolation, deadline=self.deadline)
            self.locals[shard_id] = txn
        return txn

    @property
    def participants(self) -> List[int]:
        return sorted(self.locals)

    @property
    def is_cross_shard(self) -> bool:
        return len(self.locals) > 1

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def commit(self) -> None:
        self._coordinator.commit(self)

    def rollback(self) -> None:
        self._coordinator.rollback(self)

    def __enter__(self) -> "GlobalTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        elif issubclass(exc_type, SimulatedCrash):
            # A crash point fired: the node is gone, not misbehaving.
            # Leave every branch exactly as the protocol left it -- that
            # dangling state is what fleet crash recovery resolves.
            pass
        else:
            if self.is_active:
                self.rollback()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GlobalTransaction {self.gtid} {self.state.value} "
            f"shards={self.participants}>"
        )


class TxnCoordinator:
    """Drives presumed-abort 2PC over a list of shard databases."""

    def __init__(
        self,
        shards: Sequence[Database],
        observer: Optional[Observer] = None,
        chaos=None,
        name: str = "fleet",
        start_gtid: int = 1,
    ):
        self.shards = list(shards)
        self.obs = observer or NULL_OBSERVER
        self.chaos = chaos
        self.name = name
        self._gtid_counter = start_gtid
        self._armed: Set[str] = set()
        self.single_commits = 0
        self.cross_commits = 0
        self.aborts = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def next_gtid(self) -> int:
        """Handed to the replacement coordinator after a crash so global
        transaction ids stay unique across the fleet's lifetime."""
        return self._gtid_counter

    def begin(
        self,
        isolation: Optional[IsolationLevel] = None,
        deadline=None,
    ) -> GlobalTransaction:
        gtid = f"{self.name}:{self._gtid_counter}"
        self._gtid_counter += 1
        return GlobalTransaction(self, gtid, isolation=isolation, deadline=deadline)

    # -- crash points --------------------------------------------------------

    def arm_crash(self, phase: str) -> None:
        """One-shot: die when the next commit reaches ``phase``."""
        if phase not in PHASES:
            raise ValueError(f"unknown 2PC phase {phase!r}; one of {PHASES}")
        self._armed.add(phase)

    def _crash_point(self, phase: str) -> None:
        fire = phase in self._armed
        if fire:
            self._armed.discard(phase)
        elif self.chaos is not None and self.chaos.take_coordinator_crash(phase):
            fire = True
        if fire:
            if self.obs.enabled:
                self.obs.event(
                    "2pc.coord_crash", "shard", track="shard",
                    attrs={"phase": phase},
                )
            raise SimulatedCrash(f"coordinator {self.name} crashed at {phase}")

    # -- commit / abort ------------------------------------------------------

    def commit(self, gtxn: GlobalTransaction) -> None:
        self.commit_many([gtxn])

    def commit_many(self, gtxns: Sequence[GlobalTransaction]) -> None:
        """Commit a batch of global transactions.

        Single-shard transactions commit directly (no prepare, no
        decision record -- one fsync, same as a local commit).  The
        cross-shard remainder runs the two-phase protocol as one batch,
        so coordinator decisions landing on the same shard share a
        group-committed fsync.
        """
        for gtxn in gtxns:
            if not gtxn.is_active:
                raise TransactionAborted(
                    f"global transaction {gtxn.gtid} is {gtxn.state.value}"
                )
        crosses = []
        for gtxn in gtxns:
            if gtxn.is_cross_shard:
                crosses.append(gtxn)
            else:
                for txn in gtxn.locals.values():
                    txn.commit()
                gtxn.state = TxnState.COMMITTED
                self.single_commits += 1
                if self.obs.enabled:
                    self.obs.count("shard.2pc.single_shard")
        if crosses:
            self._two_phase(crosses)

    def _two_phase(self, gtxns: List[GlobalTransaction]) -> None:
        try:
            with self.obs.span("2pc.commit", "shard", track="shard"):
                # Phase one: prepare every branch of every transaction.
                self._crash_point("before_prepare")
                first = True
                for gtxn in gtxns:
                    for shard_id in gtxn.participants:
                        self.shards[shard_id].prepare_commit(
                            gtxn.locals[shard_id], gtxn.gtid
                        )
                        if self.obs.enabled:
                            self.obs.count("shard.2pc.prepare")
                        if first:
                            first = False
                            self._crash_point("mid_prepare")
                self._crash_point("after_prepare")

                # Decision: log COMMIT per participant, batched per shard
                # so N decisions on one shard cost one fsync.
                by_shard: Dict[int, List[GlobalTransaction]] = {}
                for gtxn in gtxns:
                    for shard_id in gtxn.participants:
                        by_shard.setdefault(shard_id, []).append(gtxn)
                first = True
                for shard_id in sorted(by_shard):
                    shard = self.shards[shard_id]
                    with shard.wal.group_commit():
                        for gtxn in by_shard[shard_id]:
                            shard.log_decision(
                                gtxn.locals[shard_id].txn_id, gtxn.gtid
                            )
                    if first:
                        first = False
                        self._crash_point("mid_decision")
                self._crash_point("after_decision")

                # Phase two: the outcome is durable; finish the branches.
                first = True
                for gtxn in gtxns:
                    for shard_id in gtxn.participants:
                        gtxn.locals[shard_id].commit()
                        if first:
                            first = False
                            self._crash_point("mid_commit")
                    gtxn.state = TxnState.COMMITTED
                    self.cross_commits += 1
                    if self.obs.enabled:
                        self.obs.count("shard.2pc.cross_shard")
                self._crash_point("after_commit")
        except SimulatedCrash:
            # The coordinator (or a shard's WAL) died mid-protocol.  No
            # cleanup: prepared branches stay in doubt until the fleet
            # crash-recovers and resolves them against the durable
            # DECISION records.  That dangling state is the point.
            raise
        except BaseException:
            # A non-crash failure in phase one (lock conflict, deadline)
            # means nothing was promised: abort every branch.
            self._abort_all(gtxns)
            raise

    def rollback(self, gtxn: GlobalTransaction) -> None:
        if not gtxn.is_active:
            return
        self._abort_all([gtxn])

    def _abort_all(self, gtxns: Sequence[GlobalTransaction]) -> None:
        for gtxn in gtxns:
            for txn in gtxn.locals.values():
                txn.rollback()  # no-op for branches a shard already aborted
            gtxn.state = TxnState.ABORTED
            self.aborts += 1
            if self.obs.enabled:
                self.obs.count("shard.2pc.abort")

"""The fleet facade: N real engine databases behind one SQL surface.

:class:`ShardedDatabase` looks like a :class:`~repro.engine.database.
Database` to callers -- ``create_table`` / ``execute`` / ``query`` /
``crash`` / ``recover`` -- but spreads rows across shards by hashed
partition key.  Statements that pin the partition key run on exactly
one shard (the fast path the scale-out claim rests on); the rest
scatter to every shard and merge at the gateway.

Crash recovery is fleet-aware: after per-shard ARIES recovery, the
in-doubt prepared branches each shard reports are resolved against the
*union* of durable DECISION records across all shards -- a branch whose
global transaction has a decision anywhere commits, everything else is
presumed aborted.  This is what makes a coordinator crash between
PREPARE and the decision records non-divergent: either every branch of
a global transaction survives or none does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.datagen import DataGenerator, GeneratedData, nominal_bytes
from repro.core.schema import create_sales_schema
from repro.engine.database import Database
from repro.engine.errors import ShardUnavailableError, SimulatedCrash
from repro.engine.executor import ResultSet
from repro.engine.recovery import RecoveryReport
from repro.engine.sql import InsertStatement, SelectStatement
from repro.engine.txn import IsolationLevel
from repro.engine.types import Schema
from repro.obs import NULL_OBSERVER, Observer
from repro.shard.coordinator import GlobalTransaction, TxnCoordinator
from repro.shard.router import ShardError, ShardRouter


@dataclass
class FleetRecoveryReport:
    """Outcome of a fleet-wide crash recovery."""

    shard_reports: List[RecoveryReport] = field(default_factory=list)
    #: gtids with a durable DECISION record somewhere in the fleet
    decided_gtids: set = field(default_factory=set)
    resolved_commit: int = 0
    resolved_abort: int = 0

    @property
    def in_doubt(self) -> int:
        return self.resolved_commit + self.resolved_abort


class ShardedDatabase:
    """A hash-partitioned fleet of engine databases."""

    def __init__(
        self,
        n_shards: int,
        name: str = "fleet",
        observer: Optional[Observer] = None,
        default_isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        chaos=None,
        buffer_size_bytes: Optional[int] = None,
    ):
        if n_shards < 1:
            raise ShardError("a fleet needs at least one shard")
        self.name = name
        self.obs = observer or NULL_OBSERVER
        self.chaos = chaos
        self.shards = [
            Database(
                f"{name}-s{shard_id}",
                observer=observer,
                default_isolation=default_isolation,
                buffer_size_bytes=buffer_size_bytes,
            )
            for shard_id in range(n_shards)
        ]
        self.router = ShardRouter(n_shards)
        self.coordinator = TxnCoordinator(
            self.shards, observer=observer, chaos=chaos, name=name
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # -- catalog -------------------------------------------------------------

    def create_table(self, schema: Schema, partition_key: Optional[str] = None) -> None:
        """Create ``schema`` on every shard, partitioned by
        ``partition_key`` (default: the primary key)."""
        for shard in self.shards:
            shard.create_table(schema)
        self.router.register(schema.table, partition_key or schema.primary_key)

    def create_index(
        self, table: str, name: str, columns: Sequence[str],
        unique: bool = False, ordered: bool = False,
    ) -> None:
        for shard in self.shards:
            shard.create_index(table, name, columns, unique=unique, ordered=ordered)

    def total_rows(self) -> int:
        return sum(shard.total_rows() for shard in self.shards)

    def all_rows(self, table: str) -> List[Tuple[Any, ...]]:
        """Every committed row of ``table`` across the fleet, sorted."""
        return sorted(
            itertools.chain.from_iterable(
                (row for _rid, row in shard.table(table).scan())
                for shard in self.shards
            )
        )

    @property
    def fsyncs(self) -> int:
        """Total WAL fsync-equivalents across the fleet."""
        return sum(shard.wal.fsyncs for shard in self.shards)

    # -- transactions --------------------------------------------------------

    def begin(
        self,
        isolation: Optional[IsolationLevel] = None,
        deadline=None,
        gtid: Optional[str] = None,
    ) -> GlobalTransaction:
        """Start a global transaction.

        ``gtid`` is the client's retry token: replaying a commit whose
        ack was lost under its original id makes the commit idempotent
        (see :meth:`~repro.shard.coordinator.TxnCoordinator.begin`).
        """
        return self.coordinator.begin(
            isolation=isolation, deadline=deadline, gtid=gtid
        )

    # -- SQL -----------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        gtxn: Optional[GlobalTransaction] = None,
    ) -> ResultSet:
        """Route and run one statement.

        Single-shard statements go straight to the owning shard (inside
        ``gtxn`` they enlist that shard as a branch).  Fan-out writes
        outside a global transaction are wrapped in one, so a scattered
        UPDATE is still atomic across shards via 2PC.
        """
        # Shard 0 parses and validates; other shards re-prepare the text
        # against their own (identical) catalog through the LRU plan cache.
        prepared = self.shards[0].prepare(sql)
        statement = prepared.statement
        shard_id = self.router.route_prepared(prepared, params)
        if shard_id is not None:
            if self.obs.enabled:
                self.obs.count("shard.stmt.single_shard")
            return self._run_on_shard(shard_id, sql, params, gtxn, prepared)
        if self.obs.enabled:
            self.obs.count("shard.stmt.fanout")
        if gtxn is None and not isinstance(statement, SelectStatement):
            with self.begin() as wrapper:
                return self._fanout(sql, params, statement, wrapper)
        return self._fanout(sql, params, statement, gtxn)

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Read-only :meth:`execute`; rejects anything but SELECT."""
        prepared = self.shards[0].prepare(sql)
        if not isinstance(prepared.statement, SelectStatement):
            raise ShardError(f"query() is read-only: {sql.strip()[:60]!r}")
        return self.execute(sql, params)

    def _shard_db(self, shard_id: int) -> Database:
        """The live database currently serving ``shard_id``.

        The HA fleet overrides this to gate on failover state (raising
        :class:`~repro.engine.errors.ShardUnavailableError` while a
        shard is between primaries).
        """
        return self.shards[shard_id]

    def _run_on_shard(
        self,
        shard_id: int,
        sql: str,
        params: Sequence[Any],
        gtxn: Optional[GlobalTransaction],
        prepared=None,
    ) -> ResultSet:
        """Run one routed statement on one shard.

        When the routing :class:`~repro.engine.executor.Prepared` was
        built against the very database object serving the shard, it is
        handed over directly, skipping a plan-cache probe.  A promoted
        standby is a *different* database object, so after failover the
        text path (and the shard's own plan cache) takes over.

        A dead shard's WAL raises the engine-internal
        :class:`~repro.engine.errors.SimulatedCrash` on the first append
        (even a read pays a BEGIN record); clients should instead see a
        retryable :class:`~repro.engine.errors.ShardUnavailableError`
        that names the shard and classifies correctly for the resilience
        stack's breakers and retry budget.
        """
        try:
            shard = self._shard_db(shard_id)
            stmt = prepared if (prepared is not None and shard is prepared.db) else sql
            if gtxn is None:
                return shard.execute(stmt, params)
            return shard.execute(stmt, params, txn=gtxn.local(shard_id))
        except SimulatedCrash as crash:
            if self.obs.enabled:
                self.obs.count("shard.stmt.unavailable")
            raise ShardUnavailableError(
                f"shard {shard_id} is down mid-statement; retry after failover",
                shard_id=shard_id,
            ) from crash

    def _fanout(
        self,
        sql: str,
        params: Sequence[Any],
        statement,
        gtxn: Optional[GlobalTransaction],
    ) -> ResultSet:
        if isinstance(statement, InsertStatement):  # route_statement raises first
            raise ShardError("INSERT cannot fan out")  # pragma: no cover
        columns: Tuple[str, ...] = ()
        per_shard_rows: List[List[Tuple[Any, ...]]] = []
        rowcount = 0
        for shard_id in range(self.n_shards):
            result = self._run_on_shard(shard_id, sql, params, gtxn)
            columns = result.columns or columns
            per_shard_rows.append(result.rows)
            rowcount += result.rowcount
        if not isinstance(statement, SelectStatement):
            return ResultSet(columns, [], rowcount)
        if statement.group_by is not None:
            raise ShardError(
                "GROUP BY cannot be merged across shards; "
                "pin the partition key or query shards individually"
            )
        if any(item.is_aggregate for item in statement.items):
            rows = [self._merge_aggregates(statement, per_shard_rows)]
            return ResultSet(columns, rows, 1)
        rows = list(itertools.chain.from_iterable(per_shard_rows))
        rows = self._merge_order(statement, columns, rows)
        return ResultSet(columns, rows, len(rows))

    @staticmethod
    def _merge_aggregates(
        statement: SelectStatement,
        per_shard_rows: List[List[Tuple[Any, ...]]],
    ) -> Tuple[Any, ...]:
        """Combine per-shard aggregate results (the decomposable ones)."""
        merged: List[Any] = []
        for index, item in enumerate(statement.items):
            values = [rows[0][index] for rows in per_shard_rows if rows]
            present = [value for value in values if value is not None]
            if item.aggregate == "COUNT" and not item.distinct:
                merged.append(sum(values))
            elif item.aggregate == "SUM":
                merged.append(sum(present) if present else None)
            elif item.aggregate == "MIN":
                merged.append(min(present) if present else None)
            elif item.aggregate == "MAX":
                merged.append(max(present) if present else None)
            else:
                raise ShardError(
                    f"{item.aggregate}{' DISTINCT' if item.distinct else ''} "
                    "is not decomposable across shards"
                )
        return tuple(merged)

    @staticmethod
    def _merge_order(
        statement: SelectStatement,
        columns: Tuple[str, ...],
        rows: List[Tuple[Any, ...]],
    ) -> List[Tuple[Any, ...]]:
        """Re-establish ORDER BY / LIMIT over the concatenated shards."""
        if statement.order_by is not None:
            if statement.order_by not in columns:
                raise ShardError(
                    f"ORDER BY {statement.order_by} must be in the select "
                    "list to merge across shards"
                )
            index = columns.index(statement.order_by)
            # NULLS LAST in both directions, matching the executor.
            present = [row for row in rows if row[index] is not None]
            absent = [row for row in rows if row[index] is None]
            present.sort(key=lambda row: row[index], reverse=statement.order_desc)
            rows = present + absent
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return rows

    # -- crash and recovery --------------------------------------------------

    def crash(self) -> None:
        """Whole-fleet failure: every shard loses volatile state and the
        coordinator dies with its in-flight protocol state."""
        next_gtid = self.coordinator.next_gtid
        for shard in self.shards:
            shard.crash()
        self.coordinator = TxnCoordinator(
            self.shards, observer=self.obs, chaos=self.chaos,
            name=self.name, start_gtid=next_gtid,
        )

    def _recover_shard(self, shard_id: int) -> RecoveryReport:
        """Restart one shard and replay its log.

        Resets to the checkpoint image first (``crash()`` is a no-op on
        state a crash already wiped) and disarms any still-armed WAL
        crash point, so recovery converges to the same resolved state
        whether the fleet crashed once, twice, never, or with a fault
        scheduled but unfired.
        """
        shard = self.shards[shard_id]
        shard.wal.disarm_crash()
        shard.crash()
        return shard.recover()

    def recover(self) -> FleetRecoveryReport:
        """Per-shard ARIES recovery, then fleet-level in-doubt resolution.

        Idempotent: recovering twice, or recovering a fleet that never
        crashed, converges to the same resolved state (each pass resets
        shards to their checkpoint image and replays the same durable
        log; in-doubt branches resolved by an earlier pass are winners
        to the next one).
        """
        reports = [self._recover_shard(shard_id) for shard_id in range(self.n_shards)]
        return self._resolve_in_doubt(reports)

    def _resolve_in_doubt(
        self,
        shard_reports: Sequence[RecoveryReport],
        shard_ids: Optional[Sequence[int]] = None,
    ) -> FleetRecoveryReport:
        """Resolve in-doubt branches against the fleet-wide decision union.

        ``shard_ids`` maps each report to its shard (defaults to all
        shards in order); the union always spans every *reachable*
        shard, so a single promoted shard resolves against the whole
        fleet's decisions.
        """
        report = FleetRecoveryReport(shard_reports=list(shard_reports))
        for shard in self.shards:
            if not shard.wal.is_dead:
                report.decided_gtids |= shard.wal.decided_gtids()
        if shard_ids is None:
            shard_ids = range(len(report.shard_reports))
        for shard_id, shard_report in zip(shard_ids, report.shard_reports):
            shard = self.shards[shard_id]
            for txn_id, gtid in sorted(shard_report.in_doubt.items()):
                commit = gtid in report.decided_gtids
                shard.resolve_in_doubt(txn_id, commit=commit)
                if commit:
                    report.resolved_commit += 1
                else:
                    report.resolved_abort += 1
        if self.obs.enabled and report.in_doubt:
            self.obs.event(
                "fleet.recovery", "shard", track="shard",
                attrs={
                    "resolved_commit": report.resolved_commit,
                    "resolved_abort": report.resolved_abort,
                },
            )
        return report


# -- sales-schema helpers ------------------------------------------------------


def sales_router(n_shards: int) -> ShardRouter:
    """The canonical sales-schema partitioning.

    CUSTOMER and ORDERS partition by primary key; ORDERLINE partitions
    by ``OL_O_ID`` so an order's lines are co-located with the order --
    the new-order and order-assembly flows stay single-shard.
    """
    router = ShardRouter(n_shards)
    router.register("CUSTOMER", "C_ID")
    router.register("ORDERS", "O_ID")
    router.register("ORDERLINE", "OL_O_ID")
    return router


def _create_sales_fleet_schema(fleet: ShardedDatabase) -> None:
    create_sales_schema(fleet)
    # create_sales_schema registered primary keys; ORDERLINE co-locates
    # with its order instead.
    fleet.router.register("ORDERLINE", "OL_O_ID")


def load_sales_fleet(
    n_shards: int,
    scale_factor: int = 1,
    row_scale: float = 0.002,
    seed: int = 42,
    name: str = "fleet",
    observer: Optional[Observer] = None,
    chaos=None,
) -> Tuple[ShardedDatabase, GeneratedData]:
    """A sharded fleet with the sales data loaded and routed."""
    fleet = ShardedDatabase(n_shards, name=name, observer=observer, chaos=chaos)
    _create_sales_fleet_schema(fleet)
    generator = DataGenerator(scale_factor, row_scale, seed)
    schemas: Dict[str, Schema] = {
        table: fleet.shards[0].table(table).schema
        for table in ("CUSTOMER", "ORDERS", "ORDERLINE")
    }
    for table_name, row in generator.iter_rows():
        shard_id = fleet.router.shard_for_row(schemas[table_name], row)
        fleet.shards[shard_id].table(table_name).insert_row(row)
    # The bulk load bypassed the WAL; checkpoint so the loaded state is
    # each shard's durable base image (crash() restores it).
    for shard in fleet.shards:
        shard.checkpoint()
    data = GeneratedData(
        scale_factor=scale_factor,
        row_scale=row_scale,
        rows=generator.materialised_rows(),
        nominal_bytes=nominal_bytes(scale_factor),
    )
    return fleet, data


def load_sales_shard(
    shard_id: int,
    n_shards: int,
    scale_factor: int = 1,
    row_scale: float = 0.002,
    seed: int = 42,
    observer: Optional[Observer] = None,
) -> Database:
    """One shard's slice of the sales data, as a standalone database.

    The multiprocess load driver calls this in each worker: the same
    deterministic row stream is generated everywhere and filtered by
    the same stable hash, so worker-local shards hold exactly the rows
    the inline fleet would give them.
    """
    if not 0 <= shard_id < n_shards:
        raise ShardError(f"shard_id {shard_id} out of range for {n_shards} shards")
    db = Database(f"shard-{shard_id}", observer=observer)
    create_sales_schema(db)
    router = sales_router(n_shards)
    for table_name, row in DataGenerator(scale_factor, row_scale, seed).iter_rows():
        schema = db.table(table_name).schema
        if router.shard_for_row(schema, row) == shard_id:
            db.table(table_name).insert_row(row)
    db.checkpoint()  # durable base image: the bulk load bypassed the WAL
    return db

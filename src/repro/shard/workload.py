"""Payment-style workloads for the shard fleet.

One transaction shape, run two ways: mark an order paid and credit a
customer account.  With ``cross_ratio = 0`` the customer is chosen on
the same shard as the order (the partition-friendly case every sharded
schema designs for); with ``cross_ratio > 0`` that fraction of
transactions picks the customer on a *different* shard, forcing the
coordinator through full two-phase commit.  Sweeping the ratio is how
the scale-out evaluator prices distributed transactions.

Both workloads speak the transport-agnostic
:class:`~repro.core.client.Client` protocol: by default they build an
in-process :class:`~repro.core.client.FleetClient` /
:class:`~repro.core.client.EngineClient`, but any client with the same
verbs -- notably :class:`repro.serve.client.SocketClient` -- can be
passed in, and the workload (statement sequence, RNG draws, outcome
classification) is byte-identical over the wire.

:class:`LocalShardWorkload` is the same transaction against one
standalone shard -- what each multiprocess load-driver worker runs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.client import Client, EngineClient, FleetClient
from repro.engine.database import Database
from repro.engine.errors import EngineError, SimulatedCrash
from repro.sim.rng import RngRegistry, derive_seed
from repro.shard.fleet import ShardedDatabase

#: mark an order paid (routes by O_ID)
UPDATE_ORDER = (
    "UPDATE ORDERS SET O_STATUS = 'PAID', O_UPDATEDDATE = ? WHERE O_ID = ?"
)
#: credit the paying customer (routes by C_ID)
UPDATE_CUSTOMER = "UPDATE CUSTOMER SET C_CREDIT = C_CREDIT + ? WHERE C_ID = ?"

#: fixed epoch base keeps generated timestamps reproducible
_EPOCH = 1_700_000_000.0


def _order_keys(db: Database) -> List[int]:
    index = db.table("ORDERS").schema.primary_key_index
    return sorted(row[index] for _rid, row in db.table("ORDERS").scan())


def _customer_keys(db: Database) -> List[int]:
    index = db.table("CUSTOMER").schema.primary_key_index
    return sorted(row[index] for _rid, row in db.table("CUSTOMER").scan())


def _quiet_rollback(client: Client) -> None:
    """Roll back an open transaction without masking the real error."""
    if not client.in_txn:
        return
    try:
        client.rollback()
    except EngineError:
        pass
    finally:
        # a rollback a dead shard swallowed must not pin the client
        if client.in_txn:
            client.abandon()


class ShardSalesWorkload:
    """Payment transactions against a :class:`ShardedDatabase`."""

    def __init__(
        self,
        fleet: ShardedDatabase,
        cross_ratio: float = 0.0,
        seed: int = 42,
        client: Optional[Client] = None,
    ):
        if not 0.0 <= cross_ratio <= 1.0:
            raise ValueError("cross_ratio must be in [0, 1]")
        self.fleet = fleet
        self.cross_ratio = cross_ratio
        self.client: Client = client if client is not None else FleetClient(fleet)
        self.client.connect()
        self._rng = RngRegistry(seed).stream("shard.workload")
        self._orders = [_order_keys(shard) for shard in fleet.shards]
        self._customers = [_customer_keys(shard) for shard in fleet.shards]
        for shard_id, keys in enumerate(self._orders):
            if not keys or not self._customers[shard_id]:
                raise ValueError(f"shard {shard_id} holds no orders or customers")
        self._now = _EPOCH
        self.committed = 0
        self.aborted = 0
        self.cross_committed = 0

    def run_one(self) -> bool:
        """One payment; returns True on commit, False on (retryable) abort."""
        rng = self._rng
        n_shards = self.fleet.n_shards
        cross = n_shards > 1 and rng.random() < self.cross_ratio
        order_shard = rng.randrange(n_shards)
        order_id = rng.choice(self._orders[order_shard])
        if cross:
            customer_shard = (
                order_shard + 1 + rng.randrange(n_shards - 1)
            ) % n_shards
        else:
            customer_shard = order_shard
        customer_id = rng.choice(self._customers[customer_shard])
        amount = round(rng.uniform(1.0, 100.0), 2)
        self._now += 1.0
        client = self.client
        try:
            client.begin()
            try:
                client.execute(UPDATE_ORDER, [self._now, order_id])
                client.execute(UPDATE_CUSTOMER, [amount, customer_id])
                client.commit()
            except SimulatedCrash:
                # Leave every branch exactly as the protocol left it --
                # fleet crash recovery resolves that dangling state; the
                # client only drops affinity so it can begin() afresh.
                client.abandon()
                raise
            except BaseException:
                _quiet_rollback(client)
                raise
        except SimulatedCrash:
            # Not a transaction abort: the coordinator (or a shard) died
            # mid-protocol.  The caller owns fail-over (crash + recover).
            raise
        except EngineError as error:
            if not error.retryable:
                raise
            self.aborted += 1
            return False
        self.committed += 1
        if cross:
            self.cross_committed += 1
        return True


class LocalShardWorkload:
    """The same payment transaction against one standalone shard.

    Key choices replicate the fleet workload's shard-local case: every
    order and customer is drawn from the rows this shard owns, so the
    multiprocess driver measures pure single-shard throughput.
    """

    def __init__(
        self,
        db: Database,
        shard_id: int,
        seed: int = 42,
        client: Optional[Client] = None,
    ):
        self.db = db
        self.client: Client = client if client is not None else EngineClient(db)
        self.client.connect()
        self._rng = RngRegistry(
            derive_seed(seed, f"shard.{shard_id}")
        ).stream("shard.workload")
        self._orders = _order_keys(db)
        self._customers = _customer_keys(db)
        if not self._orders or not self._customers:
            raise ValueError(f"shard {shard_id} holds no orders or customers")
        self._now = _EPOCH
        self.committed = 0
        self.aborted = 0

    def run_one(self) -> bool:
        rng = self._rng
        order_id = rng.choice(self._orders)
        customer_id = rng.choice(self._customers)
        amount = round(rng.uniform(1.0, 100.0), 2)
        self._now += 1.0
        client = self.client
        try:
            client.begin()
            try:
                client.execute(UPDATE_ORDER, [self._now, order_id])
                client.execute(UPDATE_CUSTOMER, [amount, customer_id])
                client.commit()
            except BaseException:
                _quiet_rollback(client)
                raise
        except EngineError as error:
            if not error.retryable:
                raise
            self.aborted += 1
            return False
        self.committed += 1
        return True

"""Load drivers for the shard fleet: inline and multiprocess.

Two ways to push the payment workload through a fleet:

* **inline** -- one process owns every shard; supports any cross-shard
  ratio because the coordinator and all participants share an address
  space.  CPU time is serialized across shards, so inline numbers show
  2PC *overhead*, not scale-out.
* **mp** -- one OS process per shard, each loading its own slice of the
  data (:func:`~repro.shard.fleet.load_sales_shard`) and hammering it
  independently.  Cross-shard transactions are unsupported (there is no
  cross-process coordinator transport in this testbed), which is the
  honest boundary: the mp driver measures the single-shard fast path.

Throughput metric: wall-clock TPS is meaningless on a 1-core CI box
where N workers time-slice one CPU, so the driver also reports
**node-time TPS** -- total commits divided by the *maximum per-worker
CPU time* (``time.process_time``).  With one core per shard (the
deployment sharding assumes) node time equals wall time, so node-time
TPS is the fleet's throughput on real hardware; this is the number the
scale-out acceptance criterion checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.shard.fleet import load_sales_fleet, load_sales_shard
from repro.shard.router import ShardError
from repro.shard.workload import LocalShardWorkload, ShardSalesWorkload

#: seconds a multiprocess worker may run before the driver gives up on it
_WORKER_TIMEOUT_S = 600.0


@dataclass
class ShardRunResult:
    """Outcome of one fleet load-driver run."""

    n_shards: int
    driver: str  # "inline" | "socket" | "mp" | "mp-fallback"
    cross_ratio: float
    transactions: int
    committed: int
    aborted: int
    cross_committed: int
    wall_s: float
    #: max per-worker CPU seconds (inline: total CPU seconds)
    node_s: float
    fsyncs: int
    loaded_rows: int
    per_shard: List[Dict] = field(default_factory=list)
    #: arrival process the latency block was recorded under
    arrival: str = "closed"
    #: per-txn service-time percentiles (ms), when latency recording is on
    latency_ms: Dict[str, float] = field(default_factory=dict)
    #: CO-free sojourn-time percentiles (ms), open arrivals only
    openloop_latency_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def tps_wall(self) -> float:
        return self.committed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def tps_node(self) -> float:
        return self.committed / self.node_s if self.node_s > 0 else 0.0


def run_inline(
    n_shards: int,
    transactions: int,
    cross_ratio: float = 0.0,
    seed: int = 42,
    scale_factor: int = 1,
    row_scale: float = 0.002,
    observer=None,
    chaos=None,
    arrival: str = "closed",
    transport: str = "inline",
) -> ShardRunResult:
    """Drive one in-process fleet through ``transactions`` payments.

    ``arrival`` selects the latency recording (see
    :func:`repro.perf.openloop.parse_arrival`): ``closed`` keeps the
    seed behaviour (no per-txn timing at all -- zero overhead on the
    hot loop); an open spec records per-txn service times and replays
    them against a seeded arrival schedule for the
    coordinated-omission-free sojourn percentiles.  An ``auto`` rate
    pins the offered load at the observed service rate (the knee).

    ``transport`` picks the :class:`~repro.core.client.Client` the
    workload speaks through: ``"inline"`` (default) is the in-process
    :class:`~repro.core.client.FleetClient`; ``"socket"`` boots a
    loopback :class:`~repro.serve.server.SQLServer` over the same fleet
    and drives the identical workload through a
    :class:`~repro.serve.client.SocketClient` -- same seeds, same
    statement sequence, same counters, but every statement pays the
    real wire.
    """
    from repro.perf.openloop import parse_arrival

    if transactions < 1:
        raise ValueError("transactions must be >= 1")
    if transport not in ("inline", "socket"):
        raise ValueError(
            f"unknown transport {transport!r}; use 'inline' or 'socket'"
        )
    spec = parse_arrival(arrival)
    fleet, _data = load_sales_fleet(
        n_shards, scale_factor=scale_factor, row_scale=row_scale,
        seed=seed, observer=observer, chaos=chaos,
    )
    background = None
    client = None
    if transport == "socket":
        from repro.serve.client import SocketClient
        from repro.serve.driver import BackgroundServer

        background = BackgroundServer(fleet, observer=observer)
        host, port = background.start()
        client = SocketClient(host, port, client_name="shard-inline")
    try:
        workload = ShardSalesWorkload(
            fleet, cross_ratio=cross_ratio, seed=seed, client=client
        )
        fsyncs_before = fleet.fsyncs
        service_s: List[float] = []
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        if spec.is_open:
            for _ in range(transactions):
                begin = time.perf_counter()
                workload.run_one()
                service_s.append(time.perf_counter() - begin)
        else:
            for _ in range(transactions):
                workload.run_one()
        cpu_s = time.process_time() - cpu_start
        wall_s = time.perf_counter() - wall_start
        if client is not None:
            client.close()
    finally:
        if background is not None:
            background.stop()
    latency_ms: Dict[str, float] = {}
    openloop_ms: Dict[str, float] = {}
    if spec.is_open:
        from repro.perf.openloop import arrival_offsets, replay_open_loop
        from repro.sim.rng import RngRegistry

        rate = spec.rate or (transactions / wall_s if wall_s > 0 else 1.0)
        schedule = arrival_offsets(
            spec, rate, transactions,
            RngRegistry(seed).stream("shard.arrival"),
        )
        replay = replay_open_loop(service_s, schedule)
        openloop_ms = replay.latency_summary_ms()
        latency_ms = replay.service_view().latency_summary_ms()
        if observer is not None and observer.enabled:
            for duration in service_s:
                observer.observe("shard.txn.service_s", duration)
    return ShardRunResult(
        n_shards=n_shards,
        driver="inline" if transport == "inline" else "socket",
        cross_ratio=cross_ratio,
        transactions=transactions,
        committed=workload.committed,
        aborted=workload.aborted,
        cross_committed=workload.cross_committed,
        wall_s=wall_s,
        node_s=cpu_s,
        fsyncs=fleet.fsyncs - fsyncs_before,
        loaded_rows=fleet.total_rows(),
        arrival=spec.describe(),
        latency_ms=latency_ms,
        openloop_latency_ms=openloop_ms,
    )


def _run_local_shard(
    shard_id: int,
    n_shards: int,
    transactions: int,
    seed: int,
    scale_factor: int,
    row_scale: float,
) -> Dict:
    """One worker's whole life: load its slice, run its transactions."""
    db = load_sales_shard(
        shard_id, n_shards, scale_factor=scale_factor,
        row_scale=row_scale, seed=seed,
    )
    workload = LocalShardWorkload(db, shard_id, seed=seed)
    fsyncs_before = db.wal.fsyncs
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for _ in range(transactions):
        workload.run_one()
    return {
        "shard": shard_id,
        "transactions": transactions,
        "committed": workload.committed,
        "aborted": workload.aborted,
        "cpu_s": time.process_time() - cpu_start,
        "wall_s": time.perf_counter() - wall_start,
        "fsyncs": db.wal.fsyncs - fsyncs_before,
        "rows": db.total_rows(),
    }


def _mp_worker(shard_id, n_shards, transactions, seed, scale_factor, row_scale, queue):
    queue.put(
        _run_local_shard(shard_id, n_shards, transactions, seed, scale_factor, row_scale)
    )


def _split(total: int, parts: int) -> List[int]:
    base, extra = divmod(total, parts)
    return [base + (1 if index < extra else 0) for index in range(parts)]


def run_multiprocess(
    n_shards: int,
    transactions: int,
    cross_ratio: float = 0.0,
    seed: int = 42,
    scale_factor: int = 1,
    row_scale: float = 0.002,
    processes: bool = True,
) -> ShardRunResult:
    """One worker per shard, each with a private slice of the data.

    ``transactions`` is the fleet total, split evenly across shards.
    If spawning OS processes fails (restricted sandboxes), the workers
    run sequentially in-process -- the per-shard results are identical
    (same seeds, no shared state), only the wall clock differs, and the
    driver label says ``mp-fallback`` so reports stay honest.
    """
    if transactions < 1:
        raise ValueError("transactions must be >= 1")
    if cross_ratio != 0.0:
        raise ShardError(
            "the multiprocess driver has no cross-process coordinator; "
            "use the inline driver for cross_ratio > 0"
        )
    per_shard_txns = _split(transactions, n_shards)
    wall_start = time.perf_counter()
    stats: Optional[List[Dict]] = None
    driver = "mp"
    if processes and n_shards > 1:
        stats = _try_processes(
            n_shards, per_shard_txns, seed, scale_factor, row_scale
        )
    if stats is None:
        driver = "mp-fallback" if processes and n_shards > 1 else "mp"
        stats = [
            _run_local_shard(
                shard_id, n_shards, per_shard_txns[shard_id],
                seed, scale_factor, row_scale,
            )
            for shard_id in range(n_shards)
        ]
    wall_s = time.perf_counter() - wall_start
    stats.sort(key=lambda entry: entry["shard"])
    return ShardRunResult(
        n_shards=n_shards,
        driver=driver,
        cross_ratio=0.0,
        transactions=transactions,
        committed=sum(entry["committed"] for entry in stats),
        aborted=sum(entry["aborted"] for entry in stats),
        cross_committed=0,
        wall_s=wall_s,
        node_s=max(entry["cpu_s"] for entry in stats),
        fsyncs=sum(entry["fsyncs"] for entry in stats),
        loaded_rows=sum(entry["rows"] for entry in stats),
        per_shard=stats,
    )


def _try_processes(
    n_shards: int,
    per_shard_txns: List[int],
    seed: int,
    scale_factor: int,
    row_scale: float,
) -> Optional[List[Dict]]:
    """Fork one worker per shard; None when the environment refuses."""
    try:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        workers = [
            context.Process(
                target=_mp_worker,
                args=(
                    shard_id, n_shards, per_shard_txns[shard_id],
                    seed, scale_factor, row_scale, queue,
                ),
            )
            for shard_id in range(n_shards)
        ]
        for worker in workers:
            worker.start()
        stats = [queue.get(timeout=_WORKER_TIMEOUT_S) for _ in workers]
        for worker in workers:
            worker.join(timeout=_WORKER_TIMEOUT_S)
        return stats
    except Exception:
        return None


def run_scaleout(
    shard_counts: List[int],
    transactions: int,
    cross_ratio: float = 0.0,
    seed: int = 42,
    scale_factor: int = 1,
    row_scale: float = 0.002,
    driver: str = "inline",
    observer=None,
    arrival: str = "closed",
    transport: str = "inline",
) -> List[ShardRunResult]:
    """Sweep shard counts with a fixed workload; one result per count.

    ``transport`` only applies to the inline driver (the mp driver's
    workers are already process-isolated); ``"socket"`` reruns the same
    sweep through the serving tier's loopback socket.
    """
    if driver not in ("inline", "mp"):
        raise ValueError(f"unknown driver {driver!r}; use 'inline' or 'mp'")
    results = []
    for n_shards in shard_counts:
        if driver == "mp":
            results.append(run_multiprocess(
                n_shards, transactions, cross_ratio=cross_ratio, seed=seed,
                scale_factor=scale_factor, row_scale=row_scale,
            ))
        else:
            results.append(run_inline(
                n_shards, transactions, cross_ratio=cross_ratio, seed=seed,
                scale_factor=scale_factor, row_scale=row_scale,
                observer=observer, arrival=arrival, transport=transport,
            ))
    return results

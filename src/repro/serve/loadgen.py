"""NDBench-style sustained load generation against the serving tier.

The generator opens ``connections`` concurrent asyncio connections to a
:class:`~repro.serve.server.SQLServer` and drives each with a pluggable
**persona** -- a client behaviour that turns per-connection randomness
into request frames (payment transactions, point reads, or a mix).
Three design points carry over from the rest of the testbed:

* **Determinism** -- every connection draws from its own derived RNG
  stream (``serve.conn{i}``), so the sequence of statements each
  connection issues is pinned by the master seed regardless of asyncio
  scheduling; personas use the fixed-epoch timestamp trick of the shard
  workload rather than the wall clock.
* **Open-loop arrivals** -- with an :class:`~repro.perf.openloop.
  ArrivalSpec`, each connection *pipelines*: a writer half sends frames
  at their scheduled offsets whether or not earlier responses are back,
  and a reader half matches responses FIFO (the server answers in
  order).  Latency is measured from the **scheduled** send time, so a
  stalled server is charged its backlog -- no coordinated omission.
* **Fault tolerance as measurement** -- a dropped connection
  (``CONN_DROP`` chaos, or the server shedding at the connection cap)
  is counted, the client reconnects with the server's ``retry_after_s``
  hint, and the remaining work continues; errors ride the wire
  taxonomy, so retryable aborts and sheds are classified exactly as
  in-process runs classify them.

``goodput`` follows the overload evaluator's definition: a commit
counts only if its latency met ``deadline_s`` -- work the client had
already given up on is throughput, not goodput.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.errors import (
    DeadlineExceededError,
    EngineError,
    OverloadError,
)
from repro.perf.openloop import ArrivalSpec, arrival_offsets
from repro.serve.client import AsyncSQLClient
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "LoadResult",
    "MixedPersona",
    "PaymentPersona",
    "Persona",
    "ReaderPersona",
    "make_persona",
    "run_load",
]

#: same statement shapes as the shard payment workload
UPDATE_ORDER = (
    "UPDATE ORDERS SET O_STATUS = 'PAID', O_UPDATEDDATE = ? WHERE O_ID = ?"
)
UPDATE_CUSTOMER = "UPDATE CUSTOMER SET C_CREDIT = C_CREDIT + ? WHERE C_ID = ?"
READ_CUSTOMER = "SELECT C_CREDIT FROM CUSTOMER WHERE C_ID = ?"

#: fixed epoch base keeps generated timestamps reproducible
_EPOCH = 1_700_000_000.0


class Persona:
    """One client behaviour: turns RNG draws into request frames.

    ``keys`` holds the key space (``orders`` and ``customers`` lists);
    subclasses implement :meth:`frame`.  Personas are stateless between
    calls except for the reproducible timestamp counter.
    """

    name = "persona"

    def __init__(self, keys: Dict[str, Sequence[int]]):
        if not keys.get("orders") or not keys.get("customers"):
            raise ValueError("persona needs non-empty order and customer keys")
        self.orders = list(keys["orders"])
        self.customers = list(keys["customers"])
        self._now = _EPOCH

    def frame(self, rng) -> Dict[str, Any]:
        raise NotImplementedError

    def _payment(self, rng) -> Dict[str, Any]:
        order_id = rng.choice(self.orders)
        customer_id = rng.choice(self.customers)
        amount = round(rng.uniform(1.0, 100.0), 2)
        self._now += 1.0
        return {
            "op": "batch",
            "stmts": [
                [UPDATE_ORDER, [self._now, order_id]],
                [UPDATE_CUSTOMER, [amount, customer_id]],
            ],
        }

    def _read(self, rng) -> Dict[str, Any]:
        return {
            "op": "query",
            "sql": READ_CUSTOMER,
            "params": [rng.choice(self.customers)],
        }


class PaymentPersona(Persona):
    """Write-heavy: one payment transaction per request (a ``batch``)."""

    name = "payment"

    def frame(self, rng) -> Dict[str, Any]:
        return self._payment(rng)


class ReaderPersona(Persona):
    """Read-only: point lookups on customer accounts."""

    name = "reader"

    def frame(self, rng) -> Dict[str, Any]:
        return self._read(rng)


class MixedPersona(Persona):
    """``read_ratio`` point reads, the rest payments."""

    name = "mixed"

    def __init__(self, keys, read_ratio: float = 0.5):
        super().__init__(keys)
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        self.read_ratio = read_ratio

    def frame(self, rng) -> Dict[str, Any]:
        if rng.random() < self.read_ratio:
            return self._read(rng)
        return self._payment(rng)


_PERSONAS = {
    "payment": PaymentPersona,
    "reader": ReaderPersona,
    "mixed": MixedPersona,
}


def make_persona(name: str, keys: Dict[str, Sequence[int]]) -> Persona:
    """Build a registered persona by name."""
    try:
        cls = _PERSONAS[name]
    except KeyError:
        raise ValueError(
            f"unknown persona {name!r}; one of {sorted(_PERSONAS)}"
        ) from None
    return cls(keys)


@dataclass
class LoadResult:
    """Aggregate outcome of one sustained-load drive."""

    connections: int
    offered: int = 0
    committed: int = 0
    aborted: int = 0           # retryable aborts (conflicts, crashes)
    shed: int = 0              # OverloadError responses (qos at work)
    expired: int = 0           # server-side queue-deadline expiries
    errors: int = 0            # non-retryable failures
    reconnects: int = 0        # connections re-established after a drop
    lost: int = 0              # requests whose connection died pre-response
    rejected: int = 0          # connections never admitted at all
    deadline_misses: int = 0   # commits that landed past deadline_s
    wall_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def tps(self) -> float:
        return self.committed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def goodput_tps(self) -> float:
        good = self.committed - self.deadline_misses
        return good / self.wall_s if self.wall_s > 0 else 0.0

    def percentile_ms(self, pct: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(
            0, min(len(ordered) - 1, round(pct / 100.0 * len(ordered)) - 1)
        )
        return ordered[rank] * 1000.0

    def latency_summary_ms(self) -> Dict[str, float]:
        return {
            "p50": self.percentile_ms(50.0),
            "p95": self.percentile_ms(95.0),
            "p99": self.percentile_ms(99.0),
            "p999": self.percentile_ms(99.9),
        }


class _Conn:
    """One load connection: issue loop + classification + reconnects."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        persona: Persona,
        rng,
        result: LoadResult,
        deadline_s: Optional[float],
        connect_retries: int,
    ):
        self.index = index
        self.client = AsyncSQLClient(
            host, port, client_name=f"load.{index}"
        )
        self.persona = persona
        self.rng = rng
        self.result = result
        self.deadline_s = deadline_s
        self.connect_retries = connect_retries

    async def connect(self) -> bool:
        """Connect with overload-aware retries; False when never admitted."""
        backoff = 0.01
        for _ in range(self.connect_retries + 1):
            try:
                await self.client.connect()
                return True
            except OverloadError as error:
                await asyncio.sleep(
                    max(backoff, getattr(error, "retry_after_s", 0.0))
                )
                backoff = min(0.2, backoff * 2)
            except (ConnectionError, OSError):
                await asyncio.sleep(backoff)
                backoff = min(0.2, backoff * 2)
        self.result.rejected += 1
        return False

    def _classify(self, error: EngineError) -> None:
        if isinstance(error, OverloadError):
            self.result.shed += 1
        elif isinstance(error, DeadlineExceededError):
            self.result.expired += 1
        elif getattr(error, "retryable", False):
            self.result.aborted += 1
        else:
            self.result.errors += 1

    def _record(self, latency_s: float) -> None:
        self.result.latencies_s.append(latency_s)
        self.result.committed += 1
        if self.deadline_s is not None and latency_s > self.deadline_s:
            self.result.deadline_misses += 1

    async def _reconnect(self) -> bool:
        self.client.abort()
        if await self.connect():
            self.result.reconnects += 1
            return True
        return False

    async def run_closed(self, txns: int) -> None:
        """Closed loop: next request only after the previous response."""
        if not await self.connect():
            return
        sent = 0
        while sent < txns:
            frame = self.persona.frame(self.rng)
            self.result.offered += 1
            sent += 1
            begin = time.perf_counter()
            try:
                await self.client.request(frame)
            except EngineError as error:
                self._classify(error)
                continue
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                self.result.lost += 1
                if not await self._reconnect():
                    return
                continue
            self._record(time.perf_counter() - begin)
        await self.client.close()

    async def run_open(self, offsets: Sequence[float], t0: float) -> None:
        """Open loop: pipelined sends at scheduled offsets, FIFO reads.

        Latency is response arrival minus the *scheduled* send -- the
        CO-free convention -- so server backlog shows up in the tail
        even though the writer never waits for responses.
        """
        if not await self.connect():
            return
        inflight: "asyncio.Queue[Optional[float]]" = asyncio.Queue()

        async def writer() -> None:
            for offset in offsets:
                delay = (t0 + offset) - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                frame = self.persona.frame(self.rng)
                self.result.offered += 1
                try:
                    self.client.send_nowait(frame)
                    await self.client.drain()
                except (EngineError, ConnectionError, OSError):
                    self.result.lost += 1
                    await inflight.put(None)  # reader: skip one response
                    continue
                await inflight.put(t0 + offset)

        async def reader() -> None:
            done = 0
            while done < len(offsets):
                scheduled = await inflight.get()
                done += 1
                if scheduled is None:
                    continue
                try:
                    await self.client.recv_response()
                except EngineError as error:
                    self._classify(error)
                    continue
                except (
                    ConnectionError, OSError, asyncio.IncompleteReadError
                ):
                    # the pipeline died: everything still queued is lost
                    self.result.lost += 1 + inflight.qsize()
                    return
                self._record(time.perf_counter() - scheduled)

        await asyncio.gather(writer(), reader())
        await self.client.close()


async def run_load(
    host: str,
    port: int,
    connections: int,
    txns_per_conn: int,
    keys: Dict[str, Sequence[int]],
    persona: str = "payment",
    seed: int = 42,
    arrival: Optional[ArrivalSpec] = None,
    rate_tps: Optional[float] = None,
    deadline_s: Optional[float] = None,
    connect_retries: int = 5,
) -> LoadResult:
    """Drive the server at ``host:port`` and aggregate the outcome.

    With ``arrival=None`` (or a closed spec) each connection runs a
    closed loop; an open spec pipelines per-connection schedules whose
    rates sum to ``rate_tps`` across all connections.
    """
    if connections < 1 or txns_per_conn < 1:
        raise ValueError("need >= 1 connection and >= 1 txn per connection")
    result = LoadResult(connections=connections)
    registry = RngRegistry(seed)
    open_loop = arrival is not None and arrival.is_open
    if open_loop and not rate_tps:
        raise ValueError("open-loop load needs rate_tps")
    tasks = []
    t0 = time.perf_counter() + 0.05  # common epoch for scheduled sends
    for index in range(connections):
        rng = registry.stream(f"serve.conn{index}")
        conn = _Conn(
            index, host, port,
            make_persona(persona, keys), rng, result,
            deadline_s, connect_retries,
        )
        if open_loop:
            offsets = arrival_offsets(
                arrival, rate_tps / connections, txns_per_conn, rng
            )
            tasks.append(conn.run_open(offsets, t0))
        else:
            tasks.append(conn.run_closed(txns_per_conn))
    begin = time.perf_counter()
    await asyncio.gather(*tasks)
    result.wall_s = time.perf_counter() - begin
    return result

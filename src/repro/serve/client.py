"""Clients for the SQL-over-socket protocol.

Three layers, innermost first:

* :class:`SocketClient` -- a *synchronous* blocking-socket client
  implementing the transport-agnostic :class:`~repro.core.client.
  Client` protocol verb-for-verb, so any workload written against
  ``Client`` (the sales mix, the HA pair workload, the shard payment
  workload) runs over the wire unchanged.  Error frames are
  reconstructed into the engine exception hierarchy by
  :func:`~repro.serve.errors.from_wire`, so ``retryable`` /
  ``retry_after_s`` classification is identical to in-process runs.
* :class:`AsyncSQLClient` -- the asyncio counterpart, with split
  ``send_nowait``/``recv_response`` halves for statement pipelining
  (the load generator keeps many requests in flight per connection).
* :class:`AsyncClientPool` -- a bounded pool of connected
  :class:`AsyncSQLClient` instances with an ``acquire()`` context
  manager, for callers that multiplex a few connections rather than
  owning one per task.
"""

from __future__ import annotations

import asyncio
import socket
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.client import ClientError, coerce_isolation
from repro.engine.executor import ResultSet
from repro.serve import wire
from repro.serve.errors import from_wire

__all__ = ["AsyncClientPool", "AsyncSQLClient", "SocketClient"]


def _unwrap(frame: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Turn a response frame into a result payload or an exception."""
    if frame is None:
        raise ConnectionError("server closed the connection")
    if frame.get("ok"):
        return frame
    raise from_wire(frame.get("error", {}))


def _result_set(frame: Dict[str, Any]) -> ResultSet:
    """Rebuild an engine :class:`ResultSet` from a response frame."""
    return ResultSet(
        columns=tuple(frame.get("columns", ())),
        rows=[tuple(row) for row in frame.get("rows", ())],
        rowcount=int(frame.get("rowcount", 0)),
    )


class SocketClient:
    """Blocking-socket :class:`~repro.core.client.Client` implementation.

    One instance is one connection is one session: transaction affinity
    lives server-side, so ``begin()`` .. ``commit()`` here brackets a
    server-held global transaction exactly as
    :class:`~repro.core.client.FleetClient` brackets an in-process one.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_name: str = "socket-client",
        priority: int = 1,
        timeout_s: Optional[float] = None,
        max_frame: int = wire.MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.client_name = client_name
        self.priority = priority
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._decoder = wire.FrameDecoder(max_frame=max_frame)
        self._inbox: "deque[Dict[str, Any]]" = deque()
        self._in_txn = False
        #: deadlines do not cross the wire (accepted for protocol parity)
        self.deadline = None
        #: gtid of the most recently begun server-side transaction
        self.gtid: Optional[str] = None
        self.n_shards: Optional[int] = None

    # -- plumbing ------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._sock is None:
            raise ClientError("client is not connected")
        try:
            self._sock.sendall(wire.encode_frame(frame))
            return _unwrap(self._read_frame())
        except (ConnectionError, OSError, wire.FrameError):
            # the stream is gone or poisoned: this session is over
            self._teardown()
            raise

    def _read_frame(self) -> Optional[Dict[str, Any]]:
        while not self._inbox:
            data = self._sock.recv(65536)
            if not data:
                if self._decoder.pending_bytes:
                    raise wire.FrameError("stream truncated inside a frame")
                return None
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.popleft()

    def _teardown(self) -> None:
        sock, self._sock = self._sock, None
        self._in_txn = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- the Client protocol -------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            hello = self._request(
                {"op": "hello", "client": self.client_name,
                 "priority": self.priority}
            )
        except BaseException:
            # a rejected handshake (connection cap) must not leave a
            # stale socket behind -- the caller retries with connect()
            self._teardown()
            raise
        self.n_shards = hello.get("n_shards")

    @property
    def in_txn(self) -> bool:
        return self._in_txn

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return _result_set(
            self._request({"op": "execute", "sql": sql,
                           "params": list(params)})
        )

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return _result_set(
            self._request({"op": "query", "sql": sql,
                           "params": list(params)})
        )

    def begin(self, isolation: Optional[object] = None) -> None:
        if self._in_txn:
            raise ClientError("begin() inside an open transaction")
        level = coerce_isolation(isolation)
        response = self._request(
            {"op": "begin",
             "isolation": None if level is None else level.name}
        )
        self._in_txn = True
        self.gtid = response.get("gtid")

    def commit(self) -> None:
        if not self._in_txn:
            raise ClientError("commit() outside a transaction")
        try:
            self._request({"op": "commit"})
        finally:
            self._in_txn = False

    def rollback(self) -> None:
        if not self._in_txn:
            raise ClientError("rollback() outside a transaction")
        try:
            self._request({"op": "rollback"})
        finally:
            self._in_txn = False

    def abandon(self) -> None:
        """Drop transaction affinity without rolling back (post-crash).

        The server detaches the dangling global transaction from this
        session (its branches stay for crash recovery to resolve) so
        the connection can ``begin()`` afresh.
        """
        if not self._in_txn:
            return
        try:
            self._request({"op": "abandon"})
        except (ConnectionError, OSError, wire.FrameError):
            pass
        finally:
            self._in_txn = False

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._request({"op": "goodbye"})
        except (ConnectionError, OSError, wire.FrameError):
            pass
        self._teardown()

    # -- extensions beyond the core protocol ---------------------------------

    def batch(self, stmts: Sequence[Tuple[str, Sequence[Any]]]) -> List[int]:
        """One whole transaction in one frame; returns the rowcounts."""
        response = self._request(
            {"op": "batch",
             "stmts": [[sql, list(params)] for sql, params in stmts]}
        )
        self.gtid = response.get("gtid")
        return [int(n) for n in response.get("rowcounts", ())]

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("ok"))


class AsyncSQLClient:
    """Asyncio client with pipelining support.

    The request/response halves are split -- :meth:`send_nowait` queues
    a frame on the socket without waiting, :meth:`recv_response` takes
    the next response off the stream (the server answers strictly in
    order, so FIFO matching is exact).  The plain ``await``-per-request
    helpers (:meth:`execute`, :meth:`batch`, ...) compose the two.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_name: str = "async-client",
        priority: int = 1,
        max_frame: int = wire.MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.client_name = client_name
        self.priority = priority
        self.max_frame = max_frame
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending = 0
        self.gtid: Optional[str] = None
        self.n_shards: Optional[int] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def pending(self) -> int:
        """Requests sent but not yet matched with a response."""
        return self._pending

    async def connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        try:
            hello = await self.request(
                {"op": "hello", "client": self.client_name,
                 "priority": self.priority}
            )
        except BaseException:
            # a rejected handshake (connection cap) must not leave a
            # stale half-open client -- the caller retries with connect()
            self.abort()
            raise
        self.n_shards = hello.get("n_shards")

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        self._pending = 0
        if writer is None:
            return
        try:
            writer.write(wire.encode_frame({"op": "goodbye"}))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def abort(self) -> None:
        """Drop the connection on the floor (simulates a client crash)."""
        writer, self._writer = self._writer, None
        self._reader = None
        self._pending = 0
        if writer is not None:
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- pipelined halves ----------------------------------------------------

    def send_nowait(self, frame: Dict[str, Any]) -> None:
        """Queue one request frame without waiting for the response."""
        if self._writer is None:
            raise ClientError("client is not connected")
        self._writer.write(wire.encode_frame(frame))
        self._pending += 1

    async def drain(self) -> None:
        if self._writer is not None:
            await self._writer.drain()

    async def recv_response(self) -> Dict[str, Any]:
        """Await the next response; raises the reconstructed exception
        on an error frame."""
        if self._reader is None:
            raise ClientError("client is not connected")
        frame = await wire.read_frame(self._reader, max_frame=self.max_frame)
        self._pending = max(0, self._pending - 1)
        return _unwrap(frame)

    async def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self.send_nowait(frame)
        await self.drain()
        return await self.recv_response()

    # -- await-per-request helpers -------------------------------------------

    async def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> ResultSet:
        return _result_set(await self.request(
            {"op": "execute", "sql": sql, "params": list(params)}
        ))

    async def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return _result_set(await self.request(
            {"op": "query", "sql": sql, "params": list(params)}
        ))

    async def begin(self, isolation: Optional[object] = None) -> None:
        level = coerce_isolation(isolation)
        response = await self.request(
            {"op": "begin",
             "isolation": None if level is None else level.name}
        )
        self.gtid = response.get("gtid")

    async def commit(self) -> None:
        await self.request({"op": "commit"})

    async def rollback(self) -> None:
        await self.request({"op": "rollback"})

    async def batch(
        self, stmts: Sequence[Tuple[str, Sequence[Any]]]
    ) -> List[int]:
        response = await self.request(
            {"op": "batch",
             "stmts": [[sql, list(params)] for sql, params in stmts]}
        )
        self.gtid = response.get("gtid")
        return [int(n) for n in response.get("rowcounts", ())]

    async def ping(self) -> bool:
        return bool((await self.request({"op": "ping"})).get("ok"))


class AsyncClientPool:
    """A bounded pool of connected :class:`AsyncSQLClient` instances."""

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 8,
        client_name: str = "pool",
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.host = host
        self.port = port
        self.size = size
        self.client_name = client_name
        self._idle: "asyncio.Queue[AsyncSQLClient]" = asyncio.Queue()
        self._clients: List[AsyncSQLClient] = []

    async def open(self) -> None:
        for index in range(self.size):
            client = AsyncSQLClient(
                self.host, self.port,
                client_name=f"{self.client_name}.{index}",
            )
            await client.connect()
            self._clients.append(client)
            self._idle.put_nowait(client)

    async def close(self) -> None:
        clients, self._clients = self._clients, []
        self._idle = asyncio.Queue()
        for client in clients:
            await client.close()

    def acquire(self) -> "_PoolLease":
        """``async with pool.acquire() as client: ...``"""
        return _PoolLease(self)

    async def __aenter__(self) -> "AsyncClientPool":
        await self.open()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


class _PoolLease:
    def __init__(self, pool: AsyncClientPool):
        self.pool = pool
        self.client: Optional[AsyncSQLClient] = None

    async def __aenter__(self) -> AsyncSQLClient:
        self.client = await self.pool._idle.get()
        if not self.client.connected:
            await self.client.connect()
        return self.client

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if self.client is not None:
            self.pool._idle.put_nowait(self.client)
            self.client = None

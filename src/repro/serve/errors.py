"""The single wire error taxonomy.

Every engine/shard exception that crosses the socket is mapped **in
one place** -- here -- to a flat wire object::

    {"code": "shard_unavailable", "message": "...", "retryable": true,
     "retry_after_s": 0.0, "shard_id": 1}

and reconstructed on the client side into the *same* exception class it
left the server as.  That round-trip is what keeps the client
resilience stack honest over the network: ``is_retryable`` reads the
``retryable`` flag, :class:`~repro.engine.errors.OverloadError` keeps
its ``retry_after_s`` backoff hint, and
:class:`~repro.engine.errors.ShardUnavailableError` keeps its
``shard_id`` and its :class:`~repro.engine.errors.NodeUnavailableError`
lineage (so it still counts against circuit breakers).

An unknown code -- a newer server talking to an older client --
degrades to :class:`RemoteError` carrying the wire ``retryable`` flag,
so classification still works even when the class identity is lost.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from repro.engine import errors as engine_errors
from repro.engine.errors import (
    DeadlineExceededError,
    DeadlockError,
    DuplicateKeyError,
    EngineError,
    LockTimeoutError,
    NodeUnavailableError,
    OverloadError,
    RequestTimeout,
    SchemaError,
    ShardUnavailableError,
    SimulatedCrash,
    SqlError,
    TransactionAborted,
    WalCorruptionError,
    WriteConflictError,
)

__all__ = ["RemoteError", "WIRE_CODES", "to_wire", "from_wire", "wire_code"]


class RemoteError(EngineError):
    """A server-side failure whose class has no local counterpart.

    ``retryable`` is per-instance (from the wire flag) rather than the
    class attribute, so the resilience stack classifies it correctly
    without knowing the original type.
    """

    def __init__(self, message: str, code: str = "internal",
                 retryable: bool = False):
        super().__init__(message)
        self.code = code
        self.retryable = retryable


#: exception class -> wire code.  Order matters for lookup by
#: ``isinstance`` (subclasses before their bases).
WIRE_CODES: Dict[Type[EngineError], str] = {
    LockTimeoutError: "lock_timeout",
    DeadlockError: "deadlock",
    WriteConflictError: "write_conflict",
    TransactionAborted: "txn_aborted",
    OverloadError: "overload",
    DeadlineExceededError: "deadline_exceeded",
    ShardUnavailableError: "shard_unavailable",
    SimulatedCrash: "crash",
    NodeUnavailableError: "node_unavailable",
    RequestTimeout: "request_timeout",
    SchemaError: "schema",
    SqlError: "sql",
    DuplicateKeyError: "duplicate_key",
    WalCorruptionError: "wal_corruption",
}

_BY_CODE: Dict[str, Type[EngineError]] = {
    code: cls for cls, code in WIRE_CODES.items()
}


def wire_code(error: BaseException) -> str:
    """The wire code of an exception (most-derived class wins)."""
    for cls, code in WIRE_CODES.items():
        if type(error) is cls:
            return code
    for cls, code in WIRE_CODES.items():
        if isinstance(error, cls):
            return code
    if isinstance(error, EngineError):
        return "engine"
    return "internal"


def to_wire(error: BaseException) -> Dict[str, Any]:
    """Flatten any server-side exception into the wire error object."""
    payload: Dict[str, Any] = {
        "code": wire_code(error),
        "message": str(error) or type(error).__name__,
        "retryable": bool(getattr(error, "retryable", False)),
    }
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after:
        payload["retry_after_s"] = float(retry_after)
    shard_id = getattr(error, "shard_id", None)
    if shard_id is not None:
        payload["shard_id"] = int(shard_id)
    return payload


def from_wire(payload: Dict[str, Any]) -> EngineError:
    """Reconstruct the exception a wire error object describes."""
    code = str(payload.get("code", "internal"))
    message = str(payload.get("message", code))
    retryable = bool(payload.get("retryable", False))
    cls = _BY_CODE.get(code)
    if cls is OverloadError:
        return OverloadError(
            message, retry_after_s=float(payload.get("retry_after_s", 0.0))
        )
    if cls is ShardUnavailableError:
        shard_id = payload.get("shard_id")
        return ShardUnavailableError(
            message, shard_id=None if shard_id is None else int(shard_id)
        )
    if cls is not None:
        return cls(message)
    if code == "engine":
        # a plain EngineError subclass without a dedicated code
        error = EngineError(message)
        error.retryable = retryable
        return error
    return RemoteError(message, code=code, retryable=retryable)


def _self_check() -> None:
    """Every registered class must round-trip to itself."""
    for cls, code in WIRE_CODES.items():
        assert _BY_CODE[code] is cls, f"duplicate wire code {code!r}"
    # and every public engine error class must be registered
    public = {
        obj
        for name, obj in vars(engine_errors).items()
        if isinstance(obj, type)
        and issubclass(obj, EngineError)
        and obj is not EngineError
        and not name.startswith("_")
    }
    missing = public - set(WIRE_CODES)
    assert not missing, f"engine errors without wire codes: {missing}"


_self_check()

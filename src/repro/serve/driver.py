"""Top-level serve drivers: boot a server, drive load, report.

:func:`run_serve` is what the ``serve`` evaluator and the BENCH
builder call: it boots the serving tier (in-process single server by
default, or a :class:`~repro.serve.cluster.ServeCluster` of forked
SO_REUSEPORT workers), drives it with the
:mod:`~repro.serve.loadgen` generator at one connection count, and
returns a :class:`ServeRunResult`.  :func:`run_sweep` repeats that
across a list of connection counts -- the TPS / p50 / p99 *versus
connection count* curve the evaluator reports.

In-process mode runs the server and the load generator on **one**
event loop in one process.  That is not a toy shortcut: the engine is
synchronous pure Python, so a separate server process would measure
the same single-CPU execution plus context switches.  What the socket
adds -- framing, serialization, admission queueing, per-connection
sessions -- is exactly what this driver measures, and the loopback
socket is real (real TCP, real partial reads, real connection drops).
Cluster mode (``workers >= 1``) forks real server processes for
multi-core scaling at the cost of counter determinism (the kernel's
connection balancing is not seeded), so measured BENCH baselines pin
``workers = 0``.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.openloop import parse_arrival
from repro.serve.loadgen import run_load
from repro.serve.server import ServeFaultInjector, ServerConfig, SQLServer
from repro.shard.fleet import load_sales_fleet
from repro.shard.workload import _customer_keys, _order_keys

__all__ = [
    "BackgroundServer",
    "ServeRunResult",
    "collect_keys",
    "run_serve",
    "run_sweep",
]


@dataclass
class ServeRunResult:
    """Outcome of one serve drive at one connection count."""

    connections: int
    txns_per_conn: int
    driver: str                   # "async" | "cluster" | "cluster-fallback"
    qos: bool
    workers: int
    persona: str
    arrival: str
    offered: int
    committed: int
    aborted: int
    shed: int
    expired: int
    errors: int
    reconnects: int
    lost: int
    rejected: int
    deadline_misses: int
    wall_s: float
    tps: float
    goodput_tps: float
    latency_ms: Dict[str, float] = field(default_factory=dict)
    #: server-side accounting (in-process mode and cluster workers)
    server: Dict[str, int] = field(default_factory=dict)
    fsyncs: int = 0


def collect_keys(fleet) -> Dict[str, List[int]]:
    """The fleet-wide order/customer key space for load personas."""
    orders: List[int] = []
    customers: List[int] = []
    for shard in fleet.shards:
        orders.extend(_order_keys(shard))
        customers.extend(_customer_keys(shard))
    return {"orders": sorted(orders), "customers": sorted(customers)}


class BackgroundServer:
    """An in-process :class:`SQLServer` on a daemon thread.

    For *blocking* clients -- synchronous workloads recoded against the
    :class:`~repro.core.client.Client` protocol use this to run over a
    real socket (``transport="socket"``) without restructuring around
    asyncio: the server's event loop lives on its own thread, the
    workload keeps its plain call-and-return shape.  The fleet is only
    ever touched from the server thread once :meth:`start` returns, so
    there is no cross-thread engine access.
    """

    def __init__(
        self,
        fleet,
        config: Optional[ServerConfig] = None,
        observer=None,
        fault_injector: Optional[ServeFaultInjector] = None,
    ):
        self.fleet = fleet
        self.config = config or ServerConfig(qos=False)
        self.observer = observer
        self.fault_injector = fault_injector
        self.server: Optional[SQLServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop = None
        self._stop_event = None
        self._error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._thread_main, name="serve-bg", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise self._error
        if self.server is None:
            raise RuntimeError("background server failed to start")
        return self.server.address

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 -- surfaced to start()
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.server = SQLServer(
            self.fleet, self.config, observer=self.observer,
            fault_injector=self.fault_injector,
        )
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def _server_stats(server: SQLServer) -> Dict[str, int]:
    return {
        "accepted": server.accepted,
        "rejected": server.rejected,
        "statements": server.statements,
        "errors": server.errors,
        "shed": server.shed,
        "expired": server.expired,
        "abrupt_disconnects": server.abrupt_disconnects,
        "orphan_rollbacks": server.orphan_rollbacks,
    }


def run_serve(
    connections: int,
    txns_per_conn: int,
    n_shards: int = 2,
    workers: int = 0,
    qos: bool = True,
    persona: str = "payment",
    arrival: str = "closed",
    rate_tps: Optional[float] = None,
    deadline_s: Optional[float] = None,
    seed: int = 42,
    row_scale: float = 0.002,
    max_connections: int = 2048,
    max_queue: int = 64,
    observer=None,
    fault_plan=None,
) -> ServeRunResult:
    """Boot the serving tier, drive it, and aggregate both sides.

    ``workers = 0`` runs the single in-process server; ``workers >= 1``
    forks a :class:`~repro.serve.cluster.ServeCluster` (falling back to
    in-process with driver ``cluster-fallback`` when the environment
    refuses).  An open ``arrival`` spec needs ``rate_tps`` (total
    offered rate across all connections).
    """
    from repro.qos.admission import AdmissionPolicy

    spec = parse_arrival(arrival)
    if spec.is_open and rate_tps is None:
        rate_tps = spec.rate
    # the parent always builds one fleet: in-process mode serves from
    # it, cluster mode only reads the (seed-determined) key space
    fleet, _data = load_sales_fleet(
        n_shards, row_scale=row_scale, seed=seed, name="serve",
        observer=observer,
    )
    keys = collect_keys(fleet)
    injector = (
        ServeFaultInjector(fault_plan, seed=seed)
        if fault_plan is not None else None
    )

    cluster = None
    address = None
    driver = "async"
    if workers >= 1:
        from repro.serve.cluster import ServeCluster

        cluster = ServeCluster(
            workers, n_shards=n_shards, seed=seed, row_scale=row_scale,
            qos=qos, max_connections=max_connections, deadline_s=deadline_s,
        )
        address = cluster.start()
        driver = cluster.driver

    async def drive():
        server = None
        if address is None:
            config = ServerConfig(
                qos=qos, max_connections=max_connections,
                deadline_s=deadline_s,
                policy=AdmissionPolicy(max_queue=max_queue),
            )
            server = SQLServer(
                fleet, config, observer=observer, fault_injector=injector
            )
            host, port = await server.start()
        else:
            host, port = address
        try:
            outcome = await run_load(
                host, port,
                connections=connections, txns_per_conn=txns_per_conn,
                keys=keys, persona=persona, seed=seed,
                arrival=spec if spec.is_open else None,
                rate_tps=rate_tps, deadline_s=deadline_s,
            )
        finally:
            if server is not None:
                await server.stop()
        if server is not None:
            return outcome, _server_stats(server), fleet.fsyncs
        return outcome, {}, 0

    try:
        load, server_stats, fsyncs = asyncio.run(drive())
    finally:
        worker_stats = cluster.stop() if cluster is not None else []
    if worker_stats:
        server_stats = {
            key: sum(entry.get(key, 0) for entry in worker_stats)
            for key in (
                "accepted", "rejected", "statements", "errors", "shed",
                "expired", "abrupt_disconnects", "orphan_rollbacks",
            )
        }
        fsyncs = sum(entry.get("fsyncs", 0) for entry in worker_stats)
    return ServeRunResult(
        connections=connections,
        txns_per_conn=txns_per_conn,
        driver=driver,
        qos=qos,
        workers=workers if driver == "cluster" else 0,
        persona=persona,
        arrival=spec.describe(),
        offered=load.offered,
        committed=load.committed,
        aborted=load.aborted,
        shed=load.shed,
        expired=load.expired,
        errors=load.errors,
        reconnects=load.reconnects,
        lost=load.lost,
        rejected=load.rejected,
        deadline_misses=load.deadline_misses,
        wall_s=load.wall_s,
        tps=load.tps,
        goodput_tps=load.goodput_tps,
        latency_ms=load.latency_summary_ms(),
        server=server_stats,
        fsyncs=fsyncs,
    )


def run_sweep(
    connection_counts: Sequence[int],
    txns_per_conn: int,
    **kwargs,
) -> List[ServeRunResult]:
    """One :func:`run_serve` per connection count (fresh server each)."""
    return [
        run_serve(connections, txns_per_conn, **kwargs)
        for connections in connection_counts
    ]

"""The asyncio SQL-over-socket server fronting the shard fleet.

One :class:`SQLServer` owns one :class:`~repro.shard.fleet.
ShardedDatabase` and serves the frame protocol of
:mod:`repro.serve.wire` to any number of concurrent connections:

* **Per-connection sessions with transaction affinity** -- each
  connection holds at most one open global transaction; ``execute``
  frames between ``begin`` and ``commit`` enlist in it, exactly like
  the in-process :class:`~repro.core.client.FleetClient`.
* **Statement pipelining** -- clients may stream many request frames
  without waiting; the session processes them in arrival order and
  responses come back in the same order.  A ``batch`` frame goes
  further: the whole transaction executes atomically with respect to
  the event loop (no awaits between its statements), which is what
  makes measured counters deterministic under arbitrary connection
  interleavings.
* **Admission control** -- connection admission and statement admission
  both run through the existing qos machinery
  (:class:`~repro.qos.admission.AdmissionController`, the engine behind
  :class:`~repro.qos.gate.AdmissionGate`).  Connections hit a
  fixed-limit gate at accept; statements flow through a server-wide
  *bounded* admission queue drained by one worker task.  A full queue
  sheds immediately with a retryable ``overload`` wire error carrying
  the drain-based ``retry_after_s`` hint, and admitted statements that
  outlived ``deadline_s`` in the queue are expired *without* executing
  -- the two behaviours that keep goodput alive past the saturation
  knee.  With qos off the queue is unbounded and nothing expires: the
  server does 100% of the work arbitrarily late, which is the
  goodput-collapse baseline the serve evaluator measures against.
* **Chaos** -- a :class:`ServeFaultInjector` driven by the standard
  :class:`~repro.chaos.plan.FaultPlan` machinery injects the two
  serving-tier fault kinds: ``CONN_DROP`` (the server hangs up
  abruptly, possibly mid-pipeline) and ``CONN_STALL`` (statement
  intake freezes for a window).

The engine itself is synchronous pure Python, so statement execution
runs on the event loop; the server's concurrency is at the *protocol*
layer (thousands of open connections, interleaved frame streams),
which is the layer this testbed is measuring.  For CPU scale-out see
:mod:`repro.serve.cluster`: one full engine fleet per worker process
behind a shared SO_REUSEPORT socket.
"""

from __future__ import annotations

import asyncio
import socket as socket_module
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.chaos.plan import FaultKind, FaultPlan
from repro.core.client import coerce_isolation
from repro.engine.errors import (
    DeadlineExceededError,
    EngineError,
    OverloadError,
    SqlError,
)
from repro.obs import NULL_OBSERVER, Observer
from repro.qos.admission import AdmissionController, AdmissionPolicy
from repro.serve import wire
from repro.serve.errors import to_wire
from repro.sim.rng import RngRegistry

__all__ = ["ServeFaultInjector", "ServerConfig", "SQLServer"]

#: ops answered inline by the session (no admission, no engine work)
_CONTROL_OPS = frozenset({"hello", "ping", "goodbye"})

#: backoff hint shipped with drain-shed errors: long enough for the
#: replacement server to take the socket over, short enough that a
#: retrying client barely notices the handover
DRAIN_RETRY_AFTER_S = 0.05


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one serving-tier instance."""

    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (the tests' default)
    port: int = 0
    #: accepted connections beyond this are shed with a retryable error
    max_connections: int = 2048
    #: statement admission control (the qos stack) on or off
    qos: bool = True
    #: statement-admission policy when qos is on; ``max_queue`` is the
    #: knob that matters for a synchronous executor (the concurrency
    #: limit never binds when statements run one at a time)
    policy: AdmissionPolicy = AdmissionPolicy(max_queue=64)
    #: server-side statement deadline: queued work older than this is
    #: expired without executing (qos on only; None disables)
    deadline_s: Optional[float] = None
    max_frame: int = wire.MAX_FRAME_BYTES
    #: default isolation of served transactions (None = fleet default)
    isolation: Optional[str] = None
    name: str = "serve"

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.max_frame < 1:
            raise ValueError("max_frame must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        coerce_isolation(self.isolation)  # raises on an unknown level


class ServeFaultInjector:
    """Drives ``CONN_DROP`` / ``CONN_STALL`` faults from a fault plan.

    Windows are relative to server start.  Within an active
    ``CONN_DROP`` window each statement is dropped with probability
    ``intensity`` (the connection is closed abruptly, no response);
    within ``CONN_STALL`` every statement stalls for ``intensity x
    stall_scale_s`` seconds before intake.  Draws come from a dedicated
    seeded stream so fault firing is reproducible and never perturbs
    workload RNGs.
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        stall_scale_s: float = 0.05,
    ):
        self.plan = plan
        self.stall_scale_s = stall_scale_s
        self._rng = RngRegistry(seed).stream("serve.faults")
        self.drops = 0
        self.stalls = 0

    def action(self, now_s: float) -> Tuple[str, float]:
        """(``"drop"|"stall"|"none"``, stall seconds) for one statement."""
        stall_s = 0.0
        for spec in self.plan.active(now_s, kind=FaultKind.CONN_STALL):
            stall_s = max(stall_s, spec.intensity * self.stall_scale_s)
        for spec in self.plan.active(now_s, kind=FaultKind.CONN_DROP):
            if self._rng.random() < spec.intensity:
                self.drops += 1
                return "drop", 0.0
        if stall_s > 0:
            self.stalls += 1
            return "stall", stall_s
        return "none", 0.0


class _Session:
    """Per-connection state: the open transaction and the priority."""

    __slots__ = ("conn_id", "priority", "gtxn", "client_name")

    def __init__(self, conn_id: int):
        self.conn_id = conn_id
        self.priority = 1
        self.gtxn = None
        self.client_name = ""

    @property
    def in_txn(self) -> bool:
        return self.gtxn is not None and self.gtxn.is_active


class _Work:
    """One SQL frame waiting in the admission queue."""

    __slots__ = ("session", "frame", "future", "enqueued_at_s")

    def __init__(self, session, frame, future, enqueued_at_s):
        self.session = session
        self.frame = frame
        self.future = future
        self.enqueued_at_s = enqueued_at_s


class SQLServer:
    """Asyncio SQL-over-socket server over one shard fleet."""

    def __init__(
        self,
        fleet,
        config: Optional[ServerConfig] = None,
        observer: Optional[Observer] = None,
        fault_injector: Optional[ServeFaultInjector] = None,
    ):
        self.fleet = fleet
        self.config = config or ServerConfig()
        self.obs = observer or NULL_OBSERVER
        self.faults = fault_injector
        #: statement admission (bounded queue mode); None when qos is off
        self.controller: Optional[AdmissionController] = (
            AdmissionController(
                self.config.policy,
                name=f"{self.config.name}.stmt",
                observer=self.obs,
            )
            if self.config.qos
            else None
        )
        #: connection admission through the same qos machinery: a fixed
        #: limit (no AIMD -- releases pass latency < 0) equal to the
        #: connection cap
        cap = float(self.config.max_connections)
        self._conn_gate = AdmissionController(
            AdmissionPolicy(
                initial_limit=cap, min_limit=min(1.0, cap), max_limit=cap,
                max_queue=0,
            ),
            name=f"{self.config.name}.conn",
            observer=self.obs,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._drainer: Optional[asyncio.Task] = None
        #: qos-off work queue (qos-on work lives inside the controller)
        self._queue: Optional[asyncio.Queue] = None
        self._wake: Optional[asyncio.Event] = None
        self._started_at = 0.0
        self._next_conn_id = 0
        self._isolation = coerce_isolation(self.config.isolation)
        # cumulative accounting (cheap, always on -- evaluators read it)
        self.accepted = 0
        self.rejected = 0
        self.statements = 0
        self.errors = 0
        self.shed = 0
        self.expired = 0
        self.abrupt_disconnects = 0
        self.orphan_rollbacks = 0
        #: graceful-shutdown state: while draining, queued statements
        #: finish and reach their clients; new work is shed retryably
        self._draining = False
        self._pending_stmts = 0
        self._g_active = (
            self.obs.metrics.gauge("serve.conn.active")
            if self.obs.enabled else None
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def active_connections(self) -> int:
        return self._conn_gate.inflight

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def _now(self) -> float:
        return time.monotonic() - self._started_at

    async def start(
        self, sock: Optional[socket_module.socket] = None
    ) -> Tuple[str, int]:
        """Bind and serve; ``sock`` lets cluster workers share a
        pre-bound SO_REUSEPORT socket."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._started_at = time.monotonic()
        self._draining = False
        self._queue = asyncio.Queue()
        self._wake = asyncio.Event()
        if sock is not None:
            self._server = await asyncio.start_server(self._handle, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.config.host, port=self.config.port
            )
        self._drainer = asyncio.ensure_future(self._drain())
        return self.address

    async def stop(self, drain: bool = False) -> None:
        """Stop accepting and close; idempotent.

        With ``drain`` the shutdown is graceful: every statement
        already admitted finishes and its response reaches the client
        before the sockets go down, while *new* statements (and new
        connections) are shed with a retryable
        :class:`~repro.engine.errors.OverloadError` carrying a
        ``retry_after_s`` hint -- so a well-behaved client loses
        nothing, it just lands its retry on the replacement server.
        """
        server, self._server = self._server, None
        if server is None:
            return
        if drain:
            self._draining = True
            while self._pending_stmts > 0:
                await asyncio.sleep(0)
        drainer, self._drainer = self._drainer, None
        if drainer is not None:
            drainer.cancel()
            try:
                await drainer
            except asyncio.CancelledError:
                pass
        server.close()
        await server.wait_closed()
        # Retired servers shed: a session that outlives the listener
        # must not queue work for the dead drainer (its future would
        # never resolve).  start() clears the flag.
        self._draining = True

    async def __aenter__(self) -> "SQLServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- the per-connection loop ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if self._draining:
                raise self._drain_error()
            self._conn_gate.try_acquire(self._now())
        except OverloadError as error:
            self.rejected += 1
            if self.obs.enabled:
                self.obs.count("serve.reject")
            try:
                await self._send(writer, {"ok": False,
                                          "error": to_wire(error)})
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self.accepted += 1
        self._next_conn_id += 1
        session = _Session(self._next_conn_id)
        if self.obs.enabled:
            self.obs.count("serve.accept")
            self._g_active.set(float(self.active_connections))
        clean = False
        try:
            clean = await self._serve_session(session, reader, writer)
        except (
            ConnectionError, asyncio.IncompleteReadError, BrokenPipeError
        ):
            pass
        finally:
            if not clean:
                self.abrupt_disconnects += 1
                if self.obs.enabled:
                    self.obs.count("serve.disconnect.abrupt")
            self._cleanup_session(session)
            self._conn_gate.release(self._now(), -1.0)
            if self.obs.enabled:
                self._g_active.set(float(self.active_connections))
            writer.close()

    async def _serve_session(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """The request loop; True on a clean ``goodbye`` or EOF."""
        while True:
            try:
                frame = await wire.read_frame(
                    reader, max_frame=self.config.max_frame
                )
            except wire.FrameError as error:
                # the stream is poisoned: one final error frame, hang up
                try:
                    await self._send(
                        writer, {"ok": False, "error": to_wire(
                            _protocol_error(str(error))
                        )}
                    )
                except (ConnectionError, OSError):
                    pass
                return False
            if frame is None:
                return True  # clean EOF at a frame boundary
            if self.faults is not None:
                action, stall_s = self.faults.action(self._now())
                if action == "drop":
                    if self.obs.enabled:
                        self.obs.count("serve.fault.drop")
                    return False  # abrupt close, no response
                if action == "stall":
                    if self.obs.enabled:
                        self.obs.count("serve.fault.stall")
                    await asyncio.sleep(stall_s)
            op = frame.get("op")
            if op in _CONTROL_OPS or op not in self._HANDLERS:
                response = self._execute_frame(session, frame)
            else:
                response = await self._submit(session, frame)
            await self._send(writer, response)
            if op == "goodbye":
                return True

    def _cleanup_session(self, session: _Session) -> None:
        """Roll back whatever the departed connection left open."""
        if session.in_txn:
            self.orphan_rollbacks += 1
            if self.obs.enabled:
                self.obs.count("serve.txn.orphan_rollback")
            try:
                session.gtxn.rollback()
            except EngineError:
                pass
        session.gtxn = None

    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(wire.encode_frame(payload))
        await writer.drain()

    # -- the admission queue and its drainer ----------------------------------

    def _drain_error(self) -> OverloadError:
        return OverloadError(
            f"{self.config.name}: draining for shutdown; retry against "
            f"the replacement server",
            retry_after_s=DRAIN_RETRY_AFTER_S,
        )

    async def _submit(self, session: _Session, frame) -> Dict[str, Any]:
        """Queue one SQL frame for the drainer; await its response."""
        if self._draining:
            self.shed += 1
            if self.obs.enabled:
                self.obs.count("serve.stmt.shed")
            return {"ok": False, "error": to_wire(self._drain_error())}
        future = asyncio.get_running_loop().create_future()
        work = _Work(session, frame, future, self._now())
        if self.controller is not None:
            try:
                self.controller.enqueue(
                    work, work.enqueued_at_s, priority=session.priority
                )
            except OverloadError as error:
                self.shed += 1
                if self.obs.enabled:
                    self.obs.count("serve.stmt.shed")
                return {"ok": False, "error": to_wire(error)}
            self._wake.set()
        else:
            self._queue.put_nowait(work)
        self._pending_stmts += 1
        return await future

    async def _drain(self) -> None:
        """The single worker task executing admitted statements."""
        while True:
            work = await self._next_work()
            started = self._now()
            if (
                self.controller is not None
                and self.config.deadline_s is not None
                and started - work.enqueued_at_s > self.config.deadline_s
            ):
                # deadline propagation: the client gave up on this
                # statement while it queued -- expire it unexecuted
                self.expired += 1
                if self.obs.enabled:
                    self.obs.count("serve.stmt.expired")
                response = {"ok": False, "error": to_wire(
                    DeadlineExceededError(
                        f"{self.config.name}: statement expired after "
                        f"{started - work.enqueued_at_s:.3f}s in the "
                        f"admission queue"
                    )
                )}
                self.controller.release(self._now(), -1.0)
            else:
                response = self._execute_frame(work.session, work.frame)
                if self.controller is not None:
                    now = self._now()
                    self.controller.release(
                        now, now - started, ok=bool(response.get("ok"))
                    )
            self._pending_stmts -= 1
            if not work.future.done():
                work.future.set_result(response)

    async def _next_work(self) -> _Work:
        if self.controller is None:
            return await self._queue.get()
        while True:
            ticket = self.controller.next_ready(self._now())
            if ticket is not None:
                return ticket.item
            self._wake.clear()
            await self._wake.wait()

    # -- request execution ------------------------------------------------------

    def _execute_frame(
        self, session: _Session, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run one frame to completion, mapping every failure through
        the wire taxonomy (errors cross the socket *only* via
        :func:`~repro.serve.errors.to_wire` -- the one place)."""
        op = frame.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            return {"ok": False, "error": to_wire(
                _protocol_error(f"unknown op {op!r}")
            )}
        try:
            return handler(self, session, frame)
        except EngineError as error:
            self.errors += 1
            if self.obs.enabled:
                self.obs.count("serve.stmt.error")
            return {"ok": False, "error": to_wire(error)}
        except Exception as error:  # noqa: BLE001 -- never kill the session
            self.errors += 1
            return {"ok": False, "error": to_wire(error)}

    def _op_hello(self, session, frame):
        session.client_name = str(frame.get("client", ""))
        session.priority = int(frame.get("priority", 1))
        return {
            "ok": True,
            "server": self.config.name,
            "n_shards": self.fleet.n_shards,
            "max_frame": self.config.max_frame,
        }

    def _op_ping(self, session, frame):
        return {"ok": True}

    def _op_goodbye(self, session, frame):
        self._cleanup_session(session)
        return {"ok": True, "bye": True}

    def _run_statement(
        self, session: _Session, sql: str, params, read_only: bool
    ):
        if session.in_txn:
            return self.fleet.execute(sql, list(params), gtxn=session.gtxn)
        if read_only:
            return self.fleet.query(sql, list(params))
        return self.fleet.execute(sql, list(params))

    def _op_execute(self, session, frame, read_only: bool = False):
        sql = frame.get("sql")
        if not isinstance(sql, str):
            raise _protocol_error("execute frame without sql")
        params = frame.get("params", [])
        self.statements += 1
        result = self._run_statement(session, sql, params, read_only)
        if self.obs.enabled:
            self.obs.count("serve.stmt.ok")
        return {
            "ok": True,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "rowcount": result.rowcount,
        }

    def _op_query(self, session, frame):
        return self._op_execute(session, frame, read_only=True)

    def _op_begin(self, session, frame):
        if session.in_txn:
            raise _protocol_error("begin inside an open transaction")
        isolation = frame.get("isolation")
        session.gtxn = self.fleet.begin(
            isolation=(
                self._isolation if isolation is None
                else coerce_isolation(isolation)
            )
        )
        if self.obs.enabled:
            self.obs.count("serve.txn.begin")
        return {"ok": True, "gtid": session.gtxn.gtid}

    def _op_commit(self, session, frame):
        if not session.in_txn:
            raise _protocol_error("commit outside a transaction")
        gtxn = session.gtxn
        try:
            gtxn.commit()
        finally:
            if not gtxn.is_active:
                session.gtxn = None
        if self.obs.enabled:
            self.obs.count("serve.txn.commit")
        return {"ok": True, "gtid": gtxn.gtid}

    def _op_rollback(self, session, frame):
        if not session.in_txn:
            raise _protocol_error("rollback outside a transaction")
        gtxn = session.gtxn
        try:
            gtxn.rollback()
        finally:
            if not gtxn.is_active:
                session.gtxn = None
        return {"ok": True}

    def _op_abandon(self, session, frame):
        """Drop the session's transaction affinity *without* rollback.

        For the post-crash convention (see ``Client.abandon``): a
        :class:`~repro.engine.errors.SimulatedCrash` left the global
        transaction dangling on purpose -- its branches belong to crash
        recovery -- but this session must be able to ``begin`` again.
        """
        session.gtxn = None
        return {"ok": True}

    def _op_batch(self, session, frame):
        """One whole transaction, atomic with respect to the event loop.

        The drainer calls this synchronously -- no awaits happen between
        the BEGIN and the COMMIT below, so two pipelined batches from
        different connections can never interleave their statements,
        which is what pins the measured counters (committed / aborted /
        fsyncs) regardless of asyncio scheduling order.
        """
        if session.in_txn:
            raise _protocol_error("batch inside an open transaction")
        stmts = frame.get("stmts")
        if not isinstance(stmts, list) or not stmts:
            raise _protocol_error("batch frame without statements")
        self.statements += len(stmts)
        gtxn = self.fleet.begin(isolation=self._isolation)
        rowcounts = []
        try:
            for entry in stmts:
                sql, params = entry[0], entry[1] if len(entry) > 1 else []
                result = self.fleet.execute(sql, list(params), gtxn=gtxn)
                rowcounts.append(result.rowcount)
            gtxn.commit()
        except BaseException:
            if gtxn.is_active:
                try:
                    gtxn.rollback()
                except EngineError:
                    pass
            raise
        if self.obs.enabled:
            self.obs.count("serve.txn.commit")
            self.obs.count("serve.stmt.ok", len(stmts))
        return {"ok": True, "rowcounts": rowcounts, "gtid": gtxn.gtid}

    _HANDLERS = {
        "hello": _op_hello,
        "ping": _op_ping,
        "goodbye": _op_goodbye,
        "execute": _op_execute,
        "query": _op_query,
        "begin": _op_begin,
        "commit": _op_commit,
        "rollback": _op_rollback,
        "abandon": _op_abandon,
        "batch": _op_batch,
    }


def _protocol_error(message: str) -> EngineError:
    """A non-retryable protocol-misuse error (the client is wrong)."""
    return SqlError(f"protocol: {message}")

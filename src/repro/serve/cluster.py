"""Multiprocess worker model: one engine fleet per worker process.

The serving tier scales across cores the way the shard mp driver does:
fork one worker per requested slot, each building its **own** full
shard fleet from the same seed (identical data, no shared state) and
running its own asyncio :class:`~repro.serve.server.SQLServer` on a
shared ``SO_REUSEPORT`` socket.  The kernel load-balances incoming
connections across workers, so the client side needs no dispatcher --
it dials one address and lands on some worker; transaction affinity is
per *connection*, and a connection lives on exactly one worker, so the
semantics match the single-process server exactly (cross-worker
transactions do not exist, the honest boundary the mp shard driver
also draws).

When the environment refuses (no ``fork``, no ``SO_REUSEPORT``, or a
sandbox that blocks subprocesses) the cluster degrades to zero workers
and reports ``cluster-fallback`` so callers fall back to the
in-process server with honest labeling -- the same convention as the
shard driver's ``mp-fallback``.
"""

from __future__ import annotations

import os
import signal
import socket
import time
from typing import Dict, List, Optional, Tuple

#: seconds to wait for workers to report readiness / stats
_WORKER_TIMEOUT_S = 120.0


def _reuseport_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


def _worker_main(
    worker_id: int,
    host: str,
    port: int,
    n_shards: int,
    seed: int,
    row_scale: float,
    qos: bool,
    max_connections: int,
    deadline_s: Optional[float],
    queue,
) -> None:
    """One worker's whole life: build a fleet, serve until SIGTERM."""
    import asyncio

    from repro.serve.server import ServerConfig, SQLServer
    from repro.shard.fleet import load_sales_fleet

    fleet, _data = load_sales_fleet(
        n_shards, row_scale=row_scale, seed=seed,
        name=f"serve-w{worker_id}",
    )
    config = ServerConfig(
        host=host, port=port, qos=qos,
        max_connections=max_connections, deadline_s=deadline_s,
        name=f"serve.w{worker_id}",
    )
    server = SQLServer(fleet, config)

    async def main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        await server.start(sock=_reuseport_socket(host, port))
        queue.put({"event": "ready", "worker": worker_id})
        await stop.wait()
        # graceful handover: finish admitted statements, shed the rest
        # retryably, then close
        await server.stop(drain=True)
        queue.put({
            "event": "stats",
            "worker": worker_id,
            "accepted": server.accepted,
            "rejected": server.rejected,
            "statements": server.statements,
            "errors": server.errors,
            "shed": server.shed,
            "expired": server.expired,
            "abrupt_disconnects": server.abrupt_disconnects,
            "orphan_rollbacks": server.orphan_rollbacks,
            "fsyncs": fleet.fsyncs,
        })

    asyncio.run(main())


class ServeCluster:
    """``workers`` forked SQL servers behind one SO_REUSEPORT address."""

    def __init__(
        self,
        workers: int,
        n_shards: int = 2,
        seed: int = 42,
        row_scale: float = 0.002,
        qos: bool = True,
        max_connections: int = 2048,
        deadline_s: Optional[float] = None,
        host: str = "127.0.0.1",
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.n_shards = n_shards
        self.seed = seed
        self.row_scale = row_scale
        self.qos = qos
        self.max_connections = max_connections
        self.deadline_s = deadline_s
        self.host = host
        self.port = 0
        self.driver = "cluster"
        self._procs: List = []
        self._queue = None
        self.worker_stats: List[Dict] = []

    def start(self) -> Optional[Tuple[str, int]]:
        """Fork the workers; ``None`` (driver ``cluster-fallback``) when
        the environment cannot run them."""
        try:
            import multiprocessing

            # probe SO_REUSEPORT and pick the shared port up front
            probe = _reuseport_socket(self.host, 0)
            self.port = probe.getsockname()[1]
            context = multiprocessing.get_context("fork")
            self._queue = context.Queue()
            self._procs = [
                context.Process(
                    target=_worker_main,
                    args=(
                        worker_id, self.host, self.port, self.n_shards,
                        self.seed, self.row_scale, self.qos,
                        self.max_connections, self.deadline_s, self._queue,
                    ),
                )
                for worker_id in range(self.workers)
            ]
            for proc in self._procs:
                proc.start()
            deadline = time.monotonic() + _WORKER_TIMEOUT_S
            ready = 0
            while ready < self.workers:
                self._queue.get(timeout=max(0.1, deadline - time.monotonic()))
                ready += 1
            # the probe socket must outlive worker binds, not the run:
            # close it now so it never accepts a connection itself
            probe.close()
            return self.host, self.port
        except Exception:
            self.stop()
            self.driver = "cluster-fallback"
            return None

    def stop(self) -> List[Dict]:
        """SIGTERM the workers and collect their final stats."""
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.is_alive():
                os.kill(proc.pid, signal.SIGTERM)
        stats: List[Dict] = []
        if self._queue is not None:
            for _ in procs:
                try:
                    entry = self._queue.get(timeout=_WORKER_TIMEOUT_S)
                    if entry.get("event") == "stats":
                        stats.append(entry)
                except Exception:
                    break
        for proc in procs:
            proc.join(timeout=_WORKER_TIMEOUT_S)
            if proc.is_alive():
                proc.kill()
        self.worker_stats = sorted(stats, key=lambda s: s.get("worker", 0))
        return self.worker_stats

    def __enter__(self) -> "ServeCluster":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

"""The networked serving tier: SQL over sockets in front of the fleet.

``repro.serve`` is the first layer of the testbed that *serves* traffic
instead of being called: an asyncio server (:mod:`repro.serve.server`)
speaks a length-prefixed JSON frame protocol (:mod:`repro.serve.wire`)
in front of a :class:`~repro.shard.fleet.ShardedDatabase`, errors cross
the wire with their ``retryable`` / ``retry_after_s`` semantics intact
(:mod:`repro.serve.errors`), and an NDBench-style load generator
(:mod:`repro.serve.loadgen`) drives thousands of concurrent
connections at it through the async client pool
(:mod:`repro.serve.client`).
"""

from repro.serve.client import AsyncClientPool, AsyncSQLClient, SocketClient
from repro.serve.driver import (
    BackgroundServer,
    ServeRunResult,
    run_serve,
    run_sweep,
)
from repro.serve.errors import RemoteError, from_wire, to_wire
from repro.serve.loadgen import LoadResult, make_persona, run_load
from repro.serve.server import ServeFaultInjector, ServerConfig, SQLServer
from repro.serve.wire import (
    FrameDecoder,
    FrameError,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
)

__all__ = [
    "AsyncClientPool",
    "BackgroundServer",
    "AsyncSQLClient",
    "FrameDecoder",
    "FrameError",
    "LoadResult",
    "MAX_FRAME_BYTES",
    "RemoteError",
    "ServeFaultInjector",
    "ServeRunResult",
    "ServerConfig",
    "SocketClient",
    "SQLServer",
    "encode_frame",
    "from_wire",
    "make_persona",
    "read_frame",
    "run_load",
    "run_serve",
    "run_sweep",
    "to_wire",
]

"""The wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON.  Requests are objects with an ``op``
key; responses carry ``ok: true`` plus a result block, or ``ok: false``
plus the error taxonomy object of :mod:`repro.serve.errors`.

The request vocabulary:

========  ==================================================
op        payload
========  ==================================================
hello     ``client`` (name), ``priority`` (0 = highest)
execute   ``sql``, ``params``
query     ``sql``, ``params`` (read-only)
begin     ``isolation`` (level name or null)
commit    --
rollback  --
abandon   -- (drop txn affinity without rollback; post-crash)
batch     ``stmts``: ``[[sql, params], ...]`` -- one whole
          transaction, executed atomically server-side
ping      --
goodbye   --
========  ==================================================

Framing errors are *protocol* errors, not SQL errors: a malformed or
oversized length prefix poisons the byte stream (there is no way to
find the next frame boundary), so the decoder raises
:class:`FrameError` and the server hangs up after one final error
frame.  Partial reads are normal -- :class:`FrameDecoder` buffers
fragments until a frame completes, which is what makes the protocol
safe over real sockets that deliver bytes in arbitrary chunks.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "FrameDecoder",
    "FrameError",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
]

#: bytes of the length prefix
HEADER_BYTES = 4

#: default ceiling on one frame's payload; a statement bigger than this
#: is a client bug (or an attack), not a workload
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


class FrameError(Exception):
    """The byte stream violates the framing protocol (unrecoverable)."""


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame for ``payload``; raises :class:`FrameError` when
    the encoded payload exceeds :data:`MAX_FRAME_BYTES`."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload is {len(body)} bytes "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks (including single bytes) with :meth:`feed`;
    iterate completed frames with :meth:`frames`.  The decoder is
    strict about the prefix: a zero or oversized length raises
    :class:`FrameError` immediately -- once the prefix is wrong the
    stream has no recoverable frame boundary.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES):
        if max_frame < 1:
            raise ValueError("max_frame must be >= 1")
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._needed: Optional[int] = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every frame it completed, in order."""
        self._buffer.extend(data)
        return list(self.frames())

    def frames(self) -> Iterator[Dict[str, Any]]:
        while True:
            if self._needed is None:
                if len(self._buffer) < HEADER_BYTES:
                    return
                (length,) = _HEADER.unpack_from(self._buffer)
                if length == 0:
                    raise FrameError("zero-length frame")
                if length > self.max_frame:
                    raise FrameError(
                        f"frame of {length} bytes exceeds the "
                        f"{self.max_frame}-byte limit"
                    )
                del self._buffer[:HEADER_BYTES]
                self._needed = length
            if len(self._buffer) < self._needed:
                return
            body = bytes(self._buffer[: self._needed])
            del self._buffer[: self._needed]
            self._needed = None
            yield decode_body(body)


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body; malformed JSON is a protocol error."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(
    reader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`FrameError` on a bad prefix or a stream truncated inside a
    frame (the peer died mid-write).
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError(
            f"stream truncated inside a frame header "
            f"({len(error.partial)}/{HEADER_BYTES} bytes)"
        ) from error
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_frame:
        raise FrameError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            f"stream truncated inside a frame body "
            f"({len(error.partial)}/{length} bytes)"
        ) from error
    return decode_body(body)

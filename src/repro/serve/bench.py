"""The serve BENCH baseline builder.

``python -m repro.serve.bench --quick --out DIR`` measures one pinned
end-to-end run through the serving tier -- real asyncio server, real
loopback sockets, the payment persona -- and writes it as a
``BENCH_serve.json`` trajectory record (schema of
:mod:`repro.perf.trajectory`).  CI regenerates the record and gates it
against the committed baseline with ``python -m repro.perf.compare``.

The shape is pinned so the record stays comparable across commits:

* ``workers = 0`` -- the single in-process server.  Forked
  SO_REUSEPORT workers forfeit counter determinism (the kernel's
  connection balancing is not seeded), which would break the
  comparator's exact-counter checks.
* ``qos = False`` -- no admission queue in the path.  The baseline
  measures the serving tier's framing/session/execution cost; the
  qos knee has its own end-to-end check in the serve smoke bench.
* closed-loop arrival -- every offered transaction runs, so
  ``committed``/``aborted``/``fsyncs`` are exact machine-independent
  integers (8 connections x 32 payment transactions = 256 offered,
  matching the perf baselines' quick shape).
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
from typing import List, Optional

from repro.perf.trajectory import (
    TrajectoryRecord,
    env_fingerprint,
    validate_bench,
    workload_fingerprint,
    write_bench,
)
from repro.serve.driver import ServeRunResult, run_serve

__all__ = [
    "BENCH_CONNECTIONS",
    "BENCH_TXNS_PER_CONN",
    "bench_record",
    "main",
    "serve_record",
]

#: the pinned quick shape: 8 x 32 = 256 offered transactions, the same
#: iteration count the perf baselines pin under ``--quick``
BENCH_CONNECTIONS = 8
BENCH_TXNS_PER_CONN = 32

#: fixed data scale of the baseline fleet
BENCH_SHARDS = 2
BENCH_ROW_SCALE = 0.002


def serve_record(
    result: ServeRunResult,
    seed: int,
    row_scale: float,
    cpu_s: float,
    peak_rss_kb: float,
    spin_s: Optional[float] = None,
) -> TrajectoryRecord:
    """Shape one measured :class:`ServeRunResult` as a BENCH record.

    ``cpu_s`` and ``peak_rss_kb`` are measured by the caller around the
    drive (the result itself only times the load loop).
    """
    params = {
        "connections": result.connections,
        "txns_per_conn": result.txns_per_conn,
        "n_shards": BENCH_SHARDS,
        "persona": result.persona,
        "qos": result.qos,
        "workers": result.workers,
        "arrival": result.arrival,
        "row_scale": row_scale,
    }
    latency = dict(result.latency_ms)
    for pct in ("p50", "p95", "p99", "p999"):
        latency.setdefault(pct, 0.0)
    return TrajectoryRecord(
        eval_name="serve",
        workload={
            "name": f"serve-{result.persona}",
            "seed": seed,
            "arrival": result.arrival,
            "params": params,
            "fingerprint": workload_fingerprint(params),
        },
        env=env_fingerprint(spin_s),
        # the serve drive has no pilot stage: the iteration count is
        # pinned, and the "observed rate" is the measured throughput
        pilot={"txns": result.offered, "rate_tps": result.tps},
        metrics={
            "txns": result.offered,
            "committed": result.committed,
            "aborted": result.aborted,
            "fsyncs": result.fsyncs,
            "wall_s": result.wall_s,
            "cpu_s": cpu_s,
            "peak_rss_kb": peak_rss_kb,
            "tps": result.tps,
            "goodput_tps": result.goodput_tps,
            "latency_ms": latency,
        },
    )


def bench_record(seed: int = 42, spin_s: Optional[float] = None) -> TrajectoryRecord:
    """Measure the pinned serve shape and return its BENCH record."""
    cpu_start = time.process_time()
    result = run_serve(
        BENCH_CONNECTIONS, BENCH_TXNS_PER_CONN,
        n_shards=BENCH_SHARDS, workers=0, qos=False,
        persona="payment", arrival="closed",
        seed=seed, row_scale=BENCH_ROW_SCALE,
    )
    cpu_s = time.process_time() - cpu_start
    peak_rss_kb = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return serve_record(
        result, seed=seed, row_scale=BENCH_ROW_SCALE,
        cpu_s=cpu_s, peak_rss_kb=peak_rss_kb, spin_s=spin_s,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.bench",
        description="Measure the pinned serve shape; write BENCH_serve.json.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="accepted for CI symmetry; the serve shape is always pinned",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write BENCH_serve.json to DIR (default: print a summary only)",
    )
    args = parser.parse_args(argv)

    record = bench_record(seed=args.seed)
    problems = validate_bench(record.to_doc())
    if problems:
        print("BENCH record is invalid:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    metrics = record.metrics
    print(
        f"serve bench: {metrics['committed']}/{metrics['txns']} committed, "
        f"{metrics['tps']:.1f} tps, p99 {metrics['latency_ms']['p99']:.2f} ms, "
        f"{metrics['fsyncs']} fsyncs"
    )
    if args.out:
        path = write_bench(record, args.out)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Jepsen-style operation histories and the consistency checker.

The HA workload (:mod:`repro.ha.workload`) records every client
operation twice: an ``invoke`` when it starts and exactly one of

* ``ok``   -- the operation definitely happened (commit acked / read
  returned);
* ``fail`` -- the operation definitely did *not* happen (aborted
  before any decision could be durable: presumed abort applies);
* ``info`` -- the outcome is unknown (a crash swallowed the ack; the
  transaction may surface as committed after recovery, or never).

:class:`HistoryChecker` then replays the history against the PAIRS
workload's invariants.  Each pair is two rows on *different* shards
that every transfer stamps with the same, strictly increasing version,
so consistency reduces to checks a machine can do exhaustively:

* **fractured read** -- a read observed two different stamps for one
  pair: a cross-shard transaction was visible on one shard but not the
  other (atomicity broken);
* **phantom version** -- a read observed a version no transfer ever
  wrote;
* **aborted read** -- a read observed a version whose transfer
  definitely failed;
* **non-monotonic read** -- one worker saw a pair's version go
  backwards between two of its own reads;
* **lost update** -- after final recovery a pair's stamp is below an
  acked (``ok``) transfer's version: an acknowledged commit was lost;
* **fractured state** -- the two rows of a pair disagree in the final,
  fully recovered state (atomicity broken durably).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: outcome markers
INVOKE, OK, FAIL, INFO = "invoke", "ok", "fail", "info"


@dataclass
class Op:
    """One history entry (an invocation or its completion)."""

    index: int
    worker: int
    kind: str  # invoke | ok | fail | info
    f: str  # transfer | read
    pair: int
    #: the version a transfer wrote (transfers only)
    version: Optional[int] = None
    #: the (stamp_a, stamp_b) a read returned (ok reads only)
    observed: Optional[Tuple[int, int]] = None
    gtid: Optional[str] = None


class History:
    """An append-only, globally ordered operation history."""

    def __init__(self) -> None:
        self.ops: List[Op] = []

    def __len__(self) -> int:
        return len(self.ops)

    def _record(self, kind: str, worker: int, f: str, pair: int, **kw) -> Op:
        op = Op(index=len(self.ops), worker=worker, kind=kind, f=f, pair=pair, **kw)
        self.ops.append(op)
        return op

    def invoke(self, worker: int, f: str, pair: int, **kw) -> Op:
        return self._record(INVOKE, worker, f, pair, **kw)

    def ok(self, worker: int, f: str, pair: int, **kw) -> Op:
        return self._record(OK, worker, f, pair, **kw)

    def fail(self, worker: int, f: str, pair: int, **kw) -> Op:
        return self._record(FAIL, worker, f, pair, **kw)

    def info(self, worker: int, f: str, pair: int, **kw) -> Op:
        return self._record(INFO, worker, f, pair, **kw)

    def completions(self, f: Optional[str] = None) -> List[Op]:
        return [
            op for op in self.ops
            if op.kind != INVOKE and (f is None or op.f == f)
        ]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for op in self.ops:
            if op.kind != INVOKE:
                out[f"{op.f}.{op.kind}"] = out.get(f"{op.f}.{op.kind}", 0) + 1
        return out


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to the history entry that shows it."""

    kind: str
    detail: str
    op_index: Optional[int] = None

    def __str__(self) -> str:
        where = f" (op {self.op_index})" if self.op_index is not None else ""
        return f"[{self.kind}]{where} {self.detail}"


@dataclass
class CheckReport:
    """The checker's verdict over one history."""

    violations: List[Violation] = field(default_factory=list)
    ops_checked: int = 0
    reads_checked: int = 0

    @property
    def consistent(self) -> bool:
        return not self.violations

    def describe(self) -> List[str]:
        if self.consistent:
            return [
                f"consistent: {self.ops_checked} ops, "
                f"{self.reads_checked} reads, 0 violations"
            ]
        return [str(violation) for violation in self.violations]


class HistoryChecker:
    """Validates a PAIRS history plus the final recovered state."""

    def check(
        self,
        history: History,
        final_stamps: Optional[Dict[int, Tuple[int, int]]] = None,
    ) -> CheckReport:
        """Run every invariant; ``final_stamps`` maps pair -> the two
        row stamps read after the last recovery pass."""
        report = CheckReport(ops_checked=len(history.ops))
        issued: Dict[int, set] = {}  # pair -> versions some transfer wrote
        acked: Dict[int, int] = {}  # pair -> max version of an ok transfer
        failed: Dict[int, set] = {}  # pair -> versions that definitely aborted
        for op in history.completions("transfer"):
            issued.setdefault(op.pair, set()).add(op.version)
            if op.kind == OK:
                acked[op.pair] = max(acked.get(op.pair, 0), op.version)
            elif op.kind == FAIL:
                failed.setdefault(op.pair, set()).add(op.version)

        last_seen: Dict[Tuple[int, int], int] = {}  # (worker, pair) -> version
        for op in history.completions("read"):
            if op.kind != OK or op.observed is None:
                continue
            report.reads_checked += 1
            stamp_a, stamp_b = op.observed
            if stamp_a != stamp_b:
                report.violations.append(Violation(
                    "fractured_read",
                    f"pair {op.pair}: worker {op.worker} saw "
                    f"stamps {stamp_a} != {stamp_b}",
                    op.index,
                ))
                continue
            version = stamp_a
            if version != 0 and version not in issued.get(op.pair, ()):
                report.violations.append(Violation(
                    "phantom_version",
                    f"pair {op.pair}: observed version {version} "
                    f"was never written",
                    op.index,
                ))
            if version in failed.get(op.pair, ()):
                report.violations.append(Violation(
                    "aborted_read",
                    f"pair {op.pair}: observed version {version} of a "
                    f"transfer that definitely aborted",
                    op.index,
                ))
            key = (op.worker, op.pair)
            if version < last_seen.get(key, 0):
                report.violations.append(Violation(
                    "non_monotonic_read",
                    f"pair {op.pair}: worker {op.worker} saw version "
                    f"{version} after {last_seen[key]}",
                    op.index,
                ))
            last_seen[key] = max(last_seen.get(key, 0), version)

        if final_stamps is not None:
            self._check_final(report, final_stamps, issued, acked, failed)
        return report

    @staticmethod
    def _check_final(
        report: CheckReport,
        final_stamps: Dict[int, Tuple[int, int]],
        issued: Dict[int, set],
        acked: Dict[int, int],
        failed: Dict[int, set],
    ) -> None:
        for pair, (stamp_a, stamp_b) in sorted(final_stamps.items()):
            if stamp_a != stamp_b:
                report.violations.append(Violation(
                    "fractured_state",
                    f"pair {pair}: final stamps {stamp_a} != {stamp_b} "
                    f"after full recovery",
                ))
                continue
            version = stamp_a
            if version != 0 and version not in issued.get(pair, ()):
                report.violations.append(Violation(
                    "phantom_version",
                    f"pair {pair}: final version {version} was never written",
                ))
            if version in failed.get(pair, ()):
                report.violations.append(Violation(
                    "aborted_read",
                    f"pair {pair}: final state holds version {version} of "
                    f"a transfer that definitely aborted",
                ))
            if version < acked.get(pair, 0):
                report.violations.append(Violation(
                    "lost_update",
                    f"pair {pair}: final version {version} is below acked "
                    f"version {acked[pair]} -- an acknowledged commit was lost",
                ))

"""Shard-level HA: primary/standby pairs with automated failover.

:class:`HAFleet` extends the sharded fleet with one warm standby per
shard, kept current by synchronous WAL shipping
(:class:`~repro.ha.replication.WalShipper`).  Leadership is a
time-bounded lease on a shared :class:`~repro.ha.lease.VirtualClock`:
a primary whose WAL died stops renewing, and the first :meth:`poll`
after the lease expires triggers failover.

Promotion reuses the engine's own restart path literally -- the standby
``crash()``s and ``recover()``s, replaying the shipped log through the
same ARIES redo/undo code a restarted primary would run -- then the
fleet resolves the promoted shard's in-doubt branches against the
fleet-wide DECISION union and lets the coordinator finish any
transactions a participant crash left half-decided.  A standby that
disconnected (died, or missed records) is *stale* and never promoted;
the fleet falls back to restarting the failed primary in place, which
is always safe because the primary's own log is durable.

Availability is modelled, not wall-clock: promotion marks the shard
down until ``detection + replayed_records / replay_rate``, and every
statement arriving before that point raises a retryable
:class:`~repro.engine.errors.ShardUnavailableError` -- so the client's
retry/backoff stack (which advances the same virtual clock) governs
the outage end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.plan import FaultKind
from repro.engine.database import Database
from repro.engine.errors import EngineError, ShardUnavailableError
from repro.engine.recovery import RecoveryReport
from repro.ha.lease import LeaderLease, LeaseConfig, VirtualClock
from repro.ha.replication import WalShipper, bootstrap_standby
from repro.shard.fleet import FleetRecoveryReport, ShardedDatabase


@dataclass
class HAShard:
    """The replication group serving one shard."""

    shard_id: int
    primary: Database
    standby: Optional[Database]
    shipper: Optional[WalShipper]
    lease: LeaderLease
    #: bumped on every promotion (a fencing token in a real system)
    epoch: int = 1
    #: modelled end of the current unavailability window (None = up)
    down_until: Optional[float] = None
    failovers: int = 0
    restarts: int = 0
    resyncs: int = 0
    #: virtual time the serving primary was last killed (None = never)
    last_killed_at: Optional[float] = None
    #: completed failovers as (killed_at, detected_at, served_at)
    outages: List[tuple] = field(default_factory=list)

    @property
    def standby_fresh(self) -> bool:
        """Is the standby promotable (alive and missing nothing)?"""
        return (
            self.standby is not None
            and not self.standby.wal.is_dead
            and self.shipper is not None
            and self.shipper.is_fresh
        )


class HAFleet(ShardedDatabase):
    """A sharded fleet where every shard is a primary/standby pair."""

    def __init__(
        self,
        n_shards: int,
        lease: Optional[LeaseConfig] = None,
        ack_mode: str = "sync",
        clock: Optional[VirtualClock] = None,
        **fleet_kwargs,
    ):
        super().__init__(n_shards, **fleet_kwargs)
        self.lease_config = lease or LeaseConfig()
        self.ack_mode = ack_mode
        self.clock = clock or VirtualClock()
        self.groups: Dict[int, HAShard] = {}
        # Every statement routed into an outage window counts one
        # rejection, so resolve the counter once instead of per call.
        self._c_rejected = (
            self.obs.metrics.counter("ha.stmt.rejected")
            if self.obs.enabled
            else None
        )

    # -- replication lifecycle ----------------------------------------------

    def start_replication(self) -> None:
        """Bootstrap a standby for every shard and begin shipping.

        Call once the schema is created and the base data loaded: the
        bootstrap is a base backup, so everything before it travels by
        copy and everything after by log shipping.
        """
        if self.groups:
            raise EngineError("replication already started")
        for shard_id, primary in enumerate(self.shards):
            standby = bootstrap_standby(primary, observer=self.obs)
            shipper = WalShipper(
                primary, standby, mode=self.ack_mode, observer=self.obs
            )
            self.groups[shard_id] = HAShard(
                shard_id=shard_id,
                primary=primary,
                standby=standby,
                shipper=shipper,
                lease=LeaderLease(self.lease_config, now=self.clock.now),
            )
        if self.obs.enabled:
            self.obs.count("ha.replication_started")

    def resync(self, shard_id: int) -> None:
        """Re-seed a shard's standby from its current primary.

        The recovery path after any event that left the standby stale
        (standby death, divergence, a promotion that consumed it).
        Requires a quiesced primary -- a base backup is a checkpoint.
        """
        group = self._group(shard_id)
        if group.shipper is not None:
            group.shipper.detach()
        primary = self.shards[shard_id]
        group.primary = primary
        group.standby = bootstrap_standby(primary, observer=self.obs)
        group.shipper = WalShipper(
            primary, group.standby, mode=self.ack_mode, observer=self.obs
        )
        group.resyncs += 1
        if self.obs.enabled:
            self.obs.count("ha.resyncs")

    def _group(self, shard_id: int) -> HAShard:
        try:
            return self.groups[shard_id]
        except KeyError:
            raise EngineError(
                f"shard {shard_id} has no replication group; "
                "call start_replication() first"
            ) from None

    # -- fault entry points --------------------------------------------------

    def kill_primary(self, shard_id: int) -> None:
        """Take a shard's serving primary down (process kill)."""
        primary = self.shards[shard_id]
        if not primary.wal.is_dead:
            primary.wal.kill()
            group = self.groups.get(shard_id)
            if group is not None:
                group.last_killed_at = self.clock.now
        if self.obs.enabled:
            self.obs.count("ha.primary_killed")

    def kill_standby(self, shard_id: int) -> None:
        """Take a shard's standby down; the primary keeps serving."""
        group = self._group(shard_id)
        if group.standby is not None and not group.standby.wal.is_dead:
            group.standby.wal.kill()
        if self.obs.enabled:
            self.obs.count("ha.standby_killed")

    # -- failure detection and failover --------------------------------------

    def advance(self, delta_s: float) -> None:
        """Move virtual time forward and run the failure detector."""
        self.clock.advance(delta_s)
        self.poll()

    def poll(self) -> None:
        """One detector pass: consume due chaos kills, renew leases of
        live primaries, fail over the ones whose lease expired dead."""
        now = self.clock.now
        for shard_id in sorted(self.groups):
            group = self.groups[shard_id]
            self._consume_chaos(shard_id, group, now)
            if not self.shards[shard_id].wal.is_dead:
                group.lease.renew(now)
            elif group.lease.expired(now):
                self._fail_over(shard_id, group, now)

    def _consume_chaos(self, shard_id: int, group: HAShard, now: float) -> None:
        if self.chaos is None:
            return
        target = f"shard:{shard_id}"
        if self.chaos.take_node_crash(FaultKind.PRIMARY_CRASH, target, now):
            self.kill_primary(shard_id)
        if self.chaos.take_node_crash(FaultKind.REPLICA_CRASH, target, now):
            self.kill_standby(shard_id)

    def _fail_over(self, shard_id: int, group: HAShard, now: float) -> None:
        """The dead primary's lease expired: promote or restart."""
        promoted = group.standby_fresh
        with self.obs.span("failover", "ha", track="ha"):
            if promoted:
                report = self._promote(shard_id, group)
            else:
                report = self._restart_primary(shard_id, group)
            self._resolve_in_doubt([report], [shard_id])
            self.coordinator.finish_dangling()
        replay_s = self.lease_config.replay_s(report.records_scanned)
        served_at = now + replay_s
        group.down_until = served_at
        group.lease.renew(served_at)
        killed_at = group.last_killed_at if group.last_killed_at is not None else now
        group.outages.append((killed_at, now, served_at))
        if self.obs.enabled:
            # The outage anatomy, laid down on the *virtual* timeline.
            # The whole failover decision runs inside one poll() call,
            # so the wall-clock "failover" span above only shows the
            # promotion compute; these complete-spans reconstruct the
            # phases a client actually waits through -- kill, lease
            # expiry (detection), promote/restart decision, modelled
            # log replay, first served statement.
            attrs = {"shard": shard_id, "epoch": group.epoch}
            self.obs.event(
                "failover.lease_expired", "ha", ts=now, track="ha", attrs=attrs
            )
            if killed_at < now:
                self.obs.complete(
                    "failover.detect", "ha", killed_at, now,
                    track="ha", attrs=attrs,
                )
            self.obs.event(
                "failover.promoted" if promoted else "failover.restarted",
                "ha", ts=now, track="ha",
                attrs={**attrs, "records_scanned": report.records_scanned},
            )
            if replay_s > 0.0:
                self.obs.complete(
                    "failover.replay", "ha", now, served_at,
                    track="ha", attrs={**attrs, "replay_s": replay_s},
                )
            self.obs.event(
                "failover.served", "ha", ts=served_at, track="ha", attrs=attrs
            )
            self.obs.event(
                "failover.complete", "ha", track="ha",
                attrs={
                    "shard": shard_id, "epoch": group.epoch,
                    "replay_s": replay_s, "promoted": promoted,
                },
            )

    def _promote(self, shard_id: int, group: HAShard) -> RecoveryReport:
        """Make the standby the serving primary.

        Literally the engine restart path: the standby drops volatile
        state and replays its (shipped) log, which by the shipping
        invariant contains every acked record of the old primary.
        """
        group.shipper.detach()
        standby = group.standby
        standby.crash()
        report = standby.recover()
        # The coordinator holds its own reference to the shard list.
        self.shards[shard_id] = standby
        self.coordinator.shards[shard_id] = standby
        group.primary = standby
        group.standby = None
        group.shipper = None
        group.epoch += 1
        group.failovers += 1
        if self.obs.enabled:
            self.obs.count("failover.promotions")
        return report

    def _restart_primary(self, shard_id: int, group: HAShard) -> RecoveryReport:
        """No promotable standby: restart the primary on its own log.

        Always safe -- the primary's durable log is authoritative -- at
        the price of a longer outage (a real restart, not a warm
        takeover).  The standby stays stale; :meth:`resync` re-seeds it.
        """
        report = self._recover_shard(shard_id)
        group.epoch += 1
        group.restarts += 1
        if self.obs.enabled:
            self.obs.count("failover.restarts")
        return report

    # -- statement gating ----------------------------------------------------

    def _shard_db(self, shard_id: int) -> Database:
        group = self.groups.get(shard_id)
        if group is not None and group.down_until is not None:
            if self.clock.now < group.down_until:
                if self._c_rejected is not None:
                    self._c_rejected.inc()
                raise ShardUnavailableError(
                    f"shard {shard_id} is failing over "
                    f"(epoch {group.epoch}, up at t={group.down_until:.3f}s)",
                    shard_id=shard_id,
                )
            group.down_until = None
        return self.shards[shard_id]

    # -- fleet recovery ------------------------------------------------------

    def recover(self, failover: bool = False) -> FleetRecoveryReport:
        """Fleet recovery, optionally promoting instead of restarting.

        With ``failover=False`` this is the base fleet behaviour: every
        shard restarts in place on its own durable log.  With
        ``failover=True`` a dead primary with a fresh standby is
        *promoted* instead -- the crash matrix uses this to prove the
        replica path preserves every acked commit.  Either way the pass
        ends with fleet-wide in-doubt resolution and the coordinator's
        dangling transactions settled, and it stays idempotent.
        """
        reports: List[RecoveryReport] = []
        for shard_id in range(self.n_shards):
            group = self.groups.get(shard_id)
            if (
                failover
                and group is not None
                and self.shards[shard_id].wal.is_dead
                and group.standby_fresh
            ):
                reports.append(self._promote(shard_id, group))
            else:
                reports.append(self._recover_shard(shard_id))
        fleet_report = self._resolve_in_doubt(reports)
        self.coordinator.finish_dangling()
        for group in self.groups.values():
            group.down_until = None
            group.lease.renew(self.clock.now)
        return fleet_report

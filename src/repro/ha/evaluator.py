"""The R-Score: availability delivered through an automated failover.

The evaluator builds an :class:`~repro.ha.cluster.HAFleet`, drives the
PAIRS workload through a :class:`~repro.core.resilience.ResilientSession`
sharing the fleet's virtual clock, and kills one shard's primary
mid-run via a chaos :class:`~repro.chaos.plan.FaultPlan`.  Because the
session's ``advance`` callback is :meth:`HAFleet.advance`, every retry
backoff moves virtual time forward *and* runs the failure detector --
the client's own patience is what lets the lease expire and the
promotion happen, exactly as in a real deployment.

Scoring::

    availability = acked client calls / attempted client calls
    R            = availability   if the history checker finds zero
                                  violations (and the final state is
                                  clean), else 0.0

A system that stays up by fracturing pairs scores zero: availability
bought with broken consistency is not availability.  The unavailability
window is also measured (kill -> detection -> serving again) and must
sit under the analytic bound ``lease + replay + backoff slack``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.core.resilience import AttemptResult, ResilientSession, RetryPolicy
from repro.engine.errors import EngineError
from repro.ha.cluster import HAFleet
from repro.ha.history import HistoryChecker, Violation
from repro.ha.lease import LeaseConfig, VirtualClock
from repro.ha.workload import PairWorkload, build_pairs_fleet
from repro.obs import NULL_OBSERVER, Observer
from repro.obs.metrics import Histogram
from repro.sim.rng import RngRegistry, derive_seed

#: modelled service time of one client operation (virtual seconds)
OP_LATENCY_S = 0.004


@dataclass
class HAResult:
    """One HA run: traffic through a primary kill, checked end to end."""

    ack_mode: str
    txns: int
    acked: int
    failed: int
    reads_attempted: int
    reads_ok: int
    failovers: int
    restarts: int
    #: (killed_at, detected_at, served_at) per completed failover
    outages: List[Tuple[float, float, float]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    duration_s: float = 0.0
    kill_at_s: float = 0.0
    #: analytic ceiling on the outage: lease + replay + backoff slack
    bound_s: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    #: per transfer call: (virtual start time, acked) -- the raw series
    #: the failover bench derives pre-kill vs post-recovery TPS from
    transfer_log: List[Tuple[float, bool]] = field(default_factory=list)
    #: arrival process the run was driven under
    arrival: str = "closed"
    #: CO-free sojourn percentiles in virtual ms (open arrivals only):
    #: latency measured from each transfer's *scheduled* arrival, so the
    #: failover outage shows up in the tail instead of being omitted
    openloop_latency_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return not self.violations

    @property
    def availability(self) -> float:
        if self.txns == 0:
            return 0.0
        return self.acked / self.txns

    @property
    def unavailable_s(self) -> float:
        return sum(served - killed for killed, _detected, served in self.outages)

    @property
    def r_score(self) -> float:
        """Availability, zeroed by any consistency violation."""
        return self.availability if self.consistent else 0.0

    def tps_between(self, t0: float, t1: float) -> float:
        """Acked transfers per virtual second over ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        acked = sum(1 for t, ok in self.transfer_log if ok and t0 <= t < t1)
        return acked / (t1 - t0)

    @property
    def pre_kill_tps(self) -> float:
        return self.tps_between(0.0, self.kill_at_s)

    @property
    def post_recovery_tps(self) -> float:
        """Steady-state throughput after service resumed.

        Measured from the first acked transfer at or past the promoted
        shard's ``served_at`` -- the straddling retry call's final
        backoff can overshoot the recovery point, and that slack is the
        outage's tail, not the recovered rate.
        """
        if not self.outages:
            return self.tps_between(self.kill_at_s, self.duration_s)
        served_at = max(served for _k, _d, served in self.outages)
        first_acked = min(
            (t for t, ok in self.transfer_log if ok and t >= served_at),
            default=served_at,
        )
        return self.tps_between(first_acked, self.duration_s)

    def describe(self) -> List[str]:
        lines = [
            f"ack={self.ack_mode} txns={self.txns} acked={self.acked} "
            f"availability={self.availability:.4f}",
            f"failovers={self.failovers} restarts={self.restarts} "
            f"unavailable={self.unavailable_s * 1000:.1f}ms "
            f"(bound {self.bound_s * 1000:.1f}ms)",
            f"violations={len(self.violations)} R={self.r_score:.4f}",
        ]
        lines.extend(str(violation) for violation in self.violations)
        return lines


class HAEvaluator:
    """Drive the PAIRS workload through a mid-run primary kill."""

    def __init__(
        self,
        n_shards: int = 2,
        txns: int = 240,
        n_pairs: int = 6,
        ack_mode: str = "sync",
        lease: Optional[LeaseConfig] = None,
        kill_at_s: Optional[float] = None,
        victim: int = 0,
        seed: int = 42,
        observer: Optional[Observer] = None,
        arrival: str = "closed",
    ):
        from repro.perf.openloop import parse_arrival

        self.n_shards = n_shards
        self.txns = txns
        self.n_pairs = n_pairs
        self.ack_mode = ack_mode
        self.arrival = parse_arrival(arrival)
        self.lease = lease or LeaseConfig()
        # By default the kill lands ~40% into the projected run, so there
        # is a solid steady-state window on both sides of the outage.
        est_duration = txns * 2 * OP_LATENCY_S
        self.kill_at_s = 0.4 * est_duration if kill_at_s is None else kill_at_s
        self.victim = victim
        self.seed = seed
        self.obs = observer or NULL_OBSERVER

    def run(self) -> HAResult:
        clock = VirtualClock()
        plan = FaultPlan(
            specs=(FaultSpec(
                kind=FaultKind.PRIMARY_CRASH,
                target=f"shard:{self.victim}",
                start_s=self.kill_at_s,
                duration_s=0.0,
            ),),
            seed=self.seed,
            name="ha-primary-kill",
        )
        fleet, pairs = build_pairs_fleet(
            n_shards=self.n_shards,
            n_pairs=self.n_pairs,
            fleet_cls=HAFleet,
            lease=self.lease,
            ack_mode=self.ack_mode,
            clock=clock,
            chaos=ChaosInjector(plan, observer=self.obs),
            observer=self.obs,
            name="ha-eval",
        )
        fleet.start_replication()
        workload = PairWorkload(
            fleet, pairs,
            seed=derive_seed(self.seed, f"ha.eval.{self.ack_mode}"),
            reraise_unavailable=True,
        )
        # Backoffs sized to the detector: the retry schedule of a single
        # call comfortably covers lease expiry plus promotion replay.
        policy = RetryPolicy(
            max_attempts=6,
            base_backoff_s=self.lease.heartbeat_s,
            multiplier=2.0,
            max_backoff_s=self.lease.lease_s,
            jitter=0.2,
        )
        session = ResilientSession(
            ["fleet"],
            policy=policy,
            clock=clock,
            rng=RngRegistry(derive_seed(self.seed, "ha.session")).stream("backoff"),
            breaker_reset_s=self.lease.lease_s,
            observer=self.obs,
            advance=fleet.advance,
        )

        # Open arrivals: transfers are due at seeded virtual instants.
        # The client advances the clock to the next arrival when idle,
        # but when a call overruns (retrying through the outage) the
        # following arrivals are already due and their sojourn includes
        # the wait -- this is open-loop in virtual time, not a replay.
        schedule: Optional[List[float]] = None
        sojourn: Optional[Histogram] = None
        if self.arrival.is_open:
            from repro.perf.openloop import arrival_offsets

            rate = self.arrival.rate or 1.0 / (2.0 * OP_LATENCY_S)
            schedule = arrival_offsets(
                self.arrival, rate, self.txns,
                RngRegistry(
                    derive_seed(self.seed, "ha.eval.arrival")
                ).stream(self.arrival.kind),
            )
            sojourn = Histogram("ha.openloop.latency_s")

        acked = failed = reads_attempted = reads_ok = 0
        transfer_log: List[Tuple[float, bool]] = []
        for i in range(self.txns):
            if schedule is not None:
                scheduled = schedule[i]
                if clock.now < scheduled:
                    fleet.advance(scheduled - clock.now)
            started_at = clock.now
            outcome = session.call(self._attempt(fleet, workload.transfer))
            call_acked = bool(outcome.ok and outcome.value)
            transfer_log.append((started_at, call_acked))
            if sojourn is not None:
                latency = clock.now - schedule[i]
                sojourn.observe(latency)
                if self.obs.enabled:
                    self.obs.observe("ha.openloop.latency_s", latency)
            if call_acked:
                acked += 1
            else:
                failed += 1
            if i % 2 == 0:
                reads_attempted += 1
                read = session.call(self._attempt(fleet, workload.read))
                if read.ok and read.value is not None:
                    reads_ok += 1

        # Let any in-flight unavailability window lapse, then check the
        # final state with plain auto-commit reads.
        for group in fleet.groups.values():
            if group.down_until is not None and clock.now < group.down_until:
                fleet.advance(group.down_until - clock.now + 1e-9)
        report = HistoryChecker().check(workload.history, workload.final_stamps())

        result = HAResult(
            ack_mode=self.ack_mode,
            txns=self.txns,
            acked=acked,
            failed=failed,
            reads_attempted=reads_attempted,
            reads_ok=reads_ok,
            failovers=sum(g.failovers for g in fleet.groups.values()),
            restarts=sum(g.restarts for g in fleet.groups.values()),
            outages=[g_outage for g in fleet.groups.values() for g_outage in g.outages],
            violations=list(report.violations),
            duration_s=clock.now,
            kill_at_s=self.kill_at_s,
            counts=workload.history.counts(),
            transfer_log=transfer_log,
            arrival=self.arrival.describe(),
            openloop_latency_ms=(
                {
                    "p50": sojourn.percentile(50.0) * 1000.0,
                    "p95": sojourn.percentile(95.0) * 1000.0,
                    "p99": sojourn.percentile(99.0) * 1000.0,
                    "p999": sojourn.percentile(99.9) * 1000.0,
                }
                if sojourn is not None and sojourn.count
                else {}
            ),
        )
        replay_s = max(
            (served - detected for _k, detected, served in result.outages),
            default=0.0,
        )
        result.bound_s = (
            self.lease.lease_s
            + replay_s
            + 2 * policy.max_backoff_s * (1 + policy.jitter)
        )
        if self.obs.enabled:
            self.obs.count("ha.eval.runs")
        return result

    @staticmethod
    def _attempt(
        fleet: HAFleet, op: Callable[[], object]
    ) -> Callable[[str], AttemptResult]:
        """Wrap a workload op as a latency-modelled session attempt."""
        def attempt(_endpoint: str) -> AttemptResult:
            # Poll first so a chaos kill due at the current virtual time
            # fires before the op, never in the middle of its 2PC.
            fleet.poll()
            try:
                value = op()
            except EngineError as error:
                error.latency_s = OP_LATENCY_S  # failed attempts cost time too
                raise
            return AttemptResult(ok=True, value=value, latency_s=OP_LATENCY_S)
        return attempt

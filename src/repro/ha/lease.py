"""Virtual time and lease-based leadership for HA shard pairs.

Failure detection here is deliberately boring: the primary holds a
time-bounded lease and renews it on a heartbeat cadence; a primary that
stops renewing (because its WAL is dead) is declared failed the first
time anyone looks *after* the lease expired.  Everything runs against a
shared :class:`VirtualClock`, so the detection delay -- and therefore
the unavailability window the failover bench asserts on -- is an exact,
reproducible function of the lease parameters, never of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass


class VirtualClock:
    """A manually advanced clock shared by every HA component.

    The client session advances it by modelled latencies and retry
    backoffs (see ``ResilientSession``'s ``advance`` hook), the fleet
    reads it for lease renewal and expiry.  Callable so it can slot in
    anywhere a ``clock()`` function is expected.
    """

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, delta_s: float) -> None:
        if delta_s < 0:
            raise ValueError(f"time cannot run backwards: {delta_s}")
        self.now += delta_s


@dataclass(frozen=True)
class LeaseConfig:
    """Tunables of the failure detector and the promotion time model.

    ``lease_s`` bounds detection delay: a dead primary is declared
    failed at most one lease after its last renewal.  ``heartbeat_s``
    is the renewal cadence (must leave slack below the lease).
    ``replay_rate_records_s`` converts the log suffix a promoted
    standby replays into modelled seconds of promotion time; together
    these bound the unavailability window:
    ``lease_s + replayed_records / replay_rate_records_s``.
    """

    lease_s: float = 0.5
    heartbeat_s: float = 0.1
    replay_rate_records_s: float = 50_000.0

    def __post_init__(self) -> None:
        if self.lease_s <= 0 or self.heartbeat_s <= 0:
            raise ValueError("lease_s and heartbeat_s must be positive")
        if self.heartbeat_s >= self.lease_s:
            raise ValueError(
                f"heartbeat ({self.heartbeat_s}s) must renew faster than the "
                f"lease expires ({self.lease_s}s)"
            )
        if self.replay_rate_records_s <= 0:
            raise ValueError("replay_rate_records_s must be positive")

    def replay_s(self, records: int) -> float:
        """Modelled time to replay ``records`` log records at promotion."""
        return max(0, records) / self.replay_rate_records_s


class LeaderLease:
    """The primary's time-bounded claim to leadership of one shard."""

    def __init__(self, config: LeaseConfig, now: float = 0.0):
        self.config = config
        self.renewed_at = now
        self.expires_at = now + config.lease_s
        self.renewals = 0

    def renew(self, now: float) -> bool:
        """Heartbeat: extend the lease if the cadence is due.

        Renewals more frequent than ``heartbeat_s`` are coalesced, so
        the detection delay stays a function of the configuration, not
        of how often the fleet happens to be polled.
        """
        if now - self.renewed_at < self.config.heartbeat_s and self.renewals > 0:
            return False
        self.renewed_at = now
        self.expires_at = now + self.config.lease_s
        self.renewals += 1
        return True

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

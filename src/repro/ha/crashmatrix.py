"""The crash-schedule sweep: every 2PC phase x fault target x failover.

One *cell* of the matrix builds a fresh two-shard HA fleet, warms the
PAIRS workload up, arms exactly one fault at one 2PC phase boundary --

* ``coordinator`` -- the coordinator process dies at the boundary
  (:meth:`~repro.shard.coordinator.TxnCoordinator.arm_crash`);
* ``participant`` -- a shard primary's WAL is killed at the boundary
  (:meth:`~repro.shard.coordinator.TxnCoordinator.arm_action`);
* ``replica`` -- a shard's *standby* is killed at the boundary, so
  replication breaks mid-protocol while the primary keeps serving --

then drives transfers until the fault fires, recovers the fleet either
in place (``failover=False``) or by promoting standbys over dead
primaries (``failover=True``), drives more traffic to prove liveness,
and hands the full operation history plus the final recovered state to
the :class:`~repro.ha.history.HistoryChecker`.  The acceptance bar is
*zero* violations over the whole sweep, and a byte-identical
fingerprint for a given ``--seed``.

The participant victim alternates with the failover dimension so both
protocol orders are swept: killing shard 0 (first in prepare *and*
decision order) exercises the dangling/blocking window, killing
shard 1 exercises prepare-stage aborts and survivor-side commits.

Run as a module for the CI smoke job::

    python -m repro.ha.crashmatrix --quick --seed 7
"""

from __future__ import annotations

import argparse
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.errors import SimulatedCrash
from repro.ha.cluster import HAFleet
from repro.ha.history import HistoryChecker, Violation
from repro.ha.workload import PairWorkload, build_pairs_fleet
from repro.shard.coordinator import PHASES
from repro.sim.rng import derive_seed

TARGETS = ("coordinator", "participant", "replica")


@dataclass
class CellResult:
    """One (phase, target, failover) cell's outcome."""

    phase: str
    target: str
    failover: bool
    ack_mode: str
    violations: List[Violation] = field(default_factory=list)
    fault_fired: bool = False
    #: acked transfers / reads after recovery (liveness evidence)
    post_transfers: int = 0
    post_reads: int = 0
    ops: int = 0

    @property
    def label(self) -> str:
        mode = "failover" if self.failover else "restart"
        return f"{self.phase:<14s} {self.target:<11s} {mode:<8s} {self.ack_mode}"

    @property
    def passed(self) -> bool:
        return (
            not self.violations
            and self.fault_fired
            and self.post_transfers > 0
            and self.post_reads > 0
        )


@dataclass
class MatrixResult:
    """The whole sweep."""

    seed: int
    cells: List[CellResult] = field(default_factory=list)

    @property
    def violations(self) -> List[Violation]:
        return [violation for cell in self.cells for violation in cell.violations]

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    def fingerprint(self) -> str:
        """SHA-256 over every cell's outcome -- the determinism contract."""
        digest = hashlib.sha256()
        digest.update(f"seed={self.seed}".encode())
        for cell in self.cells:
            digest.update(cell.label.encode())
            digest.update(
                f"|fired={cell.fault_fired}|t={cell.post_transfers}"
                f"|r={cell.post_reads}|ops={cell.ops}"
                f"|v={len(cell.violations)}".encode()
            )
        return digest.hexdigest()

    def describe(self) -> List[str]:
        lines = [
            f"{cell.label}  ops={cell.ops:<4d} "
            f"post={cell.post_transfers}/{cell.post_reads}  "
            f"{'ok' if cell.passed else 'FAIL'}"
            for cell in self.cells
        ]
        lines.append(
            f"{len(self.cells)} cells, {len(self.violations)} violations, "
            f"fingerprint {self.fingerprint()[:16]}"
        )
        lines.extend(str(violation) for violation in self.violations)
        return lines


def run_cell(
    phase: str,
    target: str,
    failover: bool,
    seed: int = 7,
    ack_mode: str = "sync",
    n_pairs: int = 3,
    warmup: int = 3,
    post: int = 4,
) -> CellResult:
    """Run one cell of the matrix on a fresh fleet."""
    if phase not in PHASES:
        raise ValueError(f"unknown phase {phase!r}")
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r}")
    cell = CellResult(phase=phase, target=target, failover=failover, ack_mode=ack_mode)
    label = f"{phase}.{target}.{failover}.{ack_mode}"
    fleet, pairs = build_pairs_fleet(
        n_shards=2, n_pairs=n_pairs, fleet_cls=HAFleet,
        ack_mode=ack_mode, name=f"matrix-{target}",
    )
    fleet.start_replication()
    workload = PairWorkload(fleet, pairs, seed=derive_seed(seed, label))
    for _ in range(warmup):
        workload.transfer()
        workload.read()

    coordinator = fleet.coordinator
    victim = 0 if failover else 1
    if target == "coordinator":
        victim = 1
        coordinator.arm_crash(phase)
    elif target == "participant":
        coordinator.arm_action(phase, lambda: fleet.kill_primary(victim))
    else:
        coordinator.arm_action(phase, lambda: fleet.kill_standby(victim))

    # Every transfer is cross-shard, so the first commit walks all seven
    # boundaries; the loop only spins if an unrelated retryable abort
    # got in first.
    for _ in range(8 * n_pairs):
        try:
            workload.transfer()
        except SimulatedCrash:
            pass
        if not coordinator.armed:
            cell.fault_fired = True
            break

    # Degraded window: routed statements against the broken fleet must
    # fail *cleanly* (retryable), never leak an engine crash exception.
    for _ in range(2):
        workload.read()

    if target == "replica":
        # The primary never stopped serving; prove it, then re-seed the
        # standby so it is promotable again.
        workload.transfer()
        fleet.resync(victim)
    if failover and target != "participant":
        # The participant cells killed a primary already; the other two
        # need one dead for the failover dimension to mean anything.
        fleet.kill_primary(victim)

    fleet.recover(failover=failover)

    for _ in range(post):
        cell.post_transfers += 1 if workload.transfer() else 0
        cell.post_reads += 1 if workload.read() is not None else 0

    report = HistoryChecker().check(workload.history, workload.final_stamps())
    cell.violations = list(report.violations)
    cell.ops = len(workload.history)
    if not cell.fault_fired:
        cell.violations.append(Violation(
            "fault_not_fired",
            f"armed {target} fault at {phase} never consumed",
        ))
    return cell


def run_matrix(
    seed: int = 7,
    quick: bool = False,
    ack_mode: Optional[str] = None,
) -> MatrixResult:
    """Sweep all 7 phases x 3 targets (x 2 failover modes unless quick).

    ``ack_mode`` pins replication to one mode; by default cells
    alternate sync / semisync deterministically so both ship paths are
    in every sweep.
    """
    result = MatrixResult(seed=seed)
    failover_modes = (True,) if quick else (False, True)
    index = 0
    for phase in PHASES:
        for target in TARGETS:
            for failover in failover_modes:
                mode = ack_mode or ("semisync" if index % 2 else "sync")
                result.cells.append(run_cell(
                    phase, target, failover, seed=seed, ack_mode=mode,
                ))
                index += 1
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="HA crash-schedule sweep (zero tolerated violations)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick", action="store_true",
        help="failover cells only (21 instead of 42)",
    )
    parser.add_argument(
        "--ack-mode", choices=("sync", "semisync"), default=None,
        help="pin one replication mode (default: alternate both)",
    )
    args = parser.parse_args(argv)
    result = run_matrix(seed=args.seed, quick=args.quick, ack_mode=args.ack_mode)
    for line in result.describe():
        print(line)
    return 0 if result.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""The PAIRS workload: cross-shard transfers built to be checkable.

Each *pair* is two rows placed on **different** shards.  A transfer
opens a SERIALIZABLE global transaction and writes the same, strictly
increasing version into both rows -- so it always runs full cross-shard
2PC, and any interleaving or crash that breaks atomicity shows up as
two rows of one pair disagreeing.  A read opens a SERIALIZABLE global
transaction, reads both rows, and rolls back (releasing its S locks
without paying a 2PC commit); under strict 2PL it can never observe a
fractured pair unless the protocol is broken -- which is exactly what
the :class:`~repro.ha.history.HistoryChecker` looks for.

Outcome classification is the part that matters for the checker's
soundness:

* an abort *before* ``commit()`` was called, or a retryable error out
  of the commit path that the coordinator turned into a clean abort
  (``ShardUnavailableError`` during prepare: presumed abort holds), is
  recorded as ``fail`` -- the transfer definitely did not happen;
* a :class:`~repro.engine.errors.SimulatedCrash` escaping a commit that
  had started is recorded as ``info`` -- the decision may or may not be
  durable somewhere, and recovery decides;
* everything acked is ``ok``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.core.client import Client, FleetClient
from repro.engine.errors import EngineError, ShardUnavailableError, SimulatedCrash
from repro.engine.txn import IsolationLevel
from repro.engine.types import Column, ColumnType, Schema
from repro.ha.history import History
from repro.shard.fleet import ShardedDatabase
from repro.shard.router import stable_hash
from repro.sim.rng import RngRegistry

UPDATE_STAMP = "UPDATE PAIRS SET P_STAMP = ? WHERE P_ID = ?"
SELECT_STAMP = "SELECT P_STAMP FROM PAIRS WHERE P_ID = ?"


def pairs_schema() -> Schema:
    return Schema(
        table="PAIRS",
        columns=(
            Column("P_ID", ColumnType.INT, nullable=False),
            Column("P_STAMP", ColumnType.INT, nullable=False, default=0),
        ),
        primary_key="P_ID",
    )


def place_pairs(n_shards: int, n_pairs: int) -> List[Tuple[int, int]]:
    """Pick row ids so the two rows of pair ``k`` land on shards
    ``k % n`` and ``(k + 1) % n`` -- every transfer is cross-shard."""
    if n_shards < 2:
        raise ValueError("the PAIRS workload needs at least two shards")
    by_shard: Dict[int, List[int]] = {shard: [] for shard in range(n_shards)}
    candidate = 1
    while any(len(ids) < 2 * n_pairs for ids in by_shard.values()):
        by_shard[stable_hash(candidate) % n_shards].append(candidate)
        candidate += 1
    return [
        (by_shard[k % n_shards][k // n_shards],
         by_shard[(k + 1) % n_shards][k // n_shards + n_pairs])
        for k in range(n_pairs)
    ]


def build_pairs_fleet(
    n_shards: int = 2,
    n_pairs: int = 4,
    fleet_cls: Type[ShardedDatabase] = ShardedDatabase,
    **fleet_kwargs,
) -> Tuple[ShardedDatabase, List[Tuple[int, int]]]:
    """A fleet (plain or HA) loaded with ``n_pairs`` zero-stamped pairs."""
    fleet = fleet_cls(n_shards, **fleet_kwargs)
    fleet.create_table(pairs_schema())
    pairs = place_pairs(n_shards, n_pairs)
    for row_a, row_b in pairs:
        for row_id in (row_a, row_b):
            fleet.execute("INSERT INTO PAIRS (P_ID, P_STAMP) VALUES (?, 0)", [row_id])
    return fleet, pairs


class PairWorkload:
    """Drives transfers and reads over the pairs, recording a history."""

    def __init__(
        self,
        fleet: ShardedDatabase,
        pairs: List[Tuple[int, int]],
        history: Optional[History] = None,
        seed: int = 42,
        n_workers: int = 4,
        reraise_unavailable: bool = False,
        client: Optional[Client] = None,
    ):
        if not pairs:
            raise ValueError("need at least one pair")
        self.fleet = fleet
        self.client: Client = client if client is not None else FleetClient(fleet)
        self.client.connect()
        self.pairs = pairs
        self.history = history if history is not None else History()
        self.n_workers = max(1, n_workers)
        #: re-raise ShardUnavailableError after recording the clean
        #: abort, so a retrying client session can drive the failover
        #: (the crash matrix instead swallows it and moves on)
        self.reraise_unavailable = reraise_unavailable
        self._rng = RngRegistry(seed).stream("ha.pairs")
        self._next_worker = 0
        #: pair index -> last issued version (strictly increasing; an
        #: aborted version is burned, never reissued)
        self._versions: Dict[int, int] = {k: 0 for k in range(len(pairs))}

    def _pick_worker(self) -> int:
        worker = self._next_worker
        self._next_worker = (self._next_worker + 1) % self.n_workers
        return worker

    # -- operations ----------------------------------------------------------

    def transfer(self, worker: Optional[int] = None) -> bool:
        """One cross-shard stamp write; True iff the commit was acked.

        Re-raises :class:`SimulatedCrash` (after recording the unknown
        outcome) -- a crash point fired and the caller owns failover.
        """
        if worker is None:
            worker = self._pick_worker()
        pair = self._rng.randrange(len(self.pairs))
        row_a, row_b = self.pairs[pair]
        self._versions[pair] += 1
        version = self._versions[pair]
        self.history.invoke(worker, "transfer", pair, version=version)
        commit_started = False
        client = self.client
        client.begin(isolation=IsolationLevel.SERIALIZABLE)
        gtid = client.gtid
        try:
            client.execute(UPDATE_STAMP, [version, row_a])
            client.execute(UPDATE_STAMP, [version, row_b])
            commit_started = True
            client.commit()
        except ShardUnavailableError:
            # The coordinator survived and aborted everything (prepare-
            # stage participant death, or a statement hit a dead shard):
            # presumed abort guarantees this transfer never happened.
            self._quiet_rollback(client)
            self.history.fail(worker, "transfer", pair, version=version)
            if self.reraise_unavailable:
                raise
            return False
        except SimulatedCrash:
            # A crash point fired mid-protocol.  If the commit had
            # started the outcome is genuinely unknown until recovery:
            # leave the branches exactly as the protocol left them and
            # only drop the client's affinity.
            if commit_started:
                client.abandon()
                self.history.info(
                    worker, "transfer", pair, version=version, gtid=gtid
                )
            else:
                self._quiet_rollback(client)
                self.history.fail(worker, "transfer", pair, version=version)
            raise
        except EngineError as error:
            if not error.retryable:
                raise
            self._quiet_rollback(client)
            self.history.fail(worker, "transfer", pair, version=version)
            return False
        self.history.ok(worker, "transfer", pair, version=version, gtid=gtid)
        return True

    def read(self, worker: Optional[int] = None) -> Optional[Tuple[int, int]]:
        """Read both rows of one pair inside a SERIALIZABLE transaction.

        Returns the observed stamps, or None when the read could not
        run (lock conflict with an in-doubt transfer, shard down).
        """
        if worker is None:
            worker = self._pick_worker()
        pair = self._rng.randrange(len(self.pairs))
        row_a, row_b = self.pairs[pair]
        self.history.invoke(worker, "read", pair)
        client = self.client
        client.begin(isolation=IsolationLevel.SERIALIZABLE)
        try:
            stamp_a = client.execute(SELECT_STAMP, [row_a]).rows[0][0]
            stamp_b = client.execute(SELECT_STAMP, [row_b]).rows[0][0]
        except SimulatedCrash:
            self._quiet_rollback(client)
            self.history.fail(worker, "read", pair)
            raise
        except ShardUnavailableError:
            self._quiet_rollback(client)
            self.history.fail(worker, "read", pair)
            if self.reraise_unavailable:
                raise
            return None
        except EngineError as error:
            if not error.retryable:
                raise
            self._quiet_rollback(client)
            self.history.fail(worker, "read", pair)
            return None
        # Rollback, not commit: releases the S locks without a 2PC round.
        self._quiet_rollback(client)
        self.history.ok(worker, "read", pair, observed=(stamp_a, stamp_b))
        return (stamp_a, stamp_b)

    def final_stamps(self) -> Dict[int, Tuple[int, int]]:
        """Both stamps of every pair, read after the last recovery pass."""
        out: Dict[int, Tuple[int, int]] = {}
        for pair, (row_a, row_b) in enumerate(self.pairs):
            stamp_a = self.client.execute(SELECT_STAMP, [row_a]).rows[0][0]
            stamp_b = self.client.execute(SELECT_STAMP, [row_b]).rows[0][0]
            out[pair] = (stamp_a, stamp_b)
        return out

    @staticmethod
    def _quiet_rollback(client: Client) -> None:
        if not client.in_txn:
            return
        try:
            client.rollback()
        except EngineError:
            # A branch's shard is down; recovery presumes abort anyway.
            pass
        finally:
            # a rollback the dead shard swallowed must not pin the
            # client: the next operation begins a fresh transaction
            if client.in_txn:
                client.abandon()

"""Shard-level high availability: replication, failover, verification.

The package layers availability on top of the sharded fleet:

* :mod:`repro.ha.replication` -- synchronous WAL shipping from each
  shard primary to a warm standby (``sync`` / ``semisync`` ack modes);
* :mod:`repro.ha.lease` -- virtual time and the lease-based failure
  detector bounding how long a dead primary goes unnoticed;
* :mod:`repro.ha.cluster` -- :class:`HAFleet`, which promotes a fresh
  standby through the engine's own restart path and reroutes traffic,
  surfacing a bounded window of retryable errors;
* :mod:`repro.ha.history` / :mod:`repro.ha.workload` -- a Jepsen-style
  operation history over cross-shard *pairs* plus the checker that
  proves atomicity, monotonicity, and durability of acked commits;
* :mod:`repro.ha.crashmatrix` -- the systematic sweep of every 2PC
  phase boundary x {coordinator, participant, replica} x failover mode,
  pinned to zero violations;
* :mod:`repro.ha.evaluator` -- the R-Score: availability delivered
  through a primary kill, zeroed by any consistency violation.
"""

from repro.ha.cluster import HAFleet, HAShard
from repro.ha.crashmatrix import CellResult, MatrixResult, run_cell, run_matrix
from repro.ha.evaluator import HAEvaluator, HAResult
from repro.ha.history import CheckReport, History, HistoryChecker, Op, Violation
from repro.ha.lease import LeaderLease, LeaseConfig, VirtualClock
from repro.ha.replication import ACK_MODES, WalShipper, bootstrap_standby
from repro.ha.workload import PairWorkload, build_pairs_fleet, pairs_schema, place_pairs

__all__ = [
    "HAFleet",
    "HAShard",
    "HAEvaluator",
    "HAResult",
    "CellResult",
    "MatrixResult",
    "run_cell",
    "run_matrix",
    "CheckReport",
    "History",
    "HistoryChecker",
    "Op",
    "Violation",
    "LeaderLease",
    "LeaseConfig",
    "VirtualClock",
    "ACK_MODES",
    "WalShipper",
    "bootstrap_standby",
    "PairWorkload",
    "build_pairs_fleet",
    "pairs_schema",
    "place_pairs",
]

"""Synchronous WAL shipping from a shard primary to its standby.

The primary's :attr:`~repro.engine.wal.WriteAheadLog.on_append` hook
hands every cleanly appended record to a :class:`WalShipper`, which
adopts it verbatim on the standby via
:meth:`~repro.engine.wal.WriteAheadLog.append_shipped` -- the standby's
log *is* the primary's log suffix, same LSNs and all.  Two ack modes:

* ``"sync"`` ships every record immediately, so the standby trails the
  primary by zero records;
* ``"semisync"`` buffers data records and flushes the batch at each
  fsync point (COMMIT/PREPARE/DECISION), paying one group-committed
  standby fsync per primary fsync instead of one append per record.

Either way a record is on the standby *before* the primary's append
returns -- i.e. before the commit is acknowledged -- so every acked
commit is durable on both nodes.  That is the invariant promotion
relies on and the history checker proves.

A standby death never takes the primary down: the shipper catches the
standby's crash (or an LSN-continuity break after the primary survived
a crash point the standby never saw) and *disconnects*, counting the
records the standby is now missing.  A disconnected standby is stale
and must be re-seeded with :func:`bootstrap_standby` before it is
promotable again.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.database import Database
from repro.engine.errors import EngineError, SimulatedCrash, WalCorruptionError
from repro.engine.wal import FSYNC_KINDS, LogRecord
from repro.obs import NULL_OBSERVER, Observer

#: supported replication ack modes
ACK_MODES = ("sync", "semisync")


def bootstrap_standby(
    primary: Database,
    name: Optional[str] = None,
    observer: Optional[Observer] = None,
) -> Database:
    """Seed a standby from a quiesced primary (base backup).

    Copies schema and rows, stamps the copy as a checkpoint taken at
    the primary's durable horizon, and positions the standby's pristine
    WAL so shipped records continue the primary's LSN sequence.  From
    then on ``crash() + recover()`` on the standby replays exactly the
    shipped suffix -- which is what promotion does.
    """
    if primary.txns.active:
        raise EngineError("standby bootstrap requires a quiesced primary")
    standby = primary.clone_schema(
        name or f"{primary.name}-standby", observer=observer
    )
    for table_name in primary.table_names:
        target = standby.table(table_name)
        for _rid, row in primary.table(table_name).scan():
            target.insert_row(row)
    standby.install_checkpoint(primary.wal.last_lsn)
    return standby


class WalShipper:
    """Attaches to a primary's WAL and mirrors it onto a standby."""

    def __init__(
        self,
        primary: Database,
        standby: Database,
        mode: str = "sync",
        observer: Optional[Observer] = None,
    ):
        if mode not in ACK_MODES:
            raise ValueError(f"ack mode must be one of {ACK_MODES}, got {mode!r}")
        if primary.wal.on_append is not None:
            raise EngineError(f"{primary.name} already has a shipper attached")
        self.primary = primary
        self.standby = standby
        self.mode = mode
        self.obs = observer or NULL_OBSERVER
        # Shipping runs once per fsync batch on the primary's commit
        # path; resolve the hot counter once (disconnects stay cold).
        self._c_shipped = (
            self.obs.metrics.counter("ha.ship.records")
            if self.obs.enabled
            else None
        )
        #: False once the standby died or diverged; stays False until a
        #: fresh standby is bootstrapped (the link never self-heals)
        self.connected = True
        #: records successfully adopted by the standby
        self.shipped = 0
        #: records the standby is missing since it disconnected
        self.lost = 0
        self._buffer: List[LogRecord] = []  # semisync: pending until next fsync
        self._hook = self._on_append  # one bound method, identity-comparable
        primary.wal.on_append = self._hook

    @property
    def is_fresh(self) -> bool:
        """Does the standby hold every acked record (promotable)?"""
        return self.connected and self.lost == 0

    def detach(self) -> None:
        """Stop shipping (promotion or resync tears the link down)."""
        if self.primary.wal.on_append is self._hook:
            self.primary.wal.on_append = None
        self.connected = False

    # -- the hook ------------------------------------------------------------

    def _on_append(self, record: LogRecord) -> None:
        if not self.connected:
            self.lost += 1
            return
        if self.mode == "sync":
            self._ship([record])
            return
        self._buffer.append(record)
        if record.kind in FSYNC_KINDS:
            batch, self._buffer = self._buffer, []
            self._ship(batch)

    def _ship(self, batch: List[LogRecord]) -> None:
        shipped_of_batch = 0
        try:
            if len(batch) > 1:
                with self.standby.wal.group_commit():
                    for record in batch:
                        self.standby.wal.append_shipped(record)
                        shipped_of_batch += 1
            else:
                for record in batch:
                    self.standby.wal.append_shipped(record)
                    shipped_of_batch += 1
        except (SimulatedCrash, WalCorruptionError) as error:
            # The standby is down -- or the primary survived a crash
            # point whose durable-but-unacked record never shipped, so
            # the LSN chain broke.  Either way the standby is stale:
            # disconnect and count what it is missing.  The primary
            # must not fail because its standby did.
            self.connected = False
            self.lost += len(batch) - shipped_of_batch + len(self._buffer)
            self._buffer = []
            if self.obs.enabled:
                self.obs.count("ha.ship.disconnect")
                self.obs.event(
                    "ha.replication_broken", "ha", track="ha",
                    attrs={"standby": self.standby.name, "why": str(error)[:80]},
                )
            return
        self.shipped += shipped_of_batch
        if self._c_shipped is not None:
            self._c_shipped.inc(shipped_of_batch)

"""The fault registry: answers "what is broken right now?".

:class:`ChaosInjector` is the single source of truth every layer
consults: the replication pipeline asks whether a replica's link is
partitioned or degraded before scheduling a delivery, the replayer asks
whether the node is stalled or gray before applying, and the client's
endpoint wrappers ask whether a target is reachable before serving a
request.  All queries are pure functions of the plan and the current
(virtual) time, so a chaos run is exactly as deterministic as its
:class:`~repro.chaos.plan.FaultPlan`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.chaos.plan import (
    DR_CRASH_KINDS,
    HA_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.obs import NULL_OBSERVER, Observer

#: cap on the modelled retransmit blow-up of a lossy link
MAX_LOSS = 0.95
#: a gray node at intensity 1.0 is this many times slower
GRAY_SLOWDOWN = 10.0


class ChaosInjector:
    """Evaluates a :class:`FaultPlan` against query time-points."""

    def __init__(self, plan: FaultPlan, observer: Optional[Observer] = None):
        self.plan = plan
        self.obs = observer or NULL_OBSERVER
        #: how often each kind was observed biting (observability only)
        self.observed: Dict[str, int] = {}
        #: specs whose first bite was already traced (one marker each)
        self._bitten: Set[Tuple] = set()
        #: one-shot COORD_CRASH specs that already fired
        self._coord_fired: Set[Tuple] = set()
        #: one-shot PRIMARY_CRASH / REPLICA_CRASH specs that already fired
        self._node_fired: Set[Tuple] = set()
        #: one-shot DR specs (BACKUP/RESTORE_CRASH, ARCHIVE_CORRUPT)
        #: that already fired
        self._dr_fired: Set[Tuple] = set()
        # The scheduled fault windows are known up-front: emit them as
        # complete spans so the timeline shows fault -> degradation ->
        # recovery causality even before anything consults the injector.
        if self.obs.enabled:
            for spec in plan.specs:
                self.obs.complete(
                    spec.kind.value, "chaos", spec.start_s, spec.end_s,
                    track="chaos",
                    attrs={"target": spec.target, "intensity": spec.intensity},
                )
                self.obs.count(f"chaos.fault.{spec.kind.value}")

    def _note(self, spec: FaultSpec, now: Optional[float] = None) -> None:
        self.observed[spec.kind.value] = self.observed.get(spec.kind.value, 0) + 1
        if self.obs.enabled and now is not None:
            key = spec.canonical()
            if key not in self._bitten:
                self._bitten.add(key)
                self.obs.event(
                    "fault.bite", "chaos", ts=now, track="chaos",
                    attrs={"kind": spec.kind.value, "target": spec.target},
                )

    # -- network path to a target -------------------------------------------

    def partitioned(self, target: str, now: float) -> bool:
        """Is the path to ``target`` severed at ``now``?"""
        for kind in (FaultKind.PARTITION, FaultKind.FLAP):
            for spec in self.plan.active(now, kind=kind, target=target):
                self._note(spec, now)
                return True
        return False

    def heal_at(self, target: str, now: float) -> float:
        """End of the current unreachable window for ``target``.

        Returns ``now`` when the target is reachable.  For a flapping
        link this is the end of the current down half-period, not the
        end of the whole fault window.
        """
        heal = now
        for kind in (FaultKind.PARTITION, FaultKind.FLAP):
            for spec in self.plan.active(now, kind=kind, target=target):
                heal = max(heal, spec.heal_at(now))
        return heal

    def delay_factor(self, target: str, now: float) -> float:
        """Multiplier on network transfer time to ``target``.

        DELAY spikes multiply latency by ``1 + intensity``; LOSS models
        retransmits as the expected ``1 / (1 - p)`` send count.
        """
        factor = 1.0
        for spec in self.plan.active(now, kind=FaultKind.DELAY, target=target):
            self._note(spec, now)
            factor *= 1.0 + spec.intensity
        for spec in self.plan.active(now, kind=FaultKind.LOSS, target=target):
            self._note(spec, now)
            factor *= 1.0 / (1.0 - min(MAX_LOSS, spec.intensity))
        return factor

    # -- the target node itself ---------------------------------------------

    def slowdown(self, target: str, now: float) -> float:
        """Service-time multiplier of a gray (slow-but-alive) node."""
        factor = 1.0
        for spec in self.plan.active(now, kind=FaultKind.GRAY, target=target):
            self._note(spec, now)
            factor *= 1.0 + spec.intensity * (GRAY_SLOWDOWN - 1.0)
        return factor

    def stalled_until(self, target: str, now: float) -> Optional[float]:
        """End of the current replay stall of ``target`` (None if none)."""
        ends = [
            spec.end_s
            for spec in self.plan.active(now, kind=FaultKind.STALL, target=target)
        ]
        if not ends:
            return None
        for spec in self.plan.active(now, kind=FaultKind.STALL, target=target):
            self._note(spec, now)
        return max(ends)

    def degraded(self, target: str, now: float) -> bool:
        """Is the target anything other than fully healthy at ``now``?"""
        return (
            self.partitioned(target, now)
            or self.delay_factor(target, now) > 1.0
            or self.slowdown(target, now) > 1.0
            or self.stalled_until(target, now) is not None
        )

    # -- coordinator faults ---------------------------------------------------

    def take_coordinator_crash(self, phase: str) -> bool:
        """One-shot: should the 2PC coordinator die at ``phase``?

        COORD_CRASH specs target a phase boundary by name (see
        :data:`repro.shard.coordinator.PHASES`); each spec fires at most
        once, mirroring :meth:`~repro.engine.wal.WriteAheadLog.arm_crash`'s
        one-shot semantics.  Time windows are ignored -- the coordinator
        runs outside the DES clock, so the phase name *is* the trigger.
        """
        for spec in self.plan.by_kind(FaultKind.COORD_CRASH):
            key = spec.canonical()
            if spec.target == phase and key not in self._coord_fired:
                self._coord_fired.add(key)
                self._note(spec)
                return True
        return False

    def take_node_crash(self, kind: FaultKind, target: str, now: float) -> bool:
        """One-shot: should the named node of an HA pair die at ``now``?

        ``kind`` is :data:`~repro.chaos.plan.FaultKind.PRIMARY_CRASH` or
        ``REPLICA_CRASH``; ``target`` names the shard (``"shard:1"``).
        A spec fires once its ``start_s`` has passed and never again --
        a crash is an event, so the recovery run after the kill must not
        re-trip the same fault.
        """
        if kind not in HA_KINDS:
            raise ValueError(f"not an HA fault kind: {kind!r}")
        for spec in self.plan.by_kind(kind):
            key = spec.canonical()
            if spec.target == target and now >= spec.start_s and key not in self._node_fired:
                self._node_fired.add(key)
                self._note(spec, now)
                return True
        return False

    # -- DR (backup/archive/restore) faults ----------------------------------

    def take_dr_crash(self, kind: FaultKind, phase: str) -> bool:
        """One-shot: should the backup/restore job die at ``phase``?

        ``kind`` is :data:`~repro.chaos.plan.FaultKind.BACKUP_CRASH` or
        ``RESTORE_CRASH``; ``target`` names the job phase boundary (see
        ``repro.dr.backup.BACKUP_PHASES`` / ``repro.dr.restore.
        RESTORE_PHASES``).  Each spec fires at most once, mirroring
        :meth:`take_coordinator_crash` -- the retried job after recovery
        must not re-trip the same fault.
        """
        if kind not in DR_CRASH_KINDS:
            raise ValueError(f"not a DR crash fault kind: {kind!r}")
        for spec in self.plan.by_kind(kind):
            key = spec.canonical()
            if spec.target == phase and key not in self._dr_fired:
                self._dr_fired.add(key)
                self._note(spec)
                return True
        return False

    def take_archive_corrupt(self, target: str, now: float) -> bool:
        """One-shot: should a bit flip land in ``target``'s archive now?

        A corruption is an event, not a window: the spec fires once its
        ``start_s`` has passed and never again, so the scrub-and-repair
        pass that follows cannot re-corrupt the segment it just healed.
        """
        for spec in self.plan.by_kind(FaultKind.ARCHIVE_CORRUPT):
            key = spec.canonical()
            if spec.target == target and now >= spec.start_s and key not in self._dr_fired:
                self._dr_fired.add(key)
                self._note(spec, now)
                return True
        return False

    def archive_lagging(self, target: str, now: float) -> bool:
        """Is ``target``'s archiver forced into lagged (buffering) mode?

        Window semantics, not one-shot: while active the archiver
        buffers instead of shipping synchronously, so a disaster inside
        the window loses the buffered tail (RPO > 0).
        """
        for spec in self.plan.active(now, kind=FaultKind.ARCHIVE_LAG, target=target):
            self._note(spec, now)
            return True
        return False

    # -- engine-layer faults -------------------------------------------------

    def engine_faults(self, target: str = "primary") -> List[FaultSpec]:
        """CRASH/TORN_WRITE/BIT_FLIP specs aimed at ``target``.

        The WAL cannot consult virtual time, so the driver of the engine
        (availability evaluator, torture test) arms these explicitly via
        :meth:`~repro.engine.wal.WriteAheadLog.arm_crash` /
        :meth:`~repro.engine.wal.WriteAheadLog.flip_bit`.
        """
        return [
            spec for spec in self.plan.by_kind(
                FaultKind.CRASH, FaultKind.TORN_WRITE, FaultKind.BIT_FLIP
            )
            if spec.target == target
        ]

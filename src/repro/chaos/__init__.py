"""Deterministic multi-layer fault injection (the chaos layer).

A :class:`~repro.chaos.plan.FaultPlan` is a declarative, seeded
schedule of faults; a :class:`~repro.chaos.injector.ChaosInjector`
evaluates it at query time-points for the replication pipeline, the
failover simulator, and the client resilience stack.  Determinism
contract: the plan's :meth:`~repro.chaos.plan.FaultPlan.fingerprint`
pins the exact fault schedule, so equal seeds produce byte-identical
chaos runs.
"""

from repro.chaos.injector import GRAY_SLOWDOWN, MAX_LOSS, ChaosInjector
from repro.chaos.plan import (
    ENGINE_KINDS,
    NETWORK_KINDS,
    NODE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

# availability imports the cloud layer, which imports the injector
# above -- keep it last so the partially-initialised package already
# exposes the submodules the cloud layer needs.
from repro.chaos.availability import AScore, AvailabilityEvaluator  # noqa: E402

__all__ = [
    "AScore",
    "AvailabilityEvaluator",
    "ChaosInjector",
    "ENGINE_KINDS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "GRAY_SLOWDOWN",
    "MAX_LOSS",
    "NETWORK_KINDS",
    "NODE_KINDS",
]

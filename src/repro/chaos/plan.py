"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a seeded, ordered list of :class:`FaultSpec`
entries -- *what* goes wrong, *where*, *when*, and *how hard*.  Plans
are pure data: the same plan injected twice produces byte-identical
fault schedules (:meth:`FaultPlan.fingerprint` hashes the canonical
serialization), which is what makes chaos runs reproducible and A-Score
comparisons meaningful.

Fault kinds span the three layers the testbed injects into:

* **engine** -- ``CRASH`` (crash point at a WAL append), ``TORN_WRITE``
  (half-written tail record), ``BIT_FLIP`` (corrupted retained record);
* **cloud DES** -- ``PARTITION`` (target unreachable), ``DELAY`` and
  ``LOSS`` (network degradation), ``STALL`` (replica stops applying),
  ``FLAP`` (link toggles up/down), ``GRAY`` (slow node: alive but
  degraded);
* the **client** layer reacts to all of them through the resilience
  stack rather than having faults of its own.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.rng import RngRegistry


class FaultKind(enum.Enum):
    # engine layer
    CRASH = "crash"
    TORN_WRITE = "torn_write"
    BIT_FLIP = "bit_flip"
    # cloud DES layer
    PARTITION = "partition"
    DELAY = "delay"
    LOSS = "loss"
    STALL = "stall"
    FLAP = "flap"
    GRAY = "gray"
    # shard layer: the transaction coordinator dies at a 2PC phase
    # boundary (``target`` names the phase, e.g. "after_prepare")
    COORD_CRASH = "coord_crash"
    # HA layer: a shard's primary (or its standby) is killed at
    # ``start_s``; ``target`` names the shard, e.g. "shard:1".  One-shot
    # -- a crash is an event, not a window, and never re-fires on the
    # recovery run.
    PRIMARY_CRASH = "primary_crash"
    REPLICA_CRASH = "replica_crash"
    # serving layer: the SQL-over-socket tier misbehaves at the
    # connection level.  CONN_DROP hangs up on a connection abruptly
    # (per-statement with probability ``intensity``, possibly
    # mid-pipeline); CONN_STALL freezes statement processing for
    # ``intensity``-scaled pauses inside the window.
    CONN_DROP = "conn_drop"
    CONN_STALL = "conn_stall"
    # DR layer.  ARCHIVE_CORRUPT flips a bit in an archived segment of
    # ``target`` (one-shot at ``start_s``); ARCHIVE_LAG makes the
    # archiver of ``target`` buffer instead of shipping inside the
    # window (an RPO > 0 disaster surface); BACKUP_CRASH/RESTORE_CRASH
    # kill the backup/restore job at a phase boundary (``target`` names
    # the phase, e.g. "after_image", one-shot like COORD_CRASH).
    ARCHIVE_CORRUPT = "archive_corrupt"
    ARCHIVE_LAG = "archive_lag"
    BACKUP_CRASH = "backup_crash"
    RESTORE_CRASH = "restore_crash"


#: kinds applied to the engine's WAL rather than the DES substrate
ENGINE_KINDS = (FaultKind.CRASH, FaultKind.TORN_WRITE, FaultKind.BIT_FLIP)
#: kinds applied to the shard-fleet transaction coordinator
COORDINATOR_KINDS = (FaultKind.COORD_CRASH,)
#: kinds killing one node of an HA shard pair (one-shot, like COORD_CRASH)
HA_KINDS = (FaultKind.PRIMARY_CRASH, FaultKind.REPLICA_CRASH)
#: kinds degrading the network path to a target
NETWORK_KINDS = (FaultKind.PARTITION, FaultKind.DELAY, FaultKind.LOSS, FaultKind.FLAP)
#: kinds degrading the target node itself
NODE_KINDS = (FaultKind.STALL, FaultKind.GRAY)
#: kinds injected at the SQL-over-socket serving tier
SERVE_KINDS = (FaultKind.CONN_DROP, FaultKind.CONN_STALL)
#: kinds injected into the backup/archive/restore (DR) layer
DR_KINDS = (
    FaultKind.ARCHIVE_CORRUPT,
    FaultKind.ARCHIVE_LAG,
    FaultKind.BACKUP_CRASH,
    FaultKind.RESTORE_CRASH,
)
#: the DR kinds that are one-shot crash points at a job phase boundary
DR_CRASH_KINDS = (FaultKind.BACKUP_CRASH, FaultKind.RESTORE_CRASH)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, target, window, and intensity.

    ``intensity`` is kind-specific: the loss probability for ``LOSS``,
    the relative slowdown for ``GRAY``/``DELAY`` (1.0 doubles latency),
    unused for binary faults.  ``period_s`` only matters for ``FLAP``
    (the up/down toggle period; 0 defaults to a quarter of the window).
    """

    kind: FaultKind
    target: str
    start_s: float
    duration_s: float
    intensity: float = 1.0
    period_s: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError(f"fault window must be non-negative: {self}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1]: {self}")
        if self.period_s < 0:
            raise ValueError(f"period must be non-negative: {self}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def flap_period_s(self) -> float:
        """Effective toggle period of a FLAP fault."""
        return self.period_s if self.period_s > 0 else max(1e-9, self.duration_s / 4.0)

    def in_window(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def active_at(self, now: float) -> bool:
        """Is the fault *biting* at ``now``?

        Identical to :meth:`in_window` except for ``FLAP``, which is
        only down during the odd half-periods of its window (it starts
        down, heals, goes down again, ...).
        """
        if not self.in_window(now):
            return False
        if self.kind is FaultKind.FLAP:
            phase = int((now - self.start_s) / self.flap_period_s)
            return phase % 2 == 0
        return True

    def heal_at(self, now: float) -> float:
        """When the current outage of this fault ends (FLAP: half-period)."""
        if self.kind is FaultKind.FLAP and self.in_window(now):
            phase = int((now - self.start_s) / self.flap_period_s)
            return min(self.end_s, self.start_s + (phase + 1) * self.flap_period_s)
        return self.end_s

    def canonical(self) -> Tuple:
        return (
            self.kind.value, self.target,
            round(self.start_s, 9), round(self.duration_s, 9),
            round(self.intensity, 9), round(self.period_s, 9),
        )


class FaultPlan:
    """An ordered, seeded collection of faults."""

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0, name: str = "plan"):
        self.specs: Tuple[FaultSpec, ...] = tuple(
            sorted(specs, key=lambda spec: spec.canonical())
        )
        self.seed = seed
        self.name = name

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def horizon_s(self) -> float:
        """End of the last fault window (0 for an empty plan)."""
        return max((spec.end_s for spec in self.specs), default=0.0)

    def active(
        self,
        now: float,
        kind: Optional[FaultKind] = None,
        target: Optional[str] = None,
    ) -> List[FaultSpec]:
        """Faults biting at ``now``, optionally filtered by kind/target."""
        return [
            spec for spec in self.specs
            if spec.active_at(now)
            and (kind is None or spec.kind is kind)
            and (target is None or spec.target == target)
        ]

    def by_kind(self, *kinds: FaultKind) -> List[FaultSpec]:
        return [spec for spec in self.specs if spec.kind in kinds]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical fault schedule (and seed).

        Two runs of the same seeded generation produce identical
        fingerprints; this is the determinism contract chaos benchmarks
        assert on.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.name}:{self.seed}".encode("utf-8"))
        for spec in self.specs:
            digest.update(repr(spec.canonical()).encode("utf-8"))
        return digest.hexdigest()

    def describe(self) -> List[str]:
        """Human-readable schedule, one line per fault."""
        return [
            f"{spec.start_s:8.2f}s +{spec.duration_s:6.2f}s  "
            f"{spec.kind.value:<10s} {spec.target:<12s} intensity={spec.intensity:g}"
            for spec in self.specs
        ]

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        duration_s: float,
        targets: Sequence[str],
        kinds: Sequence[FaultKind] = NETWORK_KINDS + NODE_KINDS,
        n_faults: int = 4,
        min_fault_s: float = 2.0,
        max_fault_s: float = 20.0,
        name: str = "generated",
    ) -> "FaultPlan":
        """A random-but-deterministic plan from a master seed.

        Draws come from the dedicated ``chaos.plan`` RNG stream, so the
        plan never perturbs (and is never perturbed by) workload RNGs
        sharing the same master seed.
        """
        if not targets:
            raise ValueError("need at least one fault target")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = RngRegistry(seed).stream("chaos.plan")
        specs = []
        for _ in range(n_faults):
            kind = kinds[rng.randrange(len(kinds))]
            target = targets[rng.randrange(len(targets))]
            fault_s = min(duration_s, rng.uniform(min_fault_s, max_fault_s))
            start_s = rng.uniform(0.0, max(1e-9, duration_s - fault_s))
            specs.append(FaultSpec(
                kind=kind,
                target=target,
                start_s=start_s,
                duration_s=fault_s,
                intensity=round(rng.uniform(0.2, 0.9), 6),
                period_s=round(fault_s / 4.0, 6) if kind is FaultKind.FLAP else 0.0,
            ))
        return cls(specs, seed=seed, name=name)

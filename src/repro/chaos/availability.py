"""Availability under chaos: the A-Score evaluator.

Closes the loop between the three injection layers: real transactions
run against a real primary engine database, replication to real replica
databases travels the chaotic DES network, and every request goes
through the client resilience stack
(:class:`~repro.core.resilience.ResilientSession`).  The A-Score is
what an SLO dashboard would show for the run:

* **goodput** -- fraction of client requests that succeeded end to end
  (after retries, failover and circuit breaking);
* **error-budget burn** -- ``(1 - goodput) / (1 - slo)``: 1.0 means the
  fault schedule consumed exactly the SLO's error budget, above 1.0 the
  SLO was violated.

Determinism contract: the evaluator derives every RNG from the plan
seed via named streams and runs entirely in virtual time, so one
``(architecture, plan)`` pair always produces the identical A-Score and
the plan's fingerprint pins the fault schedule byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan
from repro.cloud.architectures import Architecture
from repro.cloud.replication import ReplicationPipeline
from repro.core.datagen import load_sales_database
from repro.core.resilience import AttemptResult, ResilientSession, RetryPolicy
from repro.core.workload import READ_WRITE, SalesWorkload, TransactionMix
from repro.engine.errors import NodeUnavailableError, RequestTimeout
from repro.obs import NULL_OBSERVER, Observer
from repro.sim.events import Environment
from repro.sim.rng import RngRegistry


@dataclass
class AScore:
    """Availability scorecard of one chaos run."""

    arch_name: str
    plan_name: str
    plan_fingerprint: str
    slo: float
    duration_s: float
    requests: int = 0
    succeeded: int = 0
    failed: int = 0
    retries: int = 0
    breaker_opened: int = 0
    breaker_reclosed: int = 0
    #: (request start, succeeded?) per request, in completion order
    samples: List[Tuple[float, bool]] = field(default_factory=list)
    #: client arrival process the run was driven under
    arrival: str = "closed"
    #: CO-free sojourn percentiles in virtual ms (open arrivals only):
    #: measured from each request's *scheduled* start, so a fault window
    #: that stalls clients shows up in the tail instead of being omitted
    openloop_latency_ms: dict = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Fraction of requests that succeeded end to end."""
        return self.succeeded / self.requests if self.requests else 1.0

    @property
    def error_budget_burn(self) -> float:
        """How much of the SLO's error budget the run consumed."""
        budget = 1.0 - self.slo
        if budget <= 0:
            return 0.0 if self.failed == 0 else float("inf")
        return (1.0 - self.goodput) / budget

    @property
    def available(self) -> bool:
        return self.goodput >= self.slo

    def goodput_between(self, start_s: float, end_s: float) -> float:
        """Goodput restricted to requests started in ``[start_s, end_s)``."""
        window = [ok for at, ok in self.samples if start_s <= at < end_s]
        if not window:
            return 1.0
        return sum(window) / len(window)


class AvailabilityEvaluator:
    """Runs one architecture through one fault plan and scores goodput.

    Clients issue the sales workload: reads prefer the replicas and
    fail over to the primary, writes go to the primary only.  The
    injector decides per attempt whether the chosen endpoint is
    reachable and how slow it is; the session's retry/backoff/breaker
    machinery then earns (or fails to earn) the goodput.
    """

    def __init__(
        self,
        arch: Architecture,
        plan: FaultPlan,
        slo: float = 0.9,
        n_clients: int = 6,
        n_replicas: int = 1,
        duration_s: Optional[float] = None,
        mix: TransactionMix = READ_WRITE,
        request_interval_s: float = 0.05,
        base_latency_s: Optional[float] = None,
        attempt_timeout_s: float = 0.25,
        budget_s: float = 2.0,
        scale_factor: int = 1,
        row_scale: float = 0.001,
        observer: Optional[Observer] = None,
        arrival: str = "closed",
    ):
        from repro.perf.openloop import parse_arrival

        if not 0.0 < slo < 1.0:
            raise ValueError("slo must be in (0, 1)")
        if n_clients < 1 or n_replicas < 1:
            raise ValueError("need at least one client and one replica")
        self.arrival = parse_arrival(arrival)
        self.arch = arch
        self.plan = plan
        self.obs = observer or NULL_OBSERVER
        self.injector = ChaosInjector(plan, observer=self.obs)
        self.slo = slo
        self.n_clients = n_clients
        self.n_replicas = n_replicas
        #: cool-down past the last fault lets breakers re-close on heal
        self.duration_s = duration_s or max(30.0, plan.horizon_s + 10.0)
        self.mix = mix
        self.request_interval_s = request_interval_s
        # Healthy request latency: a fixed server-side floor plus one
        # round trip on this architecture's network.
        self.base_latency_s = (
            base_latency_s
            if base_latency_s is not None
            else 0.002 + 2.0 * arch.network.transfer_time(2048)
        )
        self.attempt_timeout_s = attempt_timeout_s
        self.budget_s = budget_s
        self.scale_factor = scale_factor
        self.row_scale = row_scale
        self.rngs = RngRegistry(plan.seed)

    # -- fault-aware endpoint model -------------------------------------------

    def _down(self, endpoint: str, now: float) -> bool:
        """Unreachable: partitioned away, or inside a CRASH window."""
        if self.injector.partitioned(endpoint, now):
            return True
        return bool(self.plan.active(now, kind=FaultKind.CRASH, target=endpoint))

    def _latency_s(self, endpoint: str, now: float) -> float:
        return (
            self.base_latency_s
            * self.injector.slowdown(endpoint, now)
            * self.injector.delay_factor(endpoint, now)
        )

    def _db_for(self, endpoint: str):
        if endpoint == "primary":
            return self._primary
        index = int(endpoint.split(":", 1)[1])
        return self._pipeline.replicas[index]

    def _attempt(self, endpoint: str, task: str) -> AttemptResult:
        now = self._env.now
        if self._down(endpoint, now):
            error = NodeUnavailableError(f"{endpoint} unreachable at t={now:.3f}")
            error.latency_s = self.base_latency_s
            raise error
        latency = self._latency_s(endpoint, now)
        if latency > self.attempt_timeout_s:
            error = RequestTimeout(
                f"{endpoint} needed {latency:.3f}s > {self.attempt_timeout_s:.3f}s"
            )
            error.latency_s = self.attempt_timeout_s
            raise error
        if task == "T3":
            (statement,) = self._workload.stmts.statements("T3")
            o_id = self._workload._order_keys.next_key()
            value = self._db_for(endpoint).query(statement, [o_id]).first()
        else:
            # Writes only ever run on the primary; retryable engine
            # aborts (lock timeout, deadlock victim) propagate to the
            # session, which replays them.
            value = {
                "T1": self._workload.run_t1,
                "T2": self._workload.run_t2,
                "T4": self._workload.run_t4,
            }[task]()
        return AttemptResult(ok=True, value=value, latency_s=latency)

    # -- clients ---------------------------------------------------------------

    def _client(self, client_id: int, score: AScore):
        env = self._env
        rng = self.rngs.stream(f"chaos.client.{client_id}")
        yield env.timeout(self.request_interval_s * client_id / self.n_clients)
        while env.now < self.duration_s:
            task = self._workload.next_task()
            session = self._reads if task == "T3" else self._writes
            started = env.now
            outcome = yield env.process(
                session.call_in(
                    env,
                    lambda endpoint, chosen=task: self._attempt(endpoint, chosen),
                    timeout_budget_s=self.budget_s,
                )
            )
            score.requests += 1
            score.retries += max(0, outcome.attempts - 1)
            if outcome.ok:
                score.succeeded += 1
            else:
                score.failed += 1
            score.samples.append((started, outcome.ok))
            yield env.timeout(self.request_interval_s * (0.5 + rng.random()))

    def _client_open(self, client_id: int, score: AScore, sojourn):
        """Open-loop client: requests are due at seeded virtual instants.

        The client waits for the next scheduled arrival only when idle;
        when a call overruns (retrying through a fault window) the
        following arrivals are already due and issue back to back, with
        their sojourn measured from the *scheduled* start -- the backlog
        the closed-loop client would silently omit.
        """
        from repro.perf.openloop import arrival_offsets_window

        env = self._env
        rate = (
            self.arrival.rate / self.n_clients
            if self.arrival.rate is not None
            else 1.0 / (1.5 * self.request_interval_s)
        )
        schedule = arrival_offsets_window(
            self.arrival, rate, self.duration_s,
            self.rngs.stream(f"chaos.arrival.{client_id}"),
        )
        for scheduled in schedule:
            if env.now < scheduled:
                yield env.timeout(scheduled - env.now)
            task = self._workload.next_task()
            session = self._reads if task == "T3" else self._writes
            outcome = yield env.process(
                session.call_in(
                    env,
                    lambda endpoint, chosen=task: self._attempt(endpoint, chosen),
                    timeout_budget_s=self.budget_s,
                )
            )
            score.requests += 1
            score.retries += max(0, outcome.attempts - 1)
            if outcome.ok:
                score.succeeded += 1
            else:
                score.failed += 1
            score.samples.append((scheduled, outcome.ok))
            latency = env.now - scheduled
            sojourn.observe(latency)
            if self.obs.enabled:
                self.obs.observe("chaos.openloop.latency_s", latency)

    # -- the run ----------------------------------------------------------------

    def run(self) -> AScore:
        self._env = Environment()
        # The whole run lives in virtual time, including engine spans.
        self.obs.bind_clock(lambda: self._env.now)
        self._primary, _data = load_sales_database(
            "primary",
            scale_factor=self.scale_factor,
            row_scale=self.row_scale,
            seed=self.plan.seed,
            observer=self.obs,
        )
        self._pipeline = ReplicationPipeline(
            self._env, self.arch, self._primary,
            n_replicas=self.n_replicas, chaos=self.injector,
            observer=self.obs,
        )
        self._workload = SalesWorkload(
            self._primary, self.mix, seed=self.plan.seed
        )
        replicas = [
            ReplicationPipeline.replica_target(index)
            for index in range(self.n_replicas)
        ]
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.02, max_backoff_s=0.5)
        self._reads = ResilientSession(
            replicas + ["primary"],
            policy=policy,
            clock=lambda: self._env.now,
            rng=self.rngs.stream("chaos.retry.read"),
            breaker_reset_s=1.0,
            observer=self.obs,
        )
        self._writes = ResilientSession(
            ["primary"],
            policy=policy,
            clock=lambda: self._env.now,
            rng=self.rngs.stream("chaos.retry.write"),
            breaker_reset_s=1.0,
            observer=self.obs,
        )
        score = AScore(
            arch_name=self.arch.name,
            plan_name=self.plan.name,
            plan_fingerprint=self.plan.fingerprint(),
            slo=self.slo,
            duration_s=self.duration_s,
            arrival=self.arrival.describe(),
        )
        sojourn = None
        if self.arrival.is_open:
            from repro.obs.metrics import Histogram

            sojourn = Histogram("chaos.openloop.latency_s")
            for client_id in range(self.n_clients):
                self._env.process(self._client_open(client_id, score, sojourn))
        else:
            for client_id in range(self.n_clients):
                self._env.process(self._client(client_id, score))
        self._env.run(until=self.duration_s + self.budget_s)
        if sojourn is not None and sojourn.count:
            score.openloop_latency_ms = {
                "p50": sojourn.percentile(50.0) * 1000.0,
                "p95": sojourn.percentile(95.0) * 1000.0,
                "p99": sojourn.percentile(99.0) * 1000.0,
                "p999": sojourn.percentile(99.9) * 1000.0,
            }
        score.breaker_opened = (
            self._reads.breaker_opens() + self._writes.breaker_opens()
        )
        score.breaker_reclosed = (
            self._reads.breaker_recloses() + self._writes.breaker_recloses()
        )
        return score

"""The :class:`Observer` handle threaded through every instrumented layer.

One observer = one metrics registry + one tracer + one clock.  Engine,
cloud-DES and client code all take an optional ``observer`` argument
and fall back to :data:`NULL_OBSERVER`, a shared always-off instance
whose every method is a constant-time no-op -- instrumented hot loops
pay one attribute load and a predictable branch when observability is
off.

Typical wiring::

    obs = Observer()                       # wall-clock by default
    db = Database("primary", observer=obs)
    ...
    obs.bind_clock(lambda: env.now)        # switch to sim time for DES
    pipeline = ReplicationPipeline(env, arch, db, observer=obs)
    ...
    write_chrome_trace(obs, "out.json")    # see repro.obs.export
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Tracer


class Observer:
    """Bundle of metrics + tracing + clock with convenience shortcuts."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        trace_capacity: int = 65536,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self._clock = clock or time.perf_counter
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self._clock, capacity=trace_capacity, enabled=enabled)
        # ``now`` is bound directly to the clock callable (an instance
        # attribute shadowing the class method) so hot paths pay one
        # call, not a wrapper frame plus a call.
        self.now: Callable[[], float] = self._clock

    # -- clock ---------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the time source (e.g. to a DES environment's ``now``)."""
        self._clock = clock
        self.now = clock
        self.tracer.clock = clock

    # -- metrics shortcuts ---------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        if self.enabled:
            self.metrics.histogram(name, bounds).observe(value)

    # -- tracing shortcuts ---------------------------------------------------

    def span(self, name: str, category: str, track: Optional[str] = None,
             attrs: Optional[Dict[str, Any]] = None):
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, category, track=track, attrs=attrs)

    def complete(self, name: str, category: str, start_s: float, end_s: float,
                 track: Optional[str] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 parent: Optional[int] = None) -> int:
        if not self.enabled:
            return 0
        return self.tracer.add_complete(
            name, category, start_s, end_s,
            parent=parent, track=track, attrs=attrs,
        )

    def event(self, name: str, category: str, ts: Optional[float] = None,
              track: Optional[str] = None,
              attrs: Optional[Dict[str, Any]] = None) -> int:
        if not self.enabled:
            return 0
        return self.tracer.instant(name, category, ts=ts, track=track, attrs=attrs)

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything a dashboard needs, as one JSON-serialisable dict."""
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "trace": {
                "spans": len(self.tracer),
                "recorded": self.tracer.recorded,
                "dropped": self.tracer.dropped,
            },
        }


class _NullObserver(Observer):
    """Always-off observer: every method returns immediately.

    A dedicated subclass (rather than ``Observer(enabled=False)``) so
    the hot-path methods skip even the ``enabled`` branch bodies and
    ``now()`` never touches a real clock.
    """

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0, trace_capacity=1, enabled=False)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        pass

    def span(self, name: str, category: str, track: Optional[str] = None,
             attrs: Optional[Dict[str, Any]] = None):
        return NOOP_SPAN

    def complete(self, name: str, category: str, start_s: float, end_s: float,
                 track: Optional[str] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 parent: Optional[int] = None) -> int:
        return 0

    def event(self, name: str, category: str, ts: Optional[float] = None,
              track: Optional[str] = None,
              attrs: Optional[Dict[str, Any]] = None) -> int:
        return 0


#: the shared no-op fallback every instrumented constructor defaults to
NULL_OBSERVER = _NullObserver()

"""Zero-dependency metrics: counters, gauges and latency histograms.

The registry is the numeric half of the observability layer (spans are
the other half, see :mod:`repro.obs.trace`).  Three deliberate design
constraints keep it usable inside both the wall-clock engine paths and
the virtual-time DES paths:

* **fixed buckets** -- histograms pre-allocate their bucket boundaries,
  so ``observe`` is an O(log B) bisect with no allocation; two
  histograms with the same boundaries merge by adding counts, which
  makes per-worker or per-run aggregation exact and associative;
* **time-agnostic** -- nothing here reads a clock; values are whatever
  the instrumented site passes in (wall seconds, sim seconds, bytes);
* **no labels cardinality traps** -- a metric name is just a string;
  callers bake the label into the name (``repl.lag_s.replica:0``) and
  the Prometheus exporter splits it back out.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: default latency boundaries: 1 us .. ~100 s, four buckets per decade
def _default_bounds() -> Tuple[float, ...]:
    bounds: List[float] = []
    mantissas = (1.0, 1.78, 3.16, 5.62)
    for exponent in range(-6, 3):
        for mantissa in mantissas:
            bounds.append(round(mantissa * 10.0 ** exponent, 12))
    return tuple(bounds)


DEFAULT_LATENCY_BOUNDS = _default_bounds()

#: the tail percentiles every snapshot reports
TAIL_PERCENTILES = (50.0, 90.0, 99.0, 99.9)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    ``percentile`` interpolates linearly inside the winning bucket and
    clamps to the observed ``min``/``max``, so estimates degrade
    gracefully rather than inventing values outside the observed range.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if not chosen:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(chosen) != sorted(chosen):
            raise ValueError("bucket boundaries must be sorted ascending")
        if len(set(chosen)) != len(chosen):
            raise ValueError("bucket boundaries must be distinct")
        self.bounds: Tuple[float, ...] = chosen
        self.bucket_counts: List[int] = [0] * (len(chosen) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (0 < pct <= 100)."""
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        if self.count == 0:
            return 0.0
        rank = pct / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else max(self.max, self.bounds[-1])
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(self.max, max(self.min, estimate))
            cumulative += bucket_count
        return self.max  # pragma: no cover - rank <= count always hits

    def quantile_summary(self) -> Dict[str, float]:
        """The tail summary every report prints (p50/p90/p99/p999)."""
        return {
            "p" + f"{pct:g}".replace(".", ""): self.percentile(pct)
            for pct in TAIL_PERCENTILES
        }

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s observations into this histogram (associative)."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} vs {other.name!r})"
            )
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """Get-or-create home of every metric in one observed run."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. a worker's) into this one."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict dump: counters and gauges by value, histograms by
        count/mean/tail percentiles.  JSON-serialisable as-is."""
        out: Dict[str, Dict[str, float]] = {"counters": {}, "gauges": {}}
        for name, counter in sorted(self.counters.items()):
            out["counters"][name] = counter.value
        for name, gauge in sorted(self.gauges.items()):
            out["gauges"][name] = gauge.value
        hists: Dict[str, Dict[str, float]] = {}
        for name, histogram in sorted(self.histograms.items()):
            summary: Dict[str, float] = {
                "count": float(histogram.count),
                "mean": histogram.mean,
            }
            if histogram.count:
                summary["min"] = histogram.min
                summary["max"] = histogram.max
                summary.update(histogram.quantile_summary())
            hists[name] = summary
        out["histograms"] = hists  # type: ignore[assignment]
        return out

"""Unified observability: metrics, tracing and timeline export.

``repro.obs`` gives every layer of the testbed -- the storage engine,
the cloud discrete-event simulation, and the resilient client -- one
:class:`~repro.obs.observer.Observer` handle that collects typed
metrics (counters / gauges / mergeable latency histograms) and
structured spans, then exports them as Chrome ``trace_event`` JSON,
JSONL, or a Prometheus-style text snapshot.  See
``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_to_prometheus,
    observer_to_jsonl,
    spans_to_jsonl,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.trace import Span, Tracer

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BOUNDS",
    "Tracer",
    "Span",
    "chrome_trace",
    "write_chrome_trace",
    "spans_to_jsonl",
    "observer_to_jsonl",
    "metrics_to_prometheus",
    "write_prometheus",
]

"""Exporters: Chrome ``trace_event`` JSON, JSONL dumps, Prometheus text.

Three formats, one source of truth (an :class:`~repro.obs.observer.
Observer`):

* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Trace Event
  Format understood by ``chrome://tracing`` and Perfetto.  Span tracks
  become named "threads", sim-time seconds become microsecond ``ts``
  values, instants render as markers -- a whole chaos run opens as one
  timeline.
* :func:`spans_to_jsonl` / :func:`observer_to_jsonl` -- one JSON object
  per line, trivially greppable and streamable.
* :func:`metrics_to_prometheus` / :func:`write_prometheus` -- a
  text-format snapshot (counters as ``_total``, histograms with
  ``_bucket``/``_sum``/``_count``) that ``promtool`` and scrapers parse.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, TextIO

from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.trace import Span, Tracer

#: every span lives in one "process" in the chrome rendering
TRACE_PID = 1


def _track_ids(spans: List[Span]) -> Dict[str, int]:
    tracks: Dict[str, int] = {}
    for span in spans:
        if span.track not in tracks:
            tracks[span.track] = len(tracks) + 1
    return tracks


def chrome_trace(observer: Observer | Tracer) -> Dict[str, Any]:
    """Build the ``{"traceEvents": [...]}`` document as a dict."""
    tracer = observer.tracer if isinstance(observer, Observer) else observer
    spans = list(tracer.spans())
    tracks = _track_ids(spans)
    events: List[Dict[str, Any]] = []
    for track, tid in tracks.items():
        events.append({
            "ph": "M", "pid": TRACE_PID, "tid": tid,
            "name": "thread_name", "args": {"name": track},
        })
    for span in spans:
        args = dict(span.attrs) if span.attrs else {}
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "pid": TRACE_PID,
            "tid": tracks[span.track],
            "ts": span.start_s * 1e6,
            "args": args,
        }
        if span.kind == "instant":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = max(0.0, span.duration_s) * 1e6
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(observer: Observer | Tracer, path: str) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    document = chrome_trace(observer)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


def spans_to_jsonl(tracer: Tracer, out: TextIO) -> int:
    """One span per line; returns lines written."""
    written = 0
    for span in tracer.spans():
        out.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        written += 1
    return written


def observer_to_jsonl(observer: Observer, out: TextIO) -> int:
    """Spans plus one trailing ``{"kind": "metrics", ...}`` line.

    The trailing line carries the tracer's own accounting too
    (``trace.recorded`` / ``trace.dropped``): a consumer must be able
    to tell a quiet run from one whose ring buffer silently shed the
    spans it was looking for.
    """
    written = spans_to_jsonl(observer.tracer, out)
    out.write(json.dumps(
        {
            "kind": "metrics",
            "trace": {
                "recorded": observer.tracer.recorded,
                "dropped": observer.tracer.dropped,
                "capacity": observer.tracer.capacity,
            },
            **observer.metrics.snapshot(),
        },
        sort_keys=True,
    ) + "\n")
    return written + 1


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Metric names like ``repl.lag_s.replica:0`` -> valid Prometheus
    identifiers (dots and colons in the tail become underscores)."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def metrics_to_prometheus(
    registry: MetricsRegistry, tracer: Tracer | None = None
) -> str:
    """Render the registry in the Prometheus exposition text format.

    With ``tracer`` the snapshot also exposes the tracer's own health
    (``tracer_spans_recorded_total`` / ``tracer_spans_dropped_total``)
    so a scrape shows when the span ring buffer overflowed.
    """
    lines: List[str] = []
    if tracer is not None:
        lines.append("# TYPE tracer_spans_recorded_total counter")
        lines.append(f"tracer_spans_recorded_total {_prom_value(tracer.recorded)}")
        lines.append("# TYPE tracer_spans_dropped_total counter")
        lines.append(f"tracer_spans_dropped_total {_prom_value(tracer.dropped)}")
    for name, counter in sorted(registry.counters.items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(gauge.value)}")
    for name, histogram in sorted(registry.histograms.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, bucket_count in zip(histogram.bounds, histogram.bucket_counts):
            cumulative += bucket_count
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{prom}_sum {_prom_value(histogram.sum)}")
        lines.append(f"{prom}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(observer: Observer | MetricsRegistry, path: str) -> str:
    """Write the text snapshot to ``path``; returns the rendered text."""
    if isinstance(observer, Observer):
        text = metrics_to_prometheus(observer.metrics, tracer=observer.tracer)
    else:
        text = metrics_to_prometheus(observer)
    with open(path, "w") as handle:
        handle.write(text)
    return text

"""Structured tracing: spans and instant events in a ring buffer.

A :class:`Span` is one timed operation (a transaction, a log-batch
ship, a resilient client call); an *instant* is a zero-duration marker
(a fault starting to bite, a breaker opening).  Spans carry parent
links, free-form attributes, and a *track* -- the logical actor
(``engine``, ``replica:0``, ``client``) that becomes a row in the
Chrome ``trace_event`` rendering.

Two properties matter for instrumenting hot loops:

* **bounded memory** -- finished spans land in a ``deque(maxlen=...)``
  ring buffer; old spans fall off the back and ``dropped`` counts them,
  so a long run can never eat the heap;
* **no-op fast path** -- a disabled tracer answers every recording call
  with a single attribute check and no allocation, so instrumentation
  can stay inline in the WAL/buffer/lock paths.

Timestamps come from the tracer's ``clock`` callable, which is wall
time (``time.perf_counter``) for functional engine runs and ``lambda:
env.now`` for DES runs -- callers may also pass explicit timestamps
(``ts``/``start_s``/``end_s``) when they already know them.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One finished span or instant event."""

    __slots__ = (
        "span_id", "parent_id", "name", "category", "track",
        "start_s", "end_s", "attrs", "kind",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        start_s: float,
        end_s: float,
        parent_id: Optional[int] = None,
        track: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
        kind: str = "span",
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track or category
        self.start_s = start_s
        self.end_s = end_s
        self.attrs = attrs
        self.kind = kind  # "span" | "instant"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.span_id,
            "name": self.name,
            "cat": self.category,
            "track": self.track,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "kind": self.kind,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.span_id} {self.name!r} [{self.start_s:.6f}, "
            f"{self.end_s:.6f}]>"
        )


class ActiveSpan:
    """An open span handle; finish it with :meth:`Tracer.end` or use
    the :meth:`Tracer.span` context manager."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "category",
                 "track", "start_s", "attrs")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: Optional[int],
                 name: str, category: str, track: Optional[str],
                 start_s: float, attrs: Optional[Dict[str, Any]]):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.start_s = start_s
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.set("error", exc_type.__name__)
        self.tracer.end(self)
        return False


class _NoopSpan:
    """Shared do-nothing handle returned by a disabled tracer."""

    __slots__ = ()
    span_id = 0
    parent_id = None

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records spans into a bounded ring buffer.

    The context-manager API maintains an explicit *current span* stack,
    so synchronously nested ``with tracer.span(...)`` blocks get their
    parent links for free.  Interleaved producers (DES processes)
    bypass the stack with :meth:`add_complete` and explicit parents.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 65536,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.clock = clock or time.perf_counter
        self.enabled = enabled
        self.capacity = capacity
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._stack: List[int] = []
        self.recorded = 0

    # -- recording ----------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        parent: Optional[int] = None,
        track: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
        start_s: Optional[float] = None,
    ) -> ActiveSpan:
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        span_id = next(self._ids)
        if parent is None and self._stack:
            parent = self._stack[-1]
        return ActiveSpan(
            self, span_id, parent, name, category, track,
            self.clock() if start_s is None else start_s, attrs,
        )

    def end(self, active: ActiveSpan, end_s: Optional[float] = None) -> None:
        if not self.enabled or active is NOOP_SPAN:
            return
        self._store(Span(
            active.span_id, active.name, active.category,
            active.start_s, self.clock() if end_s is None else end_s,
            parent_id=active.parent_id, track=active.track, attrs=active.attrs,
        ))

    def span(
        self,
        name: str,
        category: str,
        track: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> "ActiveSpan | _NoopSpan":
        """Context manager: nested uses link parents via the span stack."""
        if not self.enabled:
            return NOOP_SPAN
        active = self.begin(name, category, track=track, attrs=attrs)
        return _StackedSpan(active)

    def add_complete(
        self,
        name: str,
        category: str,
        start_s: float,
        end_s: float,
        parent: Optional[int] = None,
        track: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Record an already-finished span; returns its id (0 when off)."""
        if not self.enabled:
            return 0
        span_id = next(self._ids)
        self._store(Span(
            span_id, name, category, start_s, end_s,
            parent_id=parent, track=track, attrs=attrs,
        ))
        return span_id

    def instant(
        self,
        name: str,
        category: str,
        ts: Optional[float] = None,
        track: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return 0
        at = self.clock() if ts is None else ts
        span_id = next(self._ids)
        self._store(Span(
            span_id, name, category, at, at,
            track=track, attrs=attrs, kind="instant",
        ))
        return span_id

    def _store(self, span: Span) -> None:
        self._buffer.append(span)
        self.recorded += 1

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def dropped(self) -> int:
        """Spans that fell off the back of the ring buffer."""
        return self.recorded - len(self._buffer)

    def spans(self) -> Iterator[Span]:
        """All retained spans, oldest first."""
        return iter(self._buffer)

    def find(self, name: Optional[str] = None,
             category: Optional[str] = None) -> List[Span]:
        return [
            span for span in self._buffer
            if (name is None or span.name == name)
            and (category is None or span.category == category)
        ]

    def clear(self) -> None:
        self._buffer.clear()
        self._stack.clear()


class _StackedSpan:
    """Context manager pushing the span onto the tracer's parent stack."""

    __slots__ = ("_active",)

    def __init__(self, active: ActiveSpan):
        self._active = active

    def set(self, key: str, value: Any) -> None:
        self._active.set(key, value)

    @property
    def span_id(self) -> int:
        return self._active.span_id

    def __enter__(self) -> "_StackedSpan":
        self._active.tracer._stack.append(self._active.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._active.tracer._stack
        if stack and stack[-1] == self._active.span_id:
            stack.pop()
        if exc_type is not None:
            self._active.set("error", exc_type.__name__)
        self._active.tracer.end(self._active)
        return False

"""The backup/restore crash-point sweep: every phase x fault target.

One *cell* builds a fresh two-shard fleet with a sync archiver, warms
the PAIRS workload up, then arms exactly one fault at one phase
boundary of the DR job under test --

* ``coordinator`` -- the backup/restore job's own process dies at the
  boundary (:meth:`~repro.dr.backup.BackupJob.arm_crash`), raising
  :class:`~repro.dr.backup.BackupCrash` /
  :class:`~repro.dr.restore.RestoreCrash`;
* ``shard`` -- a shard's WAL is killed at the boundary
  (:meth:`~repro.dr.backup.BackupJob.arm_action` +
  ``wal.kill()``), so the job either trips over the dead instance or
  absorbs the kill, depending on what it still needed from it --

recovers whatever the fault broke (``fleet.recover()`` is idempotent
and revives dead shards; a torn restore is simply re-run from the same
manifest and archives), restores the fleet to the archive's end, and
drives more traffic against the *restored* fleet.  The acceptance bar
is zero :class:`~repro.ha.history.HistoryChecker` violations over the
full history -- pre-disaster and post-restore operations checked as one
timeline -- plus a byte-identical fingerprint for a given ``--seed``.

For restore-phase cells the disaster and the first (faulted) restore
attempt both happen; the cell proves a crashed restore leaves the
backup artifacts intact and re-runnable.  For backup-phase cells the
restore runs clean; the cell proves a crashed backup never corrupts
the fleet it was imaging.

Run as a module for the CI smoke job::

    python -m repro.dr.crashmatrix --quick --seed 7
"""

from __future__ import annotations

import argparse
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dr.archive import FleetArchiver
from repro.dr.backup import BACKUP_PHASES, BackupJob
from repro.dr.restore import RESTORE_PHASES, RestoreJob
from repro.engine.errors import SimulatedCrash
from repro.ha.history import HistoryChecker, Violation
from repro.ha.workload import PairWorkload, build_pairs_fleet
from repro.sim.rng import derive_seed

TARGETS = ("coordinator", "shard")
#: every phase boundary of both jobs, prefixed by the job it belongs to
CELLS = tuple(
    (stage, phase)
    for stage, phases in (("backup", BACKUP_PHASES), ("restore", RESTORE_PHASES))
    for phase in phases
)


@dataclass
class CellResult:
    """One (stage, phase, target) cell's outcome."""

    stage: str
    phase: str
    target: str
    violations: List[Violation] = field(default_factory=list)
    fault_fired: bool = False
    #: the faulted job needed a clean re-run (vs absorbing the fault)
    retried: bool = False
    rows_restored: int = 0
    records_replayed: int = 0
    #: acked transfers / reads against the restored fleet
    post_transfers: int = 0
    post_reads: int = 0
    ops: int = 0

    @property
    def label(self) -> str:
        return f"{self.stage:<8s} {self.phase:<15s} {self.target:<12s}"

    @property
    def passed(self) -> bool:
        return (
            not self.violations
            and self.fault_fired
            and self.post_transfers > 0
            and self.post_reads > 0
        )


@dataclass
class MatrixResult:
    """The whole sweep."""

    seed: int
    cells: List[CellResult] = field(default_factory=list)

    @property
    def violations(self) -> List[Violation]:
        return [violation for cell in self.cells for violation in cell.violations]

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    def fingerprint(self) -> str:
        """SHA-256 over every cell's outcome -- the determinism contract."""
        digest = hashlib.sha256()
        digest.update(f"seed={self.seed}".encode())
        for cell in self.cells:
            digest.update(cell.label.encode())
            digest.update(
                f"|fired={cell.fault_fired}|retried={cell.retried}"
                f"|rows={cell.rows_restored}|replayed={cell.records_replayed}"
                f"|t={cell.post_transfers}|r={cell.post_reads}"
                f"|ops={cell.ops}|v={len(cell.violations)}".encode()
            )
        return digest.hexdigest()

    def describe(self) -> List[str]:
        lines = [
            f"{cell.label}  rows={cell.rows_restored:<3d} "
            f"replayed={cell.records_replayed:<4d} "
            f"{'retried' if cell.retried else 'absorbed':<8s} "
            f"post={cell.post_transfers}/{cell.post_reads}  "
            f"{'ok' if cell.passed else 'FAIL'}"
            for cell in self.cells
        ]
        lines.append(
            f"{len(self.cells)} cells, {len(self.violations)} violations, "
            f"fingerprint {self.fingerprint()[:16]}"
        )
        lines.extend(str(violation) for violation in self.violations)
        return lines


def run_cell(
    stage: str,
    phase: str,
    target: str,
    seed: int = 7,
    victim: int = 0,
    n_pairs: int = 3,
    warmup: int = 4,
    mid: int = 3,
    post: int = 4,
) -> CellResult:
    """Run one cell of the matrix on a fresh fleet."""
    if (stage, phase) not in CELLS:
        raise ValueError(f"unknown cell {stage!r}/{phase!r}")
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r}")
    cell = CellResult(stage=stage, phase=phase, target=target)
    label = f"dr.{stage}.{phase}.{target}"
    fleet, pairs = build_pairs_fleet(n_shards=2, n_pairs=n_pairs, name="drmatrix")
    archiver = FleetArchiver(fleet, mode="sync")
    workload = PairWorkload(fleet, pairs, seed=derive_seed(seed, label))
    for _ in range(warmup):
        workload.transfer()
        workload.read()

    # -- backup (faulted in backup-stage cells) ------------------------------
    backup = BackupJob(fleet, archiver, name=label)
    if stage == "backup":
        if target == "coordinator":
            backup.arm_crash(phase)
        else:
            backup.arm_action(phase, lambda: fleet.shards[victim].wal.kill())
    manifest = None
    try:
        manifest = backup.run()
    except SimulatedCrash:
        pass
    if stage == "backup":
        cell.fault_fired = not backup.armed
    dead = any(shard.wal.is_dead for shard in fleet.shards)
    if manifest is None or dead:
        # Recovery revives killed shards and aborts the leaked pin of a
        # torn barrier; the retried backup must then run clean.
        fleet.recover()
        if manifest is None:
            cell.retried = True
            manifest = backup.run()

    # -- post-backup live traffic (the PITR replay range) --------------------
    for _ in range(mid):
        workload.transfer()
        workload.read()

    # -- disaster + restore (faulted in restore-stage cells) -----------------
    archiver.catch_up()
    target_lsns = [archive.last_lsn for archive in archiver.archives]
    restore = RestoreJob(manifest, archiver, name=label)
    if stage == "restore":
        if target == "coordinator":
            restore.arm_crash(phase)
        else:
            restore.arm_action(
                phase, lambda: restore.fleet.shards[victim].wal.kill()
            )
    restored = None
    try:
        restored, report = restore.run(target=target_lsns)
    except SimulatedCrash:
        pass
    if stage == "restore":
        cell.fault_fired = not restore.armed
    if restored is None:
        # The torn target fleet is garbage; the manifest and archives
        # are read-only inputs, so a fresh run must succeed.
        cell.retried = True
        restored, report = RestoreJob(
            manifest, archiver, name=f"{label}.retry"
        ).run(target=target_lsns)
    elif any(shard.wal.is_dead for shard in restored.shards):
        # The job absorbed the kill (e.g. after the replay); restart
        # recovery revives the shard from its own restored log.
        restored.recover()
    cell.rows_restored = report.rows_loaded
    cell.records_replayed = report.records_replayed

    # -- liveness + checkable history against the restored fleet -------------
    post_workload = PairWorkload(
        restored, pairs, history=workload.history,
        seed=derive_seed(seed, f"{label}.post"),
    )
    # Versions are strictly increasing across the whole timeline; the
    # restored fleet continues the pre-disaster sequence, it does not
    # restart it (a restarted sequence would read as lost updates).
    post_workload._versions.update(workload._versions)
    for _ in range(post):
        cell.post_transfers += 1 if post_workload.transfer() else 0
        cell.post_reads += 1 if post_workload.read() is not None else 0

    check = HistoryChecker().check(
        post_workload.history, post_workload.final_stamps()
    )
    cell.violations = list(check.violations)
    cell.ops = len(post_workload.history)
    if not cell.fault_fired:
        cell.violations.append(Violation(
            "fault_not_fired",
            f"armed {target} fault at {stage}/{phase} never consumed",
        ))
    return cell


def run_matrix(seed: int = 7, quick: bool = False) -> MatrixResult:
    """Sweep all 8 phase boundaries x 2 targets (coordinator only when
    quick).  The shard victim alternates per cell so both protocol
    orders -- first shard imaged/replayed vs last -- are swept."""
    result = MatrixResult(seed=seed)
    targets = ("coordinator",) if quick else TARGETS
    index = 0
    for stage, phase in CELLS:
        for target in targets:
            result.cells.append(run_cell(
                stage, phase, target, seed=seed, victim=index % 2,
            ))
            index += 1
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="backup/restore crash-point sweep (zero tolerated violations)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick", action="store_true",
        help="coordinator cells only (8 instead of 16)",
    )
    args = parser.parse_args(argv)
    result = run_matrix(seed=args.seed, quick=args.quick)
    for line in result.describe():
        print(line)
    return 0 if result.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""The scrubber: CRC-verify archives and live WAL, repair what it can.

Storage rot is silent until something reads the rotten byte -- usually
the restore that needed it.  The scrubber is the proactive read: it
walks every archived record and every retained live-WAL record,
re-verifies the per-record CRC the engine has carried since append
time, and repairs failures from the redundant copy:

* an archive's primary copy repairs from its mirror
  (:meth:`~repro.dr.archive.ShardArchive.repair`);
* a live-WAL record repairs from the archive's verified copy
  (:meth:`~repro.engine.wal.WriteAheadLog.repair_record`) -- the
  archive is upstream of truncation, so an intact copy usually exists.

A record with *no* intact copy anywhere is reported unrepairable;
replay refuses to cross it, so the scrub report is the early warning
that a restore to that range would come up short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dr.archive import FleetArchiver, ShardArchive
from repro.engine.database import Database
from repro.engine.errors import WalCorruptionError
from repro.obs import NULL_OBSERVER, Observer


@dataclass
class ScrubReport:
    """One scrub pass over a fleet's archives and live logs."""

    archive_records: int = 0
    wal_records: int = 0
    archive_repaired: int = 0
    wal_repaired: int = 0
    #: (shard_name, lsn) with no intact copy anywhere
    unrepairable: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def scanned(self) -> int:
        return self.archive_records + self.wal_records

    @property
    def repaired(self) -> int:
        return self.archive_repaired + self.wal_repaired

    @property
    def clean(self) -> bool:
        return not self.unrepairable

    def describe(self) -> str:
        return (
            f"scrubbed {self.scanned} records "
            f"({self.archive_records} archived, {self.wal_records} live): "
            f"{self.repaired} repaired, "
            f"{len(self.unrepairable)} unrepairable"
        )


def scrub_archive(
    archive: ShardArchive, report: Optional[ScrubReport] = None
) -> ScrubReport:
    """Verify every archived record; repair primaries from the mirror."""
    report = report or ScrubReport()
    for lsn in sorted(archive._records):
        report.archive_records += 1
        if archive._records[lsn].is_intact:
            continue
        if archive.repair(lsn):
            report.archive_repaired += 1
        else:
            report.unrepairable.append((archive.shard_name, lsn))
    return report


def scrub_wal(
    db: Database,
    archive: Optional[ShardArchive] = None,
    report: Optional[ScrubReport] = None,
) -> ScrubReport:
    """Verify the retained live WAL; repair from the archive's copy."""
    report = report or ScrubReport()
    wal = db.wal
    for record in wal.records_from(wal.first_retained_lsn):
        report.wal_records += 1
        if record.is_intact:
            continue
        fixed = False
        if archive is not None and archive.has(record.lsn):
            try:
                wal.repair_record(archive.verified_copy(record.lsn))
                fixed = True
            except (WalCorruptionError, ValueError):
                # both archive copies rotten, or the LSN fell out of the
                # retained window between scan and repair
                fixed = False
        if fixed:
            report.wal_repaired += 1
        else:
            report.unrepairable.append((db.name, record.lsn))
    return report


def scrub_fleet(
    fleet,
    archiver: FleetArchiver,
    observer: Optional[Observer] = None,
) -> ScrubReport:
    """One full scrub pass: every shard's archive, then its live WAL."""
    obs = observer or NULL_OBSERVER
    report = ScrubReport()
    for shard, archive in zip(fleet.shards, archiver.archives):
        scrub_archive(archive, report)
        scrub_wal(shard, archive, report)
    if obs.enabled:
        obs.count("dr.scrubs")
        if report.repaired:
            obs.event(
                "dr.scrub.repair", "dr", track="dr",
                attrs={"repaired": report.repaired,
                       "unrepairable": len(report.unrepairable)},
            )
    return report

"""WAL archiving: the continuous half of the backup story.

A :class:`WalArchiver` subscribes to a shard WAL's append listeners
(*not* ``on_append`` -- that hook belongs exclusively to the HA
shipper) and to the pre-truncate hook, so every record reaches the
:class:`ShardArchive` before checkpoint truncation can drop it.  The
archive keeps **two** copies of every record -- a primary copy and a
mirror -- which is what the scrubber repairs from when chaos flips a
bit in a segment.

Gap and rewind semantics mirror what real archives face:

* a record written by a firing crash point is durable-but-unacked and
  never fires the append listeners; the resulting archive *gap* is
  healed later by the pre-truncate hook (the dropped prefix is always
  contiguous) or by :meth:`WalArchiver.catch_up` pulling from the
  live log;
* after restart recovery ``discard_from`` lets the engine *reuse*
  discarded LSNs.  The archiver detects the reused LSN (same LSN,
  different payload) and rewinds the archive to it -- the discarded
  suffix belonged to a dead timeline and must not survive in the
  archive either.

``mode="sync"`` archives on every append (RPO 0: an acked commit is
in the archive before the ack).  ``mode="lagged"`` buffers appends
until :meth:`WalArchiver.flush` -- a disaster inside the lag window
loses the buffered tail, which is exactly the RPO > 0 surface the
``ARCHIVE_LAG`` chaos fault opens.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.engine.database import Database
from repro.engine.errors import EngineError, WalCorruptionError
from repro.engine.wal import LogRecord
from repro.engine.walcodec import records_equivalent
from repro.obs import NULL_OBSERVER, Observer

#: supported archiver modes
ARCHIVE_MODES = ("sync", "lagged")


class ShardArchive:
    """The archived WAL of one shard: records keyed by LSN, twice.

    The primary copy serves reads and replay; the mirror is the
    redundant copy the scrubber repairs from.  Both are verified at
    ingest, so corruption can only be introduced *after* archiving
    (chaos ``ARCHIVE_CORRUPT`` models storage rot via
    :meth:`flip_bit`).
    """

    def __init__(self, shard_name: str, observer: Optional[Observer] = None):
        self.shard_name = shard_name
        self.obs = observer or NULL_OBSERVER
        self._records: Dict[int, LogRecord] = {}
        self._mirror: Dict[int, LogRecord] = {}
        self.ingested = 0
        self.duplicates = 0
        self.rewinds = 0
        #: rotted primaries healed in place by a matching re-offer
        self.healed = 0
        #: records dropped by timeline rewinds (dead-timeline suffixes)
        self.rewound_records = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def first_lsn(self) -> int:
        """Lowest archived LSN (0 when empty)."""
        return min(self._records, default=0)

    @property
    def last_lsn(self) -> int:
        """Highest archived LSN (0 when empty)."""
        return max(self._records, default=0)

    def bytes_total(self) -> int:
        return sum(record.byte_size() for record in self._records.values())

    # -- ingest --------------------------------------------------------------

    def ingest(self, record: LogRecord) -> bool:
        """Adopt one record; returns True if it changed the archive.

        A byte-identical duplicate is a no-op (healing passes re-offer
        records).  The same LSN with a *different* payload is a
        timeline rewind: the engine discarded its tail after a crash
        and reused the LSN, so every archived record at or above it is
        dropped before the new one is adopted.
        """
        if not record.is_intact:
            raise WalCorruptionError(
                f"refusing to archive LSN {record.lsn} of "
                f"{self.shard_name}: record fails its CRC"
            )
        existing = self._records.get(record.lsn)
        if existing is not None:
            # Value-identity, not field identity: a re-offered record
            # that round-tripped through a wire frame or backup may
            # carry a list where a tuple was archived (or 1.0 for 1);
            # treating that as divergence would trigger a spurious
            # timeline rewind.
            if records_equivalent(existing, record):
                self.duplicates += 1
                return False
            mirror = self._mirror.get(record.lsn)
            if not existing.is_intact and mirror is not None and records_equivalent(mirror, record):
                # The primary copy rotted in place and the re-offer
                # matches the intact mirror: heal the primary.  This is
                # storage rot, not a timeline rewind -- rewinding here
                # would throw away the mirror redundancy above it.
                self._records[record.lsn] = record
                self.healed += 1
                return True
            self._rewind_to(record.lsn)
        self._records[record.lsn] = record
        self._mirror[record.lsn] = record
        self.ingested += 1
        return True

    def _rewind_to(self, lsn: int) -> None:
        doomed = [archived for archived in self._records if archived >= lsn]
        for archived in doomed:
            del self._records[archived]
            self._mirror.pop(archived, None)
        self.rewinds += 1
        self.rewound_records += len(doomed)
        if self.obs.enabled:
            self.obs.count("dr.archive.rewind")
            self.obs.event(
                "dr.archive.rewind", "dr", track="dr",
                attrs={"shard": self.shard_name, "lsn": lsn,
                       "dropped": len(doomed)},
            )

    # -- reading -------------------------------------------------------------

    def has(self, lsn: int) -> bool:
        return lsn in self._records

    def record(self, lsn: int) -> LogRecord:
        """The primary copy at ``lsn`` (possibly corrupt -- scrub it)."""
        try:
            return self._records[lsn]
        except KeyError:
            raise EngineError(
                f"archive of {self.shard_name} holds no LSN {lsn}"
            ) from None

    def verified_copy(self, lsn: int) -> LogRecord:
        """An intact copy at ``lsn``: primary if it verifies, else mirror."""
        primary = self.record(lsn)
        if primary.is_intact:
            return primary
        mirror = self._mirror.get(lsn)
        if mirror is not None and mirror.is_intact:
            return mirror
        raise WalCorruptionError(
            f"archive of {self.shard_name}: both copies of LSN {lsn} "
            f"fail their CRC"
        )

    def records_between(self, from_lsn: int, to_lsn: int) -> List[LogRecord]:
        """The contiguous primary-copy range ``(from_lsn, to_lsn]``.

        Raises :class:`EngineError` on a gap and
        :class:`WalCorruptionError` on a corrupt record -- replay must
        run over a scrubbed, complete archive.
        """
        out: List[LogRecord] = []
        for lsn in range(from_lsn + 1, to_lsn + 1):
            record = self._records.get(lsn)
            if record is None:
                raise EngineError(
                    f"archive gap: {self.shard_name} is missing LSN {lsn} "
                    f"(range ({from_lsn}, {to_lsn}])"
                )
            if not record.is_intact:
                raise WalCorruptionError(
                    f"archive of {self.shard_name}: LSN {lsn} fails its "
                    f"CRC (scrub before replay)"
                )
            out.append(record)
        return out

    def missing_between(self, from_lsn: int, to_lsn: int) -> List[int]:
        """LSNs absent from ``(from_lsn, to_lsn]`` (gap diagnostics)."""
        return [
            lsn for lsn in range(from_lsn + 1, to_lsn + 1)
            if lsn not in self._records
        ]

    # -- corruption and repair ----------------------------------------------

    def flip_bit(self, lsn: int, bit: int = 0) -> LogRecord:
        """Corrupt the *primary* copy in place (the mirror stays intact)."""
        record = self.record(lsn)
        if isinstance(record.key, int):
            corrupted = replace(record, key=record.key ^ (1 << (bit % 31)))
        else:
            corrupted = replace(record, crc=record.crc ^ (1 << (bit % 32)))
        self._records[lsn] = corrupted
        return corrupted

    def first_corrupt_lsn(self) -> Optional[int]:
        """Lowest archived LSN whose primary copy fails its CRC."""
        for lsn in sorted(self._records):
            if not self._records[lsn].is_intact:
                return lsn
        return None

    def repair(self, lsn: int) -> bool:
        """Restore the primary copy at ``lsn`` from the mirror.

        Returns True when the record verifies afterwards; False when
        the mirror is gone or corrupt too (unrepairable).
        """
        mirror = self._mirror.get(lsn)
        if mirror is None or not mirror.is_intact:
            return False
        self._records[lsn] = mirror
        return True


class WalArchiver:
    """Continuously archives one shard's WAL into a :class:`ShardArchive`."""

    def __init__(
        self,
        db: Database,
        archive: Optional[ShardArchive] = None,
        mode: str = "sync",
        observer: Optional[Observer] = None,
    ):
        if mode not in ARCHIVE_MODES:
            raise ValueError(
                f"archive mode must be one of {ARCHIVE_MODES}, got {mode!r}"
            )
        self.db = db
        self.archive = archive or ShardArchive(db.name, observer=observer)
        self.mode = mode
        self.obs = observer or NULL_OBSERVER
        #: lagged-mode buffer: appends not yet in the archive
        self._pending: List[LogRecord] = []
        #: records whose archived copy was corrupt at truncation time
        #: (they were dropped from the log; only the mirror can help)
        self.corrupt_at_truncate = 0
        self._attached = False
        # the WAL removes listeners by identity, and a bound-method
        # attribute access builds a fresh object every time -- pin the
        # two callbacks so detach() removes what attach() added
        self._append_cb = self._on_append
        self._truncate_cb = self._on_truncate
        self.attach()

    @property
    def lag_records(self) -> int:
        """Records buffered but not yet archived (the RPO exposure)."""
        return len(self._pending)

    def attach(self) -> None:
        if self._attached:
            return
        self.db.wal.add_append_listener(self._append_cb)
        self.db.wal.add_truncate_listener(self._truncate_cb)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.db.wal.remove_append_listener(self._append_cb)
        self.db.wal.remove_truncate_listener(self._truncate_cb)
        self._attached = False

    # -- hooks ---------------------------------------------------------------

    def _on_append(self, record: LogRecord) -> None:
        if self.mode == "sync":
            self.archive.ingest(record)
        else:
            self._pending.append(record)

    def _on_truncate(self, doomed: List[LogRecord]) -> None:
        # Completeness guarantee: the dropped prefix passes through the
        # archive before the log forgets it -- this also heals any gap
        # a crash-point append (durable but never delivered to the
        # append listeners) left behind.
        for record in doomed:
            try:
                self.archive.ingest(record)
            except WalCorruptionError:
                # A record corrupted *in the log* (flip_bit) is about to
                # be dropped; the archive may already hold an intact
                # copy from append time, so this is not data loss yet.
                self.corrupt_at_truncate += 1
        self._drop_pending_below(
            doomed[-1].lsn + 1 if doomed else 0
        )

    def _drop_pending_below(self, lsn: int) -> None:
        if self._pending:
            self._pending = [r for r in self._pending if r.lsn >= lsn]

    # -- lagged-mode control -------------------------------------------------

    def flush(self) -> int:
        """Archive the buffered tail; returns records shipped."""
        shipped = 0
        pending, self._pending = self._pending, []
        for record in pending:
            try:
                if self.archive.ingest(record):
                    shipped += 1
            except WalCorruptionError:
                self.corrupt_at_truncate += 1
        return shipped

    def drop_pending(self) -> int:
        """The disaster took the archiver's buffer too; returns records
        lost (the measured RPO exposure of lagged archiving)."""
        lost = len(self._pending)
        self._pending = []
        return lost

    def catch_up(self) -> int:
        """Pull every retained live-WAL record the archive is missing.

        Heals append-listener gaps from the live log and seals the
        archive to the shard's current durable horizon; backups call
        this before recording their archive position.  Returns records
        newly archived.
        """
        self.flush()
        wal = self.db.wal
        added = 0
        for record in wal.records_from(wal.first_retained_lsn):
            if record.is_intact and self.archive.ingest(record):
                added += 1
        return added


class FleetArchiver:
    """One :class:`WalArchiver` per shard of a fleet."""

    def __init__(self, fleet, mode: str = "sync", observer: Optional[Observer] = None):
        self.fleet = fleet
        self.obs = observer or NULL_OBSERVER
        self.archivers: List[WalArchiver] = [
            WalArchiver(shard, mode=mode, observer=observer)
            for shard in fleet.shards
        ]

    @property
    def archives(self) -> List[ShardArchive]:
        return [archiver.archive for archiver in self.archivers]

    @property
    def mode(self) -> str:
        return self.archivers[0].mode if self.archivers else "sync"

    def set_mode(self, mode: str) -> None:
        if mode not in ARCHIVE_MODES:
            raise ValueError(
                f"archive mode must be one of {ARCHIVE_MODES}, got {mode!r}"
            )
        for archiver in self.archivers:
            archiver.mode = mode

    def flush(self) -> int:
        return sum(archiver.flush() for archiver in self.archivers)

    def drop_pending(self) -> int:
        return sum(archiver.drop_pending() for archiver in self.archivers)

    def catch_up(self) -> int:
        return sum(archiver.catch_up() for archiver in self.archivers)

    def detach(self) -> None:
        for archiver in self.archivers:
            archiver.detach()

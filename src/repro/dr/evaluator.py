"""The ``--eval dr`` evaluator: RPO and RTO, measured.

The run drives the PAIRS workload over a sharded fleet with a
:class:`~repro.dr.archive.FleetArchiver` attached, takes an online
:class:`~repro.dr.backup.BackupJob` backup mid-run (under live load --
the barrier machinery is exercised, not simulated), keeps writing,
then declares a *disaster*: the fleet is abandoned, anything the
archiver had buffered is lost with it, archives are scrubbed, and a
:class:`~repro.dr.restore.RestoreJob` rebuilds a fresh fleet to the
archive's end -- standbys re-bootstrapped -- which then serves more
checked traffic.

Scoring::

    RPO      = acked transfers missing from the restored state
               (0 required with sync archiving)
    RTO      = measured restore wall seconds + modelled virtual
               seconds (image load + WAL replay)
    DR-Score = 1 - RPO / acked   if the history checker finds no
               violation other than the lost updates RPO already
               counts, else 0.0

Chaos faults exercised: ``ARCHIVE_CORRUPT`` flips a bit in an archived
segment mid-run, *after* the backup seal (a seal-time ``catch_up``
re-offer would heal it at the archive; landing it later forces the
pre-restore scrubber to do the repair from the mirror); in ``lagged``
mode an ``ARCHIVE_LAG`` window forces the archiver to buffer from its
start until the disaster, so the buffered tail is the measured,
non-zero RPO -- the cost of asynchronous archiving, priced in lost
transactions.

Virtual time is op-counted at :data:`OP_LATENCY_S` per client call,
the same constant the HA evaluator uses, so fault windows land at
deterministic points for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.dr.archive import ARCHIVE_MODES, FleetArchiver
from repro.dr.backup import BackupJob, BackupManifest
from repro.dr.restore import RestoreJob, RestoreReport
from repro.dr.scrub import ScrubReport, scrub_fleet
from repro.ha.history import HistoryChecker, Violation
from repro.ha.workload import PairWorkload, build_pairs_fleet
from repro.obs import NULL_OBSERVER, Observer
from repro.sim.rng import derive_seed

#: modelled service time of one client operation (virtual seconds) --
#: the same constant as :data:`repro.ha.evaluator.OP_LATENCY_S`
OP_LATENCY_S = 0.004


@dataclass
class DRResult:
    """One DR run: backup under load, disaster, PITR, checked traffic."""

    archive_mode: str
    txns: int
    acked: int
    failed: int
    reads_ok: int
    #: records in all archives when the disaster struck
    archived_records: int = 0
    #: archiver-buffered records the disaster took (lagged mode)
    lag_lost_records: int = 0
    #: ARCHIVE_CORRUPT bit flips injected / scrub outcome
    corrupted_segments: int = 0
    scrub: Optional[ScrubReport] = None
    manifest: Optional[BackupManifest] = None
    restore: Optional[RestoreReport] = None
    #: acked transfers absent from the restored state -- the RPO
    rpo_txns: int = 0
    #: checker violations the RPO does not account for
    violations: List[Violation] = field(default_factory=list)
    #: time-travel anomalies (lost updates, non-monotonic reads across
    #: the disaster cut) that a non-zero RPO fully explains
    rpo_explained_violations: int = 0
    post_transfers: int = 0
    post_reads: int = 0
    #: durability work across the run: source-fleet fsyncs at disaster
    #: time plus the restored fleet's replay/post-traffic fsyncs
    fsyncs: int = 0
    duration_s: float = 0.0
    #: live handle to the run's archives for post-run tooling (the
    #: bench repeats restores from it); not part of the scored result
    archiver: Optional[FleetArchiver] = None

    @property
    def consistent(self) -> bool:
        return not self.violations

    @property
    def rto_wall_s(self) -> float:
        return self.restore.wall_s if self.restore is not None else 0.0

    @property
    def rto_virtual_s(self) -> float:
        return self.restore.virtual_s if self.restore is not None else 0.0

    @property
    def dr_score(self) -> float:
        """1 - RPO/acked, zeroed by any unexplained inconsistency."""
        if not self.consistent:
            return 0.0
        if self.acked == 0:
            return 0.0
        return max(0.0, 1.0 - self.rpo_txns / self.acked)

    def describe(self) -> List[str]:
        lines = [
            f"mode={self.archive_mode} txns={self.txns} acked={self.acked} "
            f"archived={self.archived_records} lag_lost={self.lag_lost_records}",
            f"RPO={self.rpo_txns} txns  "
            f"RTO wall={self.rto_wall_s * 1000:.1f}ms "
            f"virtual={self.rto_virtual_s * 1000:.1f}ms",
            f"violations={len(self.violations)} "
            f"(+{self.rpo_explained_violations} explained by RPO) "
            f"DR={self.dr_score:.4f}",
        ]
        if self.scrub is not None and self.scrub.scanned:
            lines.append(self.scrub.describe())
        lines.extend(str(violation) for violation in self.violations)
        return lines


class DREvaluator:
    """Backup under load, disaster, point-in-time restore, RPO/RTO."""

    def __init__(
        self,
        n_shards: int = 2,
        txns: int = 160,
        n_pairs: int = 4,
        archive_mode: str = "sync",
        backup_frac: float = 0.4,
        lag_frac: float = 0.55,
        corrupt_frac: float = 0.6,
        post_txns: int = 12,
        seed: int = 42,
        observer: Optional[Observer] = None,
    ):
        if archive_mode not in ARCHIVE_MODES:
            raise ValueError(
                f"archive mode must be one of {ARCHIVE_MODES}, "
                f"got {archive_mode!r}"
            )
        self.n_shards = n_shards
        self.txns = txns
        self.n_pairs = n_pairs
        self.archive_mode = archive_mode
        est_duration = txns * 1.5 * OP_LATENCY_S
        self.backup_at_s = backup_frac * est_duration
        self.lag_from_s = lag_frac * est_duration
        self.corrupt_at_s = corrupt_frac * est_duration
        self.est_duration_s = est_duration
        self.post_txns = post_txns
        self.seed = seed
        self.obs = observer or NULL_OBSERVER

    def _plan(self) -> FaultPlan:
        specs = [FaultSpec(
            kind=FaultKind.ARCHIVE_CORRUPT,
            target="archive:0",
            start_s=self.corrupt_at_s,
            duration_s=0.0,
        )]
        if self.archive_mode == "lagged":
            specs.extend(
                FaultSpec(
                    kind=FaultKind.ARCHIVE_LAG,
                    target=f"archive:{shard}",
                    start_s=self.lag_from_s,
                    duration_s=self.est_duration_s,
                )
                for shard in range(self.n_shards)
            )
        return FaultPlan(specs=tuple(specs), seed=self.seed, name="dr-eval")

    def run(self) -> DRResult:
        injector = ChaosInjector(self._plan(), observer=self.obs)
        fleet, pairs = build_pairs_fleet(
            n_shards=self.n_shards, n_pairs=self.n_pairs, name="dr-eval",
        )
        # The archiver always *starts* sync; in lagged mode the chaos
        # window is what degrades it, so the RPO is attributable to a
        # scheduled fault, not to configuration.
        archiver = FleetArchiver(fleet, mode="sync", observer=self.obs)
        workload = PairWorkload(
            fleet, pairs, seed=derive_seed(self.seed, "dr.eval"),
        )
        backup = BackupJob(
            fleet, archiver, chaos=injector, name="dr-eval",
            observer=self.obs,
        )

        result = DRResult(
            archive_mode=self.archive_mode, txns=self.txns,
            acked=0, failed=0, reads_ok=0,
        )
        acked_versions: List[Tuple[int, int]] = []
        manifest: Optional[BackupManifest] = None
        now = 0.0
        for i in range(self.txns):
            self._poll_faults(injector, archiver, result, now)
            if manifest is None and now >= self.backup_at_s:
                manifest = backup.run()
            pair_before = dict(workload._versions)
            if workload.transfer():
                result.acked += 1
                # the one version this call bumped
                pair = next(
                    p for p, v in workload._versions.items()
                    if pair_before.get(p) != v
                )
                acked_versions.append((pair, workload._versions[pair]))
            else:
                result.failed += 1
            now += OP_LATENCY_S
            if i % 2 == 0:
                if workload.read() is not None:
                    result.reads_ok += 1
                now += OP_LATENCY_S
        if manifest is None:
            manifest = backup.run()
        result.manifest = manifest

        # -- the disaster ----------------------------------------------------
        result.lag_lost_records = archiver.drop_pending()
        result.archived_records = sum(
            len(archive) for archive in archiver.archives
        )
        result.scrub = scrub_fleet(fleet, archiver, observer=self.obs)
        target = [archive.last_lsn for archive in archiver.archives]
        restored, report = RestoreJob(
            manifest, archiver, chaos=injector, name="dr-eval",
            observer=self.obs,
        ).run(target=target, ha=True)
        result.restore = report

        # -- RPO: acked transfers the restored state does not hold -----------
        post_workload = PairWorkload(
            restored, pairs, history=workload.history,
            seed=derive_seed(self.seed, "dr.eval.post"),
        )
        post_workload._versions.update(workload._versions)
        restored_stamps = post_workload.final_stamps()
        result.rpo_txns = sum(
            1 for pair, version in acked_versions
            if version > min(restored_stamps[pair])
        )

        # -- liveness + end-to-end history check ------------------------------
        for _ in range(self.post_txns):
            result.post_transfers += 1 if post_workload.transfer() else 0
            result.post_reads += 1 if post_workload.read() is not None else 0
            now += 2 * OP_LATENCY_S
        check = HistoryChecker().check(
            post_workload.history, post_workload.final_stamps()
        )
        # A restore to an earlier point in time reads, to the checker,
        # as updates lost and reads going backwards across the cut.
        # Those anomalies ARE the RPO -- already priced into the score
        # -- so they only count as violations when the measured RPO is
        # zero and cannot explain them.
        explained_kinds = ("lost_update", "non_monotonic_read")
        explained = [
            v for v in check.violations if v.kind in explained_kinds
        ]
        result.rpo_explained_violations = len(explained)
        result.violations = [
            v for v in check.violations if v.kind not in explained_kinds
        ]
        if explained and result.rpo_txns == 0:
            result.violations.extend(explained)
        result.duration_s = now
        result.fsyncs = fleet.fsyncs + restored.fsyncs
        result.archiver = archiver
        if self.obs.enabled:
            self.obs.count("dr.eval.runs")
        return result

    @staticmethod
    def _poll_faults(
        injector: ChaosInjector,
        archiver: FleetArchiver,
        result: DRResult,
        now: float,
    ) -> None:
        for shard, shard_archiver in enumerate(archiver.archivers):
            target = f"archive:{shard}"
            archive = shard_archiver.archive
            if len(archive) and injector.take_archive_corrupt(target, now):
                lsn = (archive.first_lsn + archive.last_lsn) // 2
                if not archive.has(lsn):
                    lsn = archive.last_lsn
                archive.flip_bit(lsn, bit=5)
                result.corrupted_segments += 1
            lagging = injector.archive_lagging(target, now)
            if lagging and shard_archiver.mode == "sync":
                shard_archiver.mode = "lagged"
            elif not lagging and shard_archiver.mode == "lagged":
                shard_archiver.mode = "sync"
                shard_archiver.flush()

"""The DR BENCH baseline builder.

``python -m repro.dr.bench --quick --out DIR`` measures one pinned DR
run -- online backup under the PAIRS workload, disaster, scrub,
point-in-time restore, checked post-traffic -- and writes it as a
``BENCH_dr.json`` trajectory record (schema of
:mod:`repro.perf.trajectory`).  CI regenerates the record and gates it
against the committed baseline with ``python -m repro.perf.compare``.

The shape is pinned so the record stays comparable across commits:

* ``archive_mode = "sync"`` -- every acked transaction is archived
  before the disaster, so ``committed``/``aborted``/``fsyncs`` are
  exact machine-independent integers and the expected RPO is zero
  (any drift in those counters is a real behavior change, which is
  exactly what the comparator's exact-counter gate is for);
* the latency distribution is the *RTO* distribution: the restore is
  re-run :data:`BENCH_RESTORE_REPEATS` times from the same manifest
  and archives (read-only inputs, so repeats are free of side
  effects) and the per-restore wall times become the percentiles.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
from typing import Dict, List, Optional

from repro.dr.evaluator import DREvaluator, DRResult
from repro.dr.restore import RestoreJob
from repro.perf.trajectory import (
    TrajectoryRecord,
    env_fingerprint,
    validate_bench,
    workload_fingerprint,
    write_bench,
)

__all__ = [
    "BENCH_PAIRS",
    "BENCH_RESTORE_REPEATS",
    "BENCH_SHARDS",
    "BENCH_TXNS",
    "bench_record",
    "dr_record",
    "main",
]

#: the pinned shape: matches the evaluator's full defaults
BENCH_SHARDS = 2
BENCH_TXNS = 160
BENCH_PAIRS = 4
#: restores measured for the RTO latency percentiles
BENCH_RESTORE_REPEATS = 5


def _percentile(sorted_samples: List[float], pct: float) -> float:
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1,
        int(round(pct / 100.0 * (len(sorted_samples) - 1))),
    )
    return sorted_samples[index]


def dr_record(
    result: DRResult,
    restore_wall_s: List[float],
    seed: int,
    wall_s: float,
    cpu_s: float,
    peak_rss_kb: float,
    spin_s: Optional[float] = None,
) -> TrajectoryRecord:
    """Shape one measured :class:`DRResult` as a BENCH record.

    ``restore_wall_s`` holds one wall time per measured restore (the
    evaluator's own plus the repeats); they become the latency -- i.e.
    RTO -- percentiles.
    """
    params = {
        "n_shards": BENCH_SHARDS,
        "txns": result.txns,
        "n_pairs": BENCH_PAIRS,
        "archive_mode": result.archive_mode,
        "restore_repeats": len(restore_wall_s),
    }
    samples = sorted(s * 1000.0 for s in restore_wall_s)
    latency: Dict[str, float] = {
        "p50": _percentile(samples, 50.0),
        "p95": _percentile(samples, 95.0),
        "p99": _percentile(samples, 99.0),
        "p999": _percentile(samples, 99.9),
    }
    tps = result.acked / wall_s if wall_s > 0 else 0.0
    return TrajectoryRecord(
        eval_name="dr",
        workload={
            "name": "dr-pairs",
            "seed": seed,
            "arrival": "closed",
            "params": params,
            "fingerprint": workload_fingerprint(params),
        },
        env=env_fingerprint(spin_s),
        # no pilot stage: the iteration count is pinned and the
        # "observed rate" is the measured throughput
        pilot={"txns": result.txns, "rate_tps": tps},
        metrics={
            "txns": result.txns,
            "committed": result.acked,
            "aborted": result.failed,
            "fsyncs": result.fsyncs,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "peak_rss_kb": peak_rss_kb,
            "tps": tps,
            "latency_ms": latency,
            # DR-specific exact counters, carried for the human reader
            # (the comparator gates the standard set above)
            "rpo_txns": result.rpo_txns,
            "archived_records": result.archived_records,
            "rows_restored": (
                result.restore.rows_loaded if result.restore else 0
            ),
            "records_replayed": (
                result.restore.records_replayed if result.restore else 0
            ),
        },
    )


def bench_record(seed: int = 42, spin_s: Optional[float] = None) -> TrajectoryRecord:
    """Measure the pinned DR shape and return its BENCH record."""
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    result = DREvaluator(
        n_shards=BENCH_SHARDS, txns=BENCH_TXNS, n_pairs=BENCH_PAIRS,
        archive_mode="sync", seed=seed,
    ).run()
    wall_s = time.perf_counter() - wall_start
    restore_wall_s = [result.rto_wall_s]
    # Repeat the restore from the same (read-only) manifest + archives
    # to turn the RTO into a distribution instead of one sample.
    archiver = result.archiver
    target = [archive.last_lsn for archive in archiver.archives]
    for repeat in range(BENCH_RESTORE_REPEATS - 1):
        _, report = RestoreJob(
            result.manifest, archiver, name=f"dr-bench-{repeat}",
        ).run(target=target)
        restore_wall_s.append(report.wall_s)
    cpu_s = time.process_time() - cpu_start
    peak_rss_kb = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return dr_record(
        result, restore_wall_s, seed=seed, wall_s=wall_s,
        cpu_s=cpu_s, peak_rss_kb=peak_rss_kb, spin_s=spin_s,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dr.bench",
        description="Measure the pinned DR shape; write BENCH_dr.json.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="accepted for CI symmetry; the DR shape is always pinned",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write BENCH_dr.json to DIR (default: print a summary only)",
    )
    args = parser.parse_args(argv)

    record = bench_record(seed=args.seed)
    problems = validate_bench(record.to_doc())
    if problems:
        print("BENCH record is invalid:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    metrics = record.metrics
    print(
        f"dr bench: {metrics['committed']}/{metrics['txns']} committed, "
        f"RPO={metrics['rpo_txns']} txns, "
        f"RTO p50 {metrics['latency_ms']['p50']:.2f} ms / "
        f"p99 {metrics['latency_ms']['p99']:.2f} ms, "
        f"{metrics['fsyncs']} fsyncs"
    )
    if args.out:
        path = write_bench(record, args.out)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

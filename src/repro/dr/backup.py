"""Online fuzzy backup: per-shard MVCC images cut at a global barrier.

The job never blocks writers.  On each shard it opens a SNAPSHOT
transaction (the *pin*) and images every table with
``snapshot_scan(pin.snapshot_lsn, ...)`` -- transactions committing
while the copy runs are simply invisible to it, and the pin also holds
the vacuum horizon so the chains it reads cannot be collapsed under
it.  The pin's snapshot LSN *is* the shard's barrier LSN: the image
contains exactly the commits at or below it, and restore replays the
archived records above it.

The barrier is **2PC-aware**: the cut is refused while any non-pin
transaction -- active *or* prepared-but-undecided -- holds logged work
on any shard, because such a transaction's records would straddle the
barrier (some below, its decision above) and the image would tear it.
In the testbed's single-threaded protocol the only way to hit this is
a dangling prepared branch left by a coordinator crash; the error says
so and tells the caller to run fleet recovery first.  In-doubt
branches *inside* the replay range are fine -- restore resolves them
with the same commit-iff-any-shard-holds-DECISION rule as
``fleet.recover()``.

Crash points mirror the 2PC coordinator's: :data:`BACKUP_PHASES` names
every phase boundary, :meth:`BackupJob.arm_crash` kills the job there
(:class:`BackupCrash`), :meth:`BackupJob.arm_action` runs an arbitrary
action there (the crash matrix kills shard WALs; the online-ness test
injects a concurrent transfer), and a chaos
:class:`~repro.chaos.injector.ChaosInjector` can fire ``BACKUP_CRASH``
specs at the same boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.plan import FaultKind
from repro.dr.archive import FleetArchiver
from repro.engine.errors import EngineError, SimulatedCrash
from repro.engine.txn import IsolationLevel, Transaction
from repro.engine.types import Schema
from repro.obs import NULL_OBSERVER, Observer

#: backup phase boundaries a crash can be scheduled at
BACKUP_PHASES = ("before_pin", "after_pin", "after_image", "after_manifest")


class BackupCrash(SimulatedCrash):
    """The backup job's process died at a phase boundary (retryable)."""


@dataclass
class TableImage:
    """One table's schema, secondary indexes, and as-of-barrier rows."""

    schema: Schema
    #: (name, columns, unique, ordered) per secondary index
    indexes: List[Tuple[str, Tuple[str, ...], bool, bool]] = field(
        default_factory=list
    )
    rows: List[Tuple[Any, ...]] = field(default_factory=list)


@dataclass
class ShardBackup:
    """One shard's slice of the backup."""

    shard_name: str
    barrier_lsn: int
    tables: List[TableImage] = field(default_factory=list)

    @property
    def rows(self) -> int:
        return sum(len(image.rows) for image in self.tables)


@dataclass
class BackupManifest:
    """Everything restore needs: images, barrier vector, archive seal."""

    name: str
    shards: List[ShardBackup] = field(default_factory=list)
    #: table -> partition column (the router registration to rebuild)
    partition_keys: Dict[str, str] = field(default_factory=dict)
    #: per shard: highest archived LSN when the backup sealed -- the
    #: default point-in-time target (and the proof the archive covered
    #: the whole log above the barrier at backup time)
    archive_end: List[int] = field(default_factory=list)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def barrier(self) -> List[int]:
        return [shard.barrier_lsn for shard in self.shards]

    @property
    def total_rows(self) -> int:
        return sum(shard.rows for shard in self.shards)

    def describe(self) -> List[str]:
        return [
            f"backup {self.name}: {self.n_shards} shards, "
            f"{self.total_rows} rows",
            f"barrier={self.barrier} archive_end={self.archive_end}",
        ]


class BackupJob:
    """One online backup run over a sharded fleet."""

    def __init__(
        self,
        fleet,
        archiver: FleetArchiver,
        chaos=None,
        name: str = "backup",
        max_barrier_attempts: int = 8,
        observer: Optional[Observer] = None,
    ):
        if archiver.fleet is not fleet:
            raise EngineError("archiver is attached to a different fleet")
        self.fleet = fleet
        self.archiver = archiver
        self.chaos = chaos
        self.name = name
        self.max_barrier_attempts = max_barrier_attempts
        self.obs = observer or NULL_OBSERVER
        self._armed: set = set()
        self._armed_actions: Dict[str, List[Callable[[], None]]] = {}
        self.runs = 0

    # -- crash points (mirroring TxnCoordinator) -----------------------------

    def arm_crash(self, phase: str) -> None:
        """One-shot: die when the run reaches ``phase``."""
        if phase not in BACKUP_PHASES:
            raise ValueError(
                f"unknown backup phase {phase!r}; one of {BACKUP_PHASES}"
            )
        self._armed.add(phase)

    def arm_action(self, phase: str, action: Callable[[], None]) -> None:
        """One-shot: run ``action`` when the run reaches ``phase``."""
        if phase not in BACKUP_PHASES:
            raise ValueError(
                f"unknown backup phase {phase!r}; one of {BACKUP_PHASES}"
            )
        self._armed_actions.setdefault(phase, []).append(action)

    @property
    def armed(self) -> bool:
        return bool(self._armed or self._armed_actions)

    def _crash_point(self, phase: str) -> None:
        actions = self._armed_actions.pop(phase, ())
        for action in actions:
            action()
        fire = phase in self._armed
        if fire:
            self._armed.discard(phase)
        elif self.chaos is not None and self.chaos.take_dr_crash(
            FaultKind.BACKUP_CRASH, phase
        ):
            fire = True
        if fire:
            if self.obs.enabled:
                self.obs.event(
                    "dr.backup_crash", "dr", track="dr",
                    attrs={"phase": phase},
                )
            raise BackupCrash(f"backup {self.name} crashed at {phase}")

    # -- the run -------------------------------------------------------------

    def run(self) -> BackupManifest:
        """Take one online backup; returns the manifest."""
        self.runs += 1
        self._crash_point("before_pin")
        pins = self._acquire_pins()
        try:
            self._crash_point("after_pin")
            shards = [
                self._image_shard(shard, pin)
                for shard, pin in zip(self.fleet.shards, pins)
            ]
            self._crash_point("after_image")
        finally:
            for pin in pins:
                self._release_pin(pin)
        manifest = self._seal(shards)
        self._crash_point("after_manifest")
        if self.obs.enabled:
            self.obs.count("dr.backups")
        return manifest

    def _acquire_pins(self) -> List[Transaction]:
        """Open one SNAPSHOT pin per shard at a clean global barrier.

        Refuses (after bounded retries) while any non-pin transaction
        holds logged work on any shard -- prepared branches included --
        because the cut would tear it.
        """
        last_straddlers: Dict[str, List[int]] = {}
        for _attempt in range(self.max_barrier_attempts):
            pins = [
                shard.begin(isolation=IsolationLevel.SNAPSHOT)
                for shard in self.fleet.shards
            ]
            last_straddlers = {}
            for shard, pin in zip(self.fleet.shards, pins):
                # Live transactions with logged work, plus in-doubt
                # prepared branches that lost their handle to a crash.
                # Settled pre-crash losers also linger in the WAL's
                # open-chain map (undo is logical, never logged) but
                # cannot write again, so they do not block the cut.
                in_flight = shard.wal.in_flight_txns()
                straddlers = (
                    (in_flight & set(shard.txns.active))
                    | set(shard.wal.in_doubt_txns())
                ) - {pin.txn_id}
                if straddlers:
                    last_straddlers[shard.name] = sorted(straddlers)
            if not last_straddlers:
                return pins
            for pin in pins:
                self._release_pin(pin)
        raise EngineError(
            f"online backup barrier refused after "
            f"{self.max_barrier_attempts} attempts: transactions with "
            f"logged work would straddle the cut ({last_straddlers}); "
            f"dangling prepared branches must be resolved first -- run "
            f"fleet.recover() and retry the backup"
        )

    @staticmethod
    def _image_shard(shard, pin: Transaction) -> ShardBackup:
        backup = ShardBackup(
            shard_name=shard.name, barrier_lsn=pin.snapshot_lsn
        )
        for table_name in shard.table_names:
            table = shard.table(table_name)
            image = TableImage(
                schema=table.schema,
                indexes=[
                    (index.name, index.columns, index.unique,
                     hasattr(index, "range"))
                    for index in table.secondary_indexes.values()
                ],
            )
            for _rid, row in table.snapshot_scan(pin.snapshot_lsn, pin.txn_id):
                image.rows.append(row)
            backup.tables.append(image)
        return backup

    @staticmethod
    def _release_pin(pin: Transaction) -> None:
        try:
            pin.rollback()
        except SimulatedCrash:
            # The pinned shard died under the job (crash-matrix cells);
            # its session will be aborted by restart recovery, and the
            # presumed-abort rule makes the leaked pin harmless.
            pass

    def _seal(self, shards: List[ShardBackup]) -> BackupManifest:
        """Seal the archive to each shard's durable horizon and verify
        it covers everything above the barrier -- the completeness
        guarantee the restore replay depends on."""
        self.archiver.catch_up()
        manifest = BackupManifest(
            name=f"{self.name}-{self.runs}", shards=shards
        )
        if self.fleet.shards:
            router = self.fleet.router
            manifest.partition_keys = {
                table_name: router.partition_column(table_name)
                for table_name in self.fleet.shards[0].table_names
            }
        for shard, backup, archive in zip(
            self.fleet.shards, shards, self.archiver.archives
        ):
            end = shard.wal.last_lsn
            missing = archive.missing_between(backup.barrier_lsn, end)
            if missing:
                raise EngineError(
                    f"backup seal failed: archive of {shard.name} has "
                    f"gaps above the barrier ({missing[:5]}...)"
                    if len(missing) > 5 else
                    f"backup seal failed: archive of {shard.name} has "
                    f"gaps above the barrier ({missing})"
                )
            manifest.archive_end.append(end)
        return manifest

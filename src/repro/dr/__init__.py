"""Disaster recovery: WAL archiving, online backup, point-in-time restore.

The HA layer (:mod:`repro.ha`) answers *node* loss: a standby holds
every acked record and promotion is fast.  This package answers
*fleet* loss -- the disaster half of cloud-native durability:

* :mod:`repro.dr.archive` -- a WAL archiver hooked on the engine's
  append/pre-truncate listeners, shipping every record (CRC carried
  through) into a redundant :class:`~repro.dr.archive.ShardArchive`
  before checkpoint truncation can drop it;
* :mod:`repro.dr.backup` -- online fuzzy backups: per-shard MVCC
  snapshot images cut at a 2PC-aware global barrier LSN, taken under
  live load without blocking writers;
* :mod:`repro.dr.restore` -- point-in-time restore of a fresh fleet
  from image + archived WAL, with in-doubt 2PC branches resolved by
  the same decision-union rule as fleet recovery, and optional HA
  re-bootstrap of standbys;
* :mod:`repro.dr.scrub` -- CRC verification of archives and live WAL,
  repairing from the redundant copy;
* :mod:`repro.dr.crashmatrix` -- the backup/restore crash-point sweep
  (every phase boundary x {coordinator, shard}), zero tolerated
  violations;
* :mod:`repro.dr.evaluator` -- the ``--eval dr`` RPO/RTO evaluator.

See ``docs/robustness.md`` for the semantics and the RPO/RTO
definitions.
"""

from repro.dr.archive import FleetArchiver, ShardArchive, WalArchiver
from repro.dr.backup import BACKUP_PHASES, BackupCrash, BackupJob, BackupManifest
from repro.dr.evaluator import DREvaluator, DRResult
from repro.dr.restore import (
    RESTORE_PHASES,
    RestoreCrash,
    RestoreJob,
    RestoreReport,
    rebootstrap_standbys,
)
from repro.dr.scrub import ScrubReport, scrub_fleet

__all__ = [
    "BACKUP_PHASES",
    "RESTORE_PHASES",
    "BackupCrash",
    "BackupJob",
    "BackupManifest",
    "DREvaluator",
    "DRResult",
    "FleetArchiver",
    "RestoreCrash",
    "RestoreJob",
    "RestoreReport",
    "ScrubReport",
    "ShardArchive",
    "WalArchiver",
    "rebootstrap_standbys",
    "scrub_fleet",
]

"""Point-in-time restore: backup image + archived WAL -> a live fleet.

Per shard the restore is the standby-bootstrap path pointed at the
archive instead of a live primary: blank the engine
(``reset_for_restore``), rebuild schema and indexes from the manifest,
insert the image rows, stamp the copy as a checkpoint at the barrier
LSN (``install_checkpoint`` positions the pristine WAL at
``barrier + 1`` via ``start_from``), adopt the archived records in
``(barrier, target]`` through ``append_shipped`` (continuity and CRC
enforced for free), then ``crash() + recover()`` -- ARIES redo rebuilds
the MVCC version chains exactly as promotion does.

The fleet-level pass afterwards is the same in-doubt rule as
``fleet.recover()``: a prepared branch inside the replay range commits
iff *any* shard's replayed log holds its DECISION record, else
presumed abort.  A point-in-time target may cut a global transaction's
decision off on one shard but not another -- the union rule is what
keeps the restored fleet atomic anyway.

``target`` is a per-shard LSN vector (default: the manifest's sealed
archive end).  RTO has two parts: the *measured* wall time of the
restore and the *modelled* virtual time (rows loaded at
``load_rate_rows_s`` + records replayed at ``replay_rate_records_s``,
the same constant family as HA promotion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import FaultKind
from repro.dr.archive import FleetArchiver, ShardArchive
from repro.dr.backup import BackupManifest
from repro.engine.database import Database
from repro.engine.errors import EngineError, SimulatedCrash
from repro.ha.replication import WalShipper, bootstrap_standby
from repro.obs import NULL_OBSERVER, Observer
from repro.shard.fleet import ShardedDatabase

#: restore phase boundaries a crash can be scheduled at
RESTORE_PHASES = ("before_load", "after_load", "after_replay", "after_resolve")

#: modelled bulk-load rate of image rows (rows / virtual second)
LOAD_RATE_ROWS_S = 100_000.0
#: modelled WAL replay rate (records / virtual second) -- the same
#: constant the HA promotion time model uses
REPLAY_RATE_RECORDS_S = 50_000.0


class RestoreCrash(SimulatedCrash):
    """The restore job's process died at a phase boundary (retryable)."""


@dataclass
class RestoreReport:
    """One restore run, measured."""

    shards: int = 0
    rows_loaded: int = 0
    records_replayed: int = 0
    barrier: List[int] = field(default_factory=list)
    target: List[int] = field(default_factory=list)
    resolved_commit: int = 0
    resolved_abort: int = 0
    standbys: int = 0
    #: measured wall-clock seconds of the whole restore
    wall_s: float = 0.0
    load_rate_rows_s: float = LOAD_RATE_ROWS_S
    replay_rate_records_s: float = REPLAY_RATE_RECORDS_S

    @property
    def virtual_s(self) -> float:
        """Modelled restore time: bulk load + WAL replay."""
        return (
            self.rows_loaded / self.load_rate_rows_s
            + self.records_replayed / self.replay_rate_records_s
        )

    @property
    def in_doubt(self) -> int:
        return self.resolved_commit + self.resolved_abort

    def describe(self) -> List[str]:
        return [
            f"restored {self.shards} shards: {self.rows_loaded} rows, "
            f"{self.records_replayed} records replayed to {self.target}",
            f"in-doubt resolved: {self.resolved_commit} commit / "
            f"{self.resolved_abort} abort",
            f"RTO: wall={self.wall_s * 1000:.1f}ms "
            f"virtual={self.virtual_s * 1000:.1f}ms "
            f"(standbys={self.standbys})",
        ]


class RestoreJob:
    """Rebuild a fleet from a manifest plus archives."""

    def __init__(
        self,
        manifest: BackupManifest,
        archives,
        chaos=None,
        name: str = "restore",
        observer: Optional[Observer] = None,
        load_rate_rows_s: float = LOAD_RATE_ROWS_S,
        replay_rate_records_s: float = REPLAY_RATE_RECORDS_S,
    ):
        self.manifest = manifest
        if isinstance(archives, FleetArchiver):
            archives = archives.archives
        self.archives: List[ShardArchive] = list(archives)
        if len(self.archives) != manifest.n_shards:
            raise EngineError(
                f"{manifest.n_shards} shards in the manifest but "
                f"{len(self.archives)} archives"
            )
        self.chaos = chaos
        self.name = name
        self.obs = observer or NULL_OBSERVER
        self.load_rate_rows_s = load_rate_rows_s
        self.replay_rate_records_s = replay_rate_records_s
        self._armed: set = set()
        self._armed_actions: Dict[str, List[Callable[[], None]]] = {}
        #: the fleet being restored into -- set as soon as the run
        #: starts, so armed actions can aim at its shards
        self.fleet: Optional[ShardedDatabase] = None

    # -- crash points --------------------------------------------------------

    def arm_crash(self, phase: str) -> None:
        """One-shot: die when the run reaches ``phase``."""
        if phase not in RESTORE_PHASES:
            raise ValueError(
                f"unknown restore phase {phase!r}; one of {RESTORE_PHASES}"
            )
        self._armed.add(phase)

    def arm_action(self, phase: str, action: Callable[[], None]) -> None:
        """One-shot: run ``action`` when the run reaches ``phase``."""
        if phase not in RESTORE_PHASES:
            raise ValueError(
                f"unknown restore phase {phase!r}; one of {RESTORE_PHASES}"
            )
        self._armed_actions.setdefault(phase, []).append(action)

    @property
    def armed(self) -> bool:
        return bool(self._armed or self._armed_actions)

    def _crash_point(self, phase: str) -> None:
        actions = self._armed_actions.pop(phase, ())
        for action in actions:
            action()
        fire = phase in self._armed
        if fire:
            self._armed.discard(phase)
        elif self.chaos is not None and self.chaos.take_dr_crash(
            FaultKind.RESTORE_CRASH, phase
        ):
            fire = True
        if fire:
            if self.obs.enabled:
                self.obs.event(
                    "dr.restore_crash", "dr", track="dr",
                    attrs={"phase": phase},
                )
            raise RestoreCrash(f"restore {self.name} crashed at {phase}")

    # -- the run -------------------------------------------------------------

    def run(
        self,
        target: Optional[Sequence[int]] = None,
        into: Optional[ShardedDatabase] = None,
        ha: bool = False,
        ack_mode: str = "sync",
    ) -> Tuple[ShardedDatabase, RestoreReport]:
        """Restore to ``target`` (per-shard LSN vector; default: the
        sealed archive end).  ``into`` reuses an existing fleet via
        ``reset_for_restore``; otherwise a fresh one is built.  With
        ``ha=True`` every restored shard gets a standby re-bootstrapped
        and a live WAL shipper attached.
        """
        manifest = self.manifest
        if target is None:
            target = list(manifest.archive_end)
        else:
            target = list(target)
        if len(target) != manifest.n_shards:
            raise EngineError(
                f"target vector has {len(target)} entries for "
                f"{manifest.n_shards} shards"
            )
        for shard_backup, lsn in zip(manifest.shards, target):
            if lsn < shard_backup.barrier_lsn:
                raise EngineError(
                    f"target LSN {lsn} precedes the backup barrier "
                    f"{shard_backup.barrier_lsn} on {shard_backup.shard_name}"
                )
        started = time.perf_counter()
        report = RestoreReport(
            shards=manifest.n_shards,
            barrier=list(manifest.barrier),
            target=list(target),
            load_rate_rows_s=self.load_rate_rows_s,
            replay_rate_records_s=self.replay_rate_records_s,
        )
        fleet = into if into is not None else ShardedDatabase(
            manifest.n_shards, name=f"{self.name}d", observer=self.obs
        )
        if fleet.n_shards != manifest.n_shards:
            raise EngineError(
                f"fleet has {fleet.n_shards} shards, manifest has "
                f"{manifest.n_shards}"
            )
        self.fleet = fleet
        self._crash_point("before_load")
        for shard, shard_backup in zip(fleet.shards, manifest.shards):
            report.rows_loaded += self._load_shard(shard, shard_backup)
        for table_name, column in manifest.partition_keys.items():
            fleet.router.register(table_name, column)
        self._crash_point("after_load")
        for shard, shard_backup, archive, to_lsn in zip(
            fleet.shards, manifest.shards, self.archives, target
        ):
            records = archive.records_between(shard_backup.barrier_lsn, to_lsn)
            for record in records:
                shard.wal.append_shipped(record)
            report.records_replayed += len(records)
        self._crash_point("after_replay")
        shard_reports = []
        for shard in fleet.shards:
            shard.crash()
            shard_reports.append(shard.recover())
        fleet_report = fleet._resolve_in_doubt(shard_reports)
        report.resolved_commit = fleet_report.resolved_commit
        report.resolved_abort = fleet_report.resolved_abort
        self._crash_point("after_resolve")
        if ha:
            report.standbys = len(
                rebootstrap_standbys(fleet, ack_mode=ack_mode, observer=self.obs)
            )
        report.wall_s = time.perf_counter() - started
        if self.obs.enabled:
            self.obs.count("dr.restores")
        return fleet, report

    @staticmethod
    def _load_shard(shard: Database, shard_backup) -> int:
        shard.reset_for_restore()
        rows = 0
        for image in shard_backup.tables:
            table = shard.create_table(image.schema)
            for name, columns, unique, ordered in image.indexes:
                shard.create_index(
                    image.schema.table, name, columns,
                    unique=unique, ordered=ordered,
                )
            for row in image.rows:
                table.insert_row(row)
                rows += 1
        shard.install_checkpoint(shard_backup.barrier_lsn)
        return rows


def rebootstrap_standbys(
    fleet: ShardedDatabase,
    ack_mode: str = "sync",
    observer: Optional[Observer] = None,
) -> List[Tuple[Database, WalShipper]]:
    """Re-seed one standby per restored shard and start shipping.

    The HA half of restore: each shard gets a fresh base backup
    (:func:`~repro.ha.replication.bootstrap_standby`) and a live
    :class:`~repro.ha.replication.WalShipper`, so the restored fleet is
    promotable again, not just serving.
    """
    obs = observer or NULL_OBSERVER
    out: List[Tuple[Database, WalShipper]] = []
    for shard in fleet.shards:
        standby = bootstrap_standby(shard, observer=obs)
        shipper = WalShipper(shard, standby, mode=ack_mode, observer=obs)
        out.append((standby, shipper))
    return out

"""OLTP evaluator (the throughput box of paper Figure 1).

Two complementary measurements:

* :meth:`OltpEvaluator.run_functional` -- real transactions against the
  real engine, sweeping concurrency, reporting wall-clock TPS, latency
  percentiles, the per-task mix and abort counts.  This is what CI and
  the examples run; it validates the *benchmark machinery*.
* :meth:`OltpEvaluator.run_modelled` -- the same sweep through the
  cloud architecture model, reporting the paper-scale TPS of Figure 5.

Both paths consume the same :class:`~repro.core.workload.TransactionMix`
and access-distribution settings, so a workload definition is written
once and measured twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.architectures import Architecture
from repro.cloud.mva_model import estimate_throughput
from repro.core.datagen import load_sales_database
from repro.core.manager import OltpResult, WorkloadManager
from repro.core.workload import TransactionMix
from repro.engine.txn import MVCC_LEVELS, IsolationLevel
from repro.sim.rng import derive_seed


@dataclass
class FunctionalPoint:
    """One functional measurement at a given concurrency."""

    concurrency: int
    result: OltpResult

    @property
    def tps(self) -> float:
        return self.result.tps


@dataclass
class ModelledPoint:
    """One modelled measurement at a given concurrency."""

    concurrency: int
    tps: float
    latency_s: float
    bottleneck: str


@dataclass
class OltpReport:
    """Outcome of one evaluator run."""

    mix_label: str
    distribution: str
    functional: List[FunctionalPoint] = field(default_factory=list)
    modelled: List[ModelledPoint] = field(default_factory=list)

    def functional_tps(self) -> Dict[int, float]:
        return {point.concurrency: point.tps for point in self.functional}

    def modelled_tps(self) -> Dict[int, float]:
        return {point.concurrency: point.tps for point in self.modelled}


class OltpEvaluator:
    """Sweeps a transaction mix across concurrency levels."""

    def __init__(
        self,
        mix: TransactionMix,
        scale_factor: int = 1,
        distribution: str = "uniform",
        latest_k: int = 10,
        row_scale: float = 0.002,
        seed: int = 42,
        isolation: Optional[IsolationLevel] = None,
    ):
        self.mix = mix
        self.scale_factor = scale_factor
        self.distribution = distribution
        self.latest_k = latest_k
        self.row_scale = row_scale
        self.seed = seed
        #: engine isolation for the functional runs (None = engine default);
        #: MVCC levels also flip the analytic model's contention discount
        self.isolation = isolation

    def _uses_mvcc(self) -> bool:
        return self.isolation in MVCC_LEVELS

    def run_functional(
        self,
        concurrencies: Optional[List[int]] = None,
        transactions_per_level: int = 2000,
    ) -> OltpReport:
        """Real engine, real SQL; one fresh database per concurrency."""
        report = OltpReport(self.mix.label, self.distribution)
        # Sub-seeds, not the master seed: seeding the data generator and
        # the workload workers with the same value made their access
        # streams correlated (the datagen RNG was identical to worker
        # 0's).  Named derivation keeps each stream independent while
        # the whole run stays a pure function of ``self.seed``.
        datagen_seed = derive_seed(self.seed, "oltp.datagen")
        workload_seed = derive_seed(self.seed, "oltp.workload")
        for concurrency in concurrencies or [1, 4, 16]:
            db, _data = load_sales_database(
                scale_factor=self.scale_factor,
                row_scale=self.row_scale,
                seed=datagen_seed,
            )
            if self.isolation is not None:
                db.default_isolation = self.isolation
            manager = WorkloadManager(
                db,
                self.mix,
                concurrency=concurrency,
                distribution=self.distribution,
                latest_k=self.latest_k,
                seed=workload_seed,
                record_latencies=True,
            )
            result = manager.run_transactions(transactions_per_level)
            report.functional.append(FunctionalPoint(concurrency, result))
        return report

    def run_modelled(
        self,
        arch: Architecture,
        concurrencies: Optional[List[int]] = None,
    ) -> OltpReport:
        """The cloud model's view of the same mix on one architecture."""
        workload = self.mix.to_workload_mix(
            self.scale_factor,
            distribution=self.distribution,
            latest_k=self.latest_k,
            mvcc=self._uses_mvcc(),
        )
        report = OltpReport(self.mix.label, self.distribution)
        for concurrency in concurrencies or [50, 100, 150, 200]:
            estimate = estimate_throughput(arch, workload, concurrency)
            report.modelled.append(
                ModelledPoint(
                    concurrency=concurrency,
                    tps=estimate.tps,
                    latency_s=estimate.latency_s,
                    bottleneck=estimate.bottleneck,
                )
            )
        return report

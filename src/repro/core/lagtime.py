"""Replication lag-time evaluator (paper Sections II-B2 and III-F).

The only evaluator that is *functional end to end*: real transactions
run against a real primary engine database; the committed WAL batches
travel through the simulated replication pipeline of the architecture;
a prober polls the real replica with real queries until the change is
visible.  Lag is the virtual time from commit to visibility.

Three patterns per the paper -- insert lag (T1), update lag (T2) and
delete lag (T4) -- plus arbitrary IUD mixes.  The C-Score is

    C = (avg_insert + avg_update + avg_delete) / n_replicas        (6)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.architectures import Architecture
from repro.cloud.mva_model import estimate_throughput
from repro.cloud.replication import ReplicationPipeline
from repro.core.datagen import load_sales_database
from repro.core.workload import SalesWorkload, TransactionMix
from repro.sim.events import Environment

#: probe polling cadence (virtual seconds)
PROBE_INTERVAL_S = 0.0002


@dataclass
class LagSample:
    kind: str          # insert | update | delete
    commit_s: float
    visible_s: float

    @property
    def lag_s(self) -> float:
        return self.visible_s - self.commit_s


@dataclass
class LagResult:
    """Lag statistics of one IUD mix on one architecture."""

    arch_name: str
    mix_label: str
    n_replicas: int
    samples: List[LagSample] = field(default_factory=list)

    def _avg(self, kind: str) -> float:
        lags = [sample.lag_s for sample in self.samples if sample.kind == kind]
        return sum(lags) / len(lags) if lags else 0.0

    @property
    def insert_lag_s(self) -> float:
        return self._avg("insert")

    @property
    def update_lag_s(self) -> float:
        return self._avg("update")

    @property
    def delete_lag_s(self) -> float:
        return self._avg("delete")

    @property
    def avg_lag_s(self) -> float:
        if not self.samples:
            return 0.0
        return sum(sample.lag_s for sample in self.samples) / len(self.samples)

    @property
    def c_score_s(self) -> float:
        """(insert + update + delete averages) / replicas, Equation (6)."""
        present = [
            self._avg(kind)
            for kind in ("insert", "update", "delete")
            if any(sample.kind == kind for sample in self.samples)
        ]
        if not present:
            return 0.0
        return sum(present) / self.n_replicas


_KIND_BY_TASK = {"T1": "insert", "T2": "update", "T4": "delete"}


class LagTimeEvaluator:
    """Engine-backed DES measurement of replication lag."""

    def __init__(
        self,
        arch: Architecture,
        scale_factor: int = 1,
        row_scale: float = 0.002,
        concurrency: int = 8,
        n_replicas: int = 1,
        transactions: int = 240,
        seed: int = 42,
        distribution: str = "uniform",
        latest_k: int = 10,
        isolation=None,
    ):
        self.arch = arch
        self.scale_factor = scale_factor
        self.row_scale = row_scale
        self.concurrency = concurrency
        self.n_replicas = n_replicas
        self.transactions = transactions
        self.seed = seed
        self.distribution = distribution
        self.latest_k = latest_k
        #: engine isolation the writer transactions run under (None =
        #: engine default); MVCC levels also discount the model's
        #: contention center when pacing workers
        self.isolation = isolation

    def run(self, mix: TransactionMix, label: Optional[str] = None) -> LagResult:
        env = Environment()
        primary, _data = load_sales_database(
            "primary",
            scale_factor=self.scale_factor,
            row_scale=self.row_scale,
            seed=self.seed,
        )
        if self.isolation is not None:
            primary.default_isolation = self.isolation
        pipeline = ReplicationPipeline(env, self.arch, primary, self.n_replicas)
        workload = SalesWorkload(
            primary, mix, distribution=self.distribution,
            latest_k=self.latest_k, seed=self.seed,
        )
        result = LagResult(
            arch_name=self.arch.name,
            mix_label=label or mix.label,
            n_replicas=self.n_replicas,
        )

        # Pace workers at the modelled per-transaction latency so the
        # write rate matches what this architecture would sustain.
        from repro.engine.txn import MVCC_LEVELS

        model_mix = mix.to_workload_mix(
            self.scale_factor, distribution=self.distribution,
            latest_k=self.latest_k, mvcc=self.isolation in MVCC_LEVELS,
        )
        estimate = estimate_throughput(self.arch, model_mix, self.concurrency)
        cycle_s = max(1e-4, estimate.latency_s)
        per_worker = max(1, self.transactions // self.concurrency)

        def prober(kind: str, commit_s: float, predicate) -> object:
            def _probe():
                # Adaptive back-off keeps long lags (sequential replayers)
                # from costing millions of poll events.
                for replica_index in range(self.n_replicas):
                    interval = PROBE_INTERVAL_S
                    while not predicate(pipeline.replicas[replica_index]):
                        yield env.timeout(interval)
                        interval = min(0.02, interval * 1.5)
                result.samples.append(
                    LagSample(kind=kind, commit_s=commit_s, visible_s=env.now)
                )
                return None
            return env.process(_probe())

        def worker(worker_id: int):
            yield env.timeout(cycle_s * worker_id / self.concurrency)
            for _ in range(per_worker):
                yield env.timeout(cycle_s)
                task = workload.next_task()
                commit_s = None
                if task == "T1":
                    ol_id = workload.run_t1()
                    commit_s = env.now
                    prober(
                        "insert",
                        commit_s,
                        lambda replica, key=ol_id: bool(
                            replica.query(
                                "SELECT OL_ID FROM orderline WHERE OL_ID = ?", [key]
                            ).rows
                        ),
                    )
                elif task == "T2":
                    outcome = workload.run_t2()
                    if outcome is None:
                        continue
                    o_id, stamp = outcome
                    commit_s = env.now
                    prober(
                        "update",
                        commit_s,
                        lambda replica, key=o_id, value=stamp: any(
                            row[0] == value
                            for row in replica.query(
                                "SELECT O_UPDATEDDATE FROM orders WHERE O_ID = ?",
                                [key],
                            ).rows
                        ),
                    )
                elif task == "T4":
                    ol_id = workload._rng.randint(1, workload._orderline_high)
                    deleted = primary.execute(
                        "DELETE FROM orderline WHERE OL_ID = ?", [ol_id]
                    ).rowcount
                    if not deleted:
                        continue
                    commit_s = env.now
                    prober(
                        "delete",
                        commit_s,
                        lambda replica, key=ol_id: not replica.query(
                            "SELECT OL_ID FROM orderline WHERE OL_ID = ?", [key]
                        ).rows,
                    )
                else:  # T3 never appears in IUD mixes
                    workload.run_one(task)

        for worker_id in range(self.concurrency):
            env.process(worker(worker_id))
        env.run(until=600.0)
        return result

    def run_patterns(
        self, patterns: Dict[str, TransactionMix]
    ) -> Dict[str, LagResult]:
        return {
            name: self.run(mix, label=name) for name, mix in patterns.items()
        }

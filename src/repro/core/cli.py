"""``cloudybench`` command-line interface.

Runs one evaluator (or the full PERFECT suite) against the configured
architectures and prints paper-style tables::

    cloudybench --eval throughput
    cloudybench --config props.toml --eval elasticity
    cloudybench --eval overall --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.config import BenchConfig
from repro.core.report import TextTable
from repro.core.runner import CloudyBench

EVALUATIONS = (
    "throughput", "pscore", "elasticity", "multitenancy",
    "failover", "lagtime", "chaos", "oltp", "overall", "report",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cloudybench",
        description="CloudyBench: a testbed for cloud-native databases",
    )
    parser.add_argument("--config", help="props TOML file", default=None)
    parser.add_argument(
        "--eval", dest="evaluation", choices=EVALUATIONS, default="throughput",
        help="which evaluator to run",
    )
    parser.add_argument(
        "--arch", action="append", default=None,
        help="architecture name (repeatable); defaults to all five SUTs",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fast preset: SF1 only, fewer concurrencies",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="master seed for workload and chaos RNGs (pins fault plans)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the --eval report markdown to this file (default stdout)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace_event timeline of the run "
             "(open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write a Prometheus-style text snapshot of the run's metrics",
    )
    return parser


def _config(args: argparse.Namespace) -> BenchConfig:
    if args.config:
        config = BenchConfig.from_toml(args.config)
    elif args.quick:
        config = BenchConfig.quick()
    else:
        config = BenchConfig()
    if args.arch:
        config.architectures = list(args.arch)
    if args.seed is not None:
        config.seed = args.seed
    return config


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    bench = CloudyBench(_config(args))
    evaluation = args.evaluation

    if evaluation == "throughput":
        table = TextTable(
            ["arch", "SF", "mode", "concurrency", "TPS"],
            title="Transaction processing throughput (Figure 5)",
        )
        for (arch, sf, mode, con), tps in bench.run_throughput().items():
            table.add_row(arch, sf, mode, con, round(tps))
        table.print()
    elif evaluation == "pscore":
        table = TextTable(
            ["arch", "cost/min", *bench.config.modes, "AVG"],
            title="P-Score (Table V)",
        )
        for row in bench.run_pscore():
            table.add_row(
                row.arch_name,
                round(row.total_cost_per_minute, 4),
                *[round(row.p_by_mode[mode]) for mode in bench.config.modes],
                round(row.p_avg),
            )
        table.print()
    elif evaluation == "elasticity":
        table = TextTable(
            ["arch", "pattern", "mode", "avg TPS", "total cost", "E1"],
            title="Elasticity (Figure 6)",
        )
        for arch, by_pattern in bench.run_elasticity().items():
            for pattern, by_mode in by_pattern.items():
                for mode, result in by_mode.items():
                    table.add_row(
                        arch, pattern, mode, round(result.avg_tps),
                        round(result.total_cost, 4), round(result.e1_score),
                    )
        table.print()
    elif evaluation == "multitenancy":
        table = TextTable(
            ["arch", "pattern", "total TPS", "cost/min", "T-Score"],
            title="Multi-tenancy (Table VII)",
        )
        for arch, by_pattern in bench.run_multitenancy().items():
            for pattern, result in by_pattern.items():
                table.add_row(
                    arch, pattern, round(result.total_tps),
                    round(result.cost_per_minute, 4), round(result.t_score),
                )
        table.print()
    elif evaluation == "failover":
        table = TextTable(
            ["arch", "F(RW)", "F(RO)", "R(RW)", "R(RO)", "total"],
            title="Fail-over (Table VIII), seconds",
        )
        for arch, scores in bench.run_failover().items():
            table.add_row(
                arch, round(scores.f_rw_s, 1), round(scores.f_ro_s, 1),
                round(scores.r_rw_s, 1), round(scores.r_ro_s, 1),
                round(scores.total_s, 1),
            )
        table.print()
    elif evaluation == "lagtime":
        table = TextTable(
            ["arch", "pattern", "insert ms", "update ms", "delete ms", "C ms"],
            title="Replication lag (Section III-F)",
        )
        for arch, by_pattern in bench.run_lagtime().items():
            for pattern, result in by_pattern.items():
                table.add_row(
                    arch, pattern,
                    round(result.insert_lag_s * 1000, 2),
                    round(result.update_lag_s * 1000, 2),
                    round(result.delete_lag_s * 1000, 2),
                    round(result.c_score_s * 1000, 2),
                )
        table.print()
    elif evaluation == "chaos":
        plan = bench.chaos_plan()
        print(f"fault plan {plan.name} (seed={plan.seed}, "
              f"fingerprint {plan.fingerprint()[:16]}):")
        for line in plan.describe():
            print(f"  {line}")
        table = TextTable(
            ["arch", "requests", "goodput", "budget burn", "opens", "recloses"],
            title=f"Availability under chaos (SLO {bench.config.chaos_slo:g})",
        )
        for arch, score in bench.run_chaos().items():
            table.add_row(
                arch, score.requests, round(score.goodput, 4),
                round(score.error_budget_burn, 3),
                score.breaker_opened, score.breaker_reclosed,
            )
        table.print()
    elif evaluation == "oltp":
        table = TextTable(
            ["arch", "requests", "goodput", "commits", "lag p99 ms", "call p99 ms"],
            title="Instrumented OLTP run (fault-free)",
        )
        metrics = bench.observer.metrics
        for arch, score in bench.run_oltp().items():
            commits = metrics.counter("engine.txn.commit").value
            lag_p99 = metrics.histogram("repl.lag_s").percentile(99.0)
            call_p99 = metrics.histogram("client.call_s").percentile(99.0)
            table.add_row(
                arch, score.requests, round(score.goodput, 4), int(commits),
                round(lag_p99 * 1000, 3), round(call_p99 * 1000, 3),
            )
        table.print()
    elif evaluation == "report":
        from repro.core.summary import generate_report

        markdown = generate_report(bench)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(markdown)
            print(f"report written to {args.out}")
        else:
            print(markdown)
    elif evaluation == "overall":
        table = TextTable(
            ["arch", "P", "P*", "E1", "E1*", "R", "F", "E2", "C(ms)", "T", "T*",
             "O", "O*"],
            title="Overall performance (Table IX)",
        )
        for scores in bench.overall().values():
            table.add_row(*scores.as_row())
        table.print()

    if args.trace:
        from repro.obs import write_chrome_trace

        events = write_chrome_trace(bench.observer, args.trace)
        print(f"trace written to {args.trace} ({events} events)")
    if args.metrics_out:
        from repro.obs import write_prometheus

        write_prometheus(bench.observer, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""``cloudybench`` command-line interface.

Runs one evaluator (or the full PERFECT suite) against the configured
architectures and prints paper-style tables::

    cloudybench --eval throughput
    cloudybench --config props.toml --eval elasticity
    cloudybench --eval overall --quick
    cloudybench --eval list            # show every registered evaluator

Evaluators are resolved through the registry in
:mod:`repro.core.evalapi`; each one declares its option schema, which
``--opt name=value`` feeds (e.g. ``--eval pscore --opt n_ro_nodes=2``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.config import BenchConfig
from repro.core.evalapi import evaluator_names, evaluator_specs, get_evaluator
from repro.core.report import TextTable, outcome_table
from repro.core.runner import CloudyBench


def _evaluations() -> tuple:
    """Valid ``--eval`` values: the registry plus the two CLI-only verbs."""
    return (*evaluator_names(), "report", "list")


#: kept as a module-level name for back compatibility with callers that
#: introspect the CLI's evaluation set.
EVALUATIONS = _evaluations()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cloudybench",
        description="CloudyBench: a testbed for cloud-native databases",
    )
    parser.add_argument("--config", help="props TOML file", default=None)
    parser.add_argument(
        "--eval", dest="evaluation", choices=_evaluations(), default="throughput",
        help="which evaluator to run ('list' shows them all)",
    )
    parser.add_argument(
        "--opt", action="append", default=None, metavar="NAME=VALUE",
        help="evaluator option (repeatable); see --eval list for schemas",
    )
    parser.add_argument(
        "--arch", action="append", default=None,
        help="architecture name (repeatable); defaults to all five SUTs",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fast preset: SF1 only, fewer concurrencies",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="master seed for workload and chaos RNGs (pins fault plans)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the --eval report markdown to this file (default stdout)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace_event timeline of the run "
             "(open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write a Prometheus-style text snapshot of the run's metrics",
    )
    parser.add_argument(
        "--bench-out", default=None, metavar="DIR",
        help="with --eval perf (or serve): write BENCH_<eval>.json "
             "trajectory records to this directory",
    )
    return parser


def _config(args: argparse.Namespace) -> BenchConfig:
    if args.config:
        config = BenchConfig.from_toml(args.config)
    elif args.quick:
        config = BenchConfig.quick()
    else:
        config = BenchConfig()
    if args.arch:
        config.architectures = list(args.arch)
    if args.seed is not None:
        config.seed = args.seed
    return config


def _parse_opts(args: argparse.Namespace, eval_name: str) -> dict:
    """Parse ``--opt name=value`` pairs against the evaluator's schema."""
    if not args.opt:
        return {}
    spec = get_evaluator(eval_name)
    by_name = {option.name: option for option in spec.options}
    opts = {}
    for raw in args.opt:
        name, sep, value = raw.partition("=")
        if not sep:
            raise SystemExit(
                f"--opt expects NAME=VALUE, got {raw!r} "
                f"(booleans are spelled e.g. {raw}=true)"
            )
        option = by_name.get(name)
        if option is None:
            known = ", ".join(sorted(by_name)) or "(none)"
            raise SystemExit(
                f"evaluator {eval_name!r} has no option {name!r}; known: {known}"
            )
        try:
            opts[name] = option.type(value)
        except ValueError as error:
            raise SystemExit(f"--opt {name}: {error}") from None
    return opts


def _print_registry() -> None:
    table = TextTable(
        ["evaluator", "options", "summary"], title="Registered evaluators"
    )
    for spec in evaluator_specs():
        options = ", ".join(
            f"{option.name}={option.default!r}" for option in spec.options
        ) or "-"
        table.add_row(spec.name, options, spec.summary)
    table.print()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    evaluation = args.evaluation

    if evaluation == "list":
        _print_registry()
        return 0

    bench = CloudyBench(_config(args))

    if evaluation == "report":
        from repro.core.summary import generate_report

        markdown = generate_report(bench)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(markdown)
            print(f"report written to {args.out}")
        else:
            print(markdown)
    else:
        outcome = bench.run(evaluation, **_parse_opts(args, evaluation))
        if outcome.notes:
            print(outcome.notes)
        outcome_table(outcome).print()
        if args.bench_out:
            if evaluation == "perf":
                from repro.perf.trajectory import write_bench

                for run in outcome.payload.values():
                    path = write_bench(run.to_record(), args.bench_out)
                    print(f"bench record written to {path}")
            elif evaluation == "serve":
                # the committed baseline is comparable only at the
                # pinned shape, so the record comes from the canonical
                # builder, not from the (arbitrarily-swept) outcome
                from repro.perf.trajectory import write_bench
                from repro.serve.bench import bench_record

                path = write_bench(
                    bench_record(seed=bench.config.seed), args.bench_out
                )
                print(f"bench record written to {path}")
            elif evaluation == "dr":
                # same pinned-shape rule as serve: the record comes
                # from the canonical builder
                from repro.dr.bench import bench_record
                from repro.perf.trajectory import write_bench

                path = write_bench(
                    bench_record(seed=bench.config.seed), args.bench_out
                )
                print(f"bench record written to {path}")
            else:
                raise SystemExit(
                    "--bench-out only applies to --eval perf, serve or dr"
                )

    if args.trace:
        from repro.obs import write_chrome_trace

        events = write_chrome_trace(bench.observer, args.trace)
        print(f"trace written to {args.trace} ({events} events)")
    if args.metrics_out:
        from repro.obs import write_prometheus

        write_prometheus(bench.observer, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

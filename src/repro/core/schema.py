"""Sales-microservice schema (paper Section II-A).

Three tables -- CUSTOMER, ORDERS, ORDERLINE -- model the sales service
of a SaaS ERP application.  The scaling model makes ORDERLINE an order
of magnitude larger than CUSTOMER and ORDERS, which share a size of
300 000 rows at scale factor 1.
"""

from __future__ import annotations

from typing import List

from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema

#: rows in CUSTOMER and ORDERS at scale factor 1
BASE_ROWS = 300_000
#: ORDERLINE is an order of magnitude larger
ORDERLINE_MULTIPLIER = 10

CUSTOMER = Schema(
    "CUSTOMER",
    (
        Column("C_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("C_NAME", ColumnType.VARCHAR, length=24, nullable=False),
        Column("C_CREDIT", ColumnType.DECIMAL, nullable=False, default=0.0),
        Column("C_REGION", ColumnType.VARCHAR, length=12),
        Column("C_UPDATEDDATE", ColumnType.TIMESTAMP),
    ),
    primary_key="C_ID",
)

ORDERS = Schema(
    "ORDERS",
    (
        Column("O_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("O_C_ID", ColumnType.INT, nullable=False),
        Column("O_DATE", ColumnType.TIMESTAMP),
        Column("O_STATUS", ColumnType.VARCHAR, length=12, default="NEW"),
        Column("O_TOTALAMOUNT", ColumnType.DECIMAL, default=0.0),
        Column("O_UPDATEDDATE", ColumnType.TIMESTAMP),
    ),
    primary_key="O_ID",
)

ORDERLINE = Schema(
    "ORDERLINE",
    (
        Column("OL_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("OL_O_ID", ColumnType.INT, nullable=False),
        Column("OL_I_ID", ColumnType.INT, nullable=False),
        Column("OL_QUANTITY", ColumnType.INT, default=1),
        Column("OL_AMOUNT", ColumnType.DECIMAL, default=0.0),
    ),
    primary_key="OL_ID",
)

ALL_SCHEMAS: List[Schema] = [CUSTOMER, ORDERS, ORDERLINE]


def create_sales_schema(db: Database) -> None:
    """Create the three sales tables and their secondary indexes."""
    for schema in ALL_SCHEMAS:
        db.create_table(schema)
    # Orderlines are fetched by order id when orders are assembled.
    db.create_index("ORDERLINE", "orderline_o_id", ("OL_O_ID",))
    # Orders are scanned by customer in the order-history flows.
    db.create_index("ORDERS", "orders_c_id", ("O_C_ID",))


def rows_at_scale(scale_factor: int) -> dict:
    """Row counts per table at ``scale_factor``."""
    if scale_factor < 1:
        raise ValueError("scale factor must be >= 1")
    base = BASE_ROWS * scale_factor
    return {
        "CUSTOMER": base,
        "ORDERS": base,
        "ORDERLINE": base * ORDERLINE_MULTIPLIER,
    }

"""Benchmark configuration (the paper's *props* file).

A :class:`BenchConfig` drives the whole testbed.  It can be built in
code, from a dict, or from a TOML props file::

    [workload]
    scale_factors = [1, 10, 100]
    concurrencies = [50, 100, 150, 200]
    distribution = "uniform"

    [elasticity]
    elastic_test_time = 3          # slots per pattern
    modes = ["RO", "RW", "WO"]

    [elasticity.custom_patterns]   # extensibility: add new patterns
    double_peak = [0.0, 1.0, 0.2, 1.0, 0.0]

Unknown keys raise immediately -- a benchmark that silently ignores a
typoed knob measures the wrong thing.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Optional

DEFAULT_ARCHITECTURES = ["aws_rds", "cdb1", "cdb2", "cdb3", "cdb4"]

#: accepted values for the ``isolation`` knob
ISOLATION_NAMES = ("read_committed", "repeatable_read", "snapshot", "serializable")


@dataclass
class BenchConfig:
    """All knobs of the CloudyBench testbed."""

    # -- systems under test
    architectures: List[str] = field(default_factory=lambda: list(DEFAULT_ARCHITECTURES))

    # -- workload
    scale_factors: List[int] = field(default_factory=lambda: [1, 10, 100])
    concurrencies: List[int] = field(default_factory=lambda: [50, 100, 150, 200])
    modes: List[str] = field(default_factory=lambda: ["RO", "RW", "WO"])
    distribution: str = "uniform"
    latest_k: int = 10
    seed: int = 42
    #: engine isolation level for the functional evaluators and the
    #: analytic contention model: "read_committed" (the seed behavior),
    #: "repeatable_read"/"snapshot" (MVCC; what the paper's PostgreSQL-
    #: backed CDBs default to), or "serializable" (strict 2PL).
    isolation: str = "read_committed"

    # -- functional data loading
    row_scale: float = 0.002

    # -- elasticity
    elastic_test_time: int = 3            # slots per pattern
    slot_seconds: float = 60.0
    measure_window_s: float = 600.0
    elastic_modes: List[str] = field(default_factory=lambda: ["RO", "RW", "WO"])
    elastic_tau: Optional[int] = None     # None -> probe saturation, take max
    custom_patterns: Dict[str, List[float]] = field(default_factory=dict)

    # -- multi-tenancy
    tenants: int = 3
    tenant_slots: int = 3
    tenancy_tau_high: Optional[int] = None
    tenancy_tau_low: Optional[int] = None

    # -- fail-over
    failover_concurrency: int = 150
    recovery_threshold: float = 0.95

    # -- replication lag
    lag_concurrency: int = 8
    lag_transactions: int = 240
    lag_replicas: int = 1

    # -- overload / qos
    qos_enabled: bool = True
    overload_multiples: List[float] = field(
        default_factory=lambda: [0.5, 1.0, 1.5, 2.0, 3.0]
    )
    overload_capacity_rps: float = 200.0
    overload_deadline_s: float = 0.6
    overload_duration_s: float = 6.0

    # -- sharding / real scale-out
    shard_counts: List[int] = field(default_factory=lambda: [1, 2, 4])
    shard_cross_ratio: float = 0.1
    shard_txns: int = 300
    shard_driver: str = "inline"

    # -- chaos / availability
    chaos_faults: int = 4
    chaos_duration_s: float = 40.0
    chaos_clients: int = 6
    chaos_replicas: int = 1
    chaos_slo: float = 0.9

    # -- perf trajectory (two-stage measured harness)
    perf_pilot_txns: int = 48
    perf_target_s: float = 1.5
    perf_txns: Optional[int] = None       # None -> pilot-calibrated
    perf_arrival: str = "poisson"         # closed | poisson[:RATE] | burst[:RATE,N]
    perf_profile: bool = True

    # -- serving tier (SQL over sockets)
    serve_connections: List[int] = field(default_factory=lambda: [8, 32, 128])
    serve_txns_per_conn: int = 16
    serve_workers: int = 0                # 0 -> single in-process server
    serve_shards: int = 2
    serve_qos: bool = True
    serve_deadline_s: Optional[float] = None
    serve_max_connections: int = 2048
    serve_max_queue: int = 64
    serve_arrival: str = "closed"
    serve_persona: str = "payment"

    # -- shard HA / replication (the R-Score run)
    ha_shards: int = 2
    ha_pairs: int = 6
    ha_txns: int = 240
    ha_ack_mode: str = "sync"
    ha_lease_s: float = 0.5
    ha_heartbeat_s: float = 0.1

    # -- disaster recovery (the DR-Score run)
    dr_shards: int = 2
    dr_txns: int = 160
    dr_pairs: int = 4
    dr_archive_mode: str = "sync"

    def __post_init__(self) -> None:
        if not self.architectures:
            raise ValueError("configure at least one architecture")
        if any(sf < 1 for sf in self.scale_factors):
            raise ValueError("scale factors must be >= 1")
        if any(con < 1 for con in self.concurrencies):
            raise ValueError("concurrencies must be >= 1")
        bad_modes = set(self.modes) | set(self.elastic_modes)
        if bad_modes - {"RO", "RW", "WO"}:
            raise ValueError(f"modes must be RO/RW/WO, got {sorted(bad_modes)}")
        if self.elastic_test_time < 1:
            raise ValueError("elastic_test_time must be >= 1 slot")
        if self.tenants < 1 or self.tenant_slots < 1:
            raise ValueError("tenants and tenant_slots must be >= 1")
        if self.chaos_faults < 0 or self.chaos_duration_s <= 0:
            raise ValueError("chaos needs >= 0 faults over a positive duration")
        if self.chaos_clients < 1 or self.chaos_replicas < 1:
            raise ValueError("chaos needs >= 1 client and replica")
        if not 0.0 < self.chaos_slo < 1.0:
            raise ValueError("chaos_slo must be in (0, 1)")
        if not self.overload_multiples or any(
            m <= 0 for m in self.overload_multiples
        ):
            raise ValueError("overload_multiples must be positive load multiples")
        if (
            self.overload_capacity_rps <= 0
            or self.overload_deadline_s <= 0
            or self.overload_duration_s <= 0
        ):
            raise ValueError("overload capacity, deadline and duration must be positive")
        if not self.shard_counts or any(n < 1 for n in self.shard_counts):
            raise ValueError("shard_counts must be >= 1 shard each")
        if not 0.0 <= self.shard_cross_ratio <= 1.0:
            raise ValueError("shard_cross_ratio must be in [0, 1]")
        if self.shard_txns < 1:
            raise ValueError("shard_txns must be >= 1")
        if self.shard_driver not in ("inline", "mp"):
            raise ValueError("shard_driver must be 'inline' or 'mp'")
        if self.perf_pilot_txns < 1 or self.perf_target_s <= 0:
            raise ValueError("perf pilot needs >= 1 txn and a positive target")
        if self.perf_txns is not None and self.perf_txns < 1:
            raise ValueError("perf_txns must be >= 1 (or None to calibrate)")
        from repro.perf.openloop import parse_arrival

        parse_arrival(self.perf_arrival)  # raises on a malformed spec
        if not self.serve_connections or any(
            n < 1 for n in self.serve_connections
        ):
            raise ValueError("serve_connections must be >= 1 connection each")
        if self.serve_txns_per_conn < 1:
            raise ValueError("serve_txns_per_conn must be >= 1")
        if self.serve_workers < 0:
            raise ValueError("serve_workers must be >= 0 (0 = in-process)")
        if self.serve_shards < 1:
            raise ValueError("serve_shards must be >= 1")
        if self.serve_deadline_s is not None and self.serve_deadline_s <= 0:
            raise ValueError("serve_deadline_s must be positive (or None)")
        if self.serve_max_connections < 1 or self.serve_max_queue < 1:
            raise ValueError(
                "serve_max_connections and serve_max_queue must be >= 1"
            )
        if self.serve_persona not in ("payment", "reader", "mixed"):
            raise ValueError(
                "serve_persona must be 'payment', 'reader' or 'mixed'"
            )
        parse_arrival(self.serve_arrival)
        if self.ha_shards < 2:
            raise ValueError("ha_shards must be >= 2 (transfers are cross-shard)")
        if self.ha_pairs < 1 or self.ha_txns < 1:
            raise ValueError("ha_pairs and ha_txns must be >= 1")
        if self.ha_ack_mode not in ("sync", "semisync"):
            raise ValueError("ha_ack_mode must be 'sync' or 'semisync'")
        if not 0.0 < self.ha_heartbeat_s < self.ha_lease_s:
            raise ValueError("need 0 < ha_heartbeat_s < ha_lease_s")
        if self.dr_shards < 2:
            raise ValueError("dr_shards must be >= 2 (transfers are cross-shard)")
        if self.dr_pairs < 1 or self.dr_txns < 1:
            raise ValueError("dr_pairs and dr_txns must be >= 1")
        if self.dr_archive_mode not in ("sync", "lagged"):
            raise ValueError("dr_archive_mode must be 'sync' or 'lagged'")
        if self.isolation not in ISOLATION_NAMES:
            raise ValueError(
                f"isolation must be one of {sorted(ISOLATION_NAMES)}, "
                f"got {self.isolation!r}"
            )

    @property
    def uses_mvcc(self) -> bool:
        """True when the configured isolation reads through snapshots."""
        return self.isolation in ("repeatable_read", "snapshot")

    def isolation_level(self):
        """The configured :class:`~repro.engine.txn.IsolationLevel`."""
        from repro.engine.txn import IsolationLevel

        return {
            "read_committed": IsolationLevel.READ_COMMITTED,
            "repeatable_read": IsolationLevel.REPEATABLE_READ,
            "snapshot": IsolationLevel.SNAPSHOT,
            "serializable": IsolationLevel.SERIALIZABLE,
        }[self.isolation]

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "BenchConfig":
        """Build from a (possibly nested) mapping; unknown keys raise."""
        flat: Dict[str, Any] = {}
        known = {f.name for f in fields(cls)}

        def absorb(mapping: Dict[str, Any], path: str = "") -> None:
            for key, value in mapping.items():
                if isinstance(value, dict) and key not in known:
                    absorb(value, f"{path}{key}.")
                elif key in known:
                    flat[key] = value
                else:
                    raise KeyError(f"unknown config key {path}{key!r}")

        absorb(raw)
        return cls(**flat)

    @classmethod
    def from_toml(cls, path: Path | str) -> "BenchConfig":
        with open(path, "rb") as handle:
            return cls.from_dict(tomllib.load(handle))

    # -- convenience presets -----------------------------------------------------

    @classmethod
    def quick(cls) -> "BenchConfig":
        """A fast preset for tests and smoke runs."""
        return cls(
            scale_factors=[1],
            concurrencies=[50, 100],
            elastic_modes=["RW"],
            measure_window_s=180.0,
            lag_transactions=60,
            row_scale=0.001,
            chaos_duration_s=20.0,
            chaos_clients=4,
            overload_multiples=[0.5, 1.0, 2.0],
            overload_duration_s=3.0,
            shard_counts=[1, 2],
            shard_txns=120,
            serve_connections=[4, 8],
            serve_txns_per_conn=8,
            ha_txns=80,
            ha_pairs=4,
            dr_txns=80,
            dr_pairs=3,
            perf_pilot_txns=16,
            perf_txns=256,
        )

"""Performance collector: time series of TPS, allocation and cost.

Every dynamic evaluator (elasticity, fail-over, multi-tenancy) records
into a collector; the metric layer reads averages and integrals out of
it.  The series are step functions over simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.resources import TimeSeries


@dataclass
class CollectorSummary:
    """Window aggregates produced by :meth:`PerformanceCollector.summary`."""

    start_s: float
    end_s: float
    avg_tps: float
    peak_tps: float
    total_cost: float
    avg_vcores: float
    avg_memory_gb: float

    @classmethod
    def zeroed(cls, start_s: float, end_s: float) -> "CollectorSummary":
        """The well-defined summary of nothing: every aggregate is 0.0.

        Returned for empty collectors and degenerate (zero-length or
        inverted) windows, where averages would otherwise divide by a
        zero-length window and the peak would leak values from outside
        the requested range.
        """
        return cls(
            start_s=start_s,
            end_s=end_s,
            avg_tps=0.0,
            peak_tps=0.0,
            total_cost=0.0,
            avg_vcores=0.0,
            avg_memory_gb=0.0,
        )


class PerformanceCollector:
    """Accumulates step-function series during a simulated run."""

    def __init__(self) -> None:
        self.tps = TimeSeries()
        self.vcores = TimeSeries()
        self.memory_gb = TimeSeries()
        self.cost = TimeSeries()          # cumulative dollars
        self.demand = TimeSeries()        # offered concurrency
        self._total_cost = 0.0
        self.events: List[Tuple[float, str]] = []

    def record(
        self,
        time_s: float,
        tps: float,
        vcores: float = 0.0,
        memory_gb: float = 0.0,
        cost_delta: float = 0.0,
        demand: Optional[int] = None,
    ) -> None:
        self.tps.record(time_s, tps)
        self.vcores.record(time_s, vcores)
        self.memory_gb.record(time_s, memory_gb)
        self._total_cost += cost_delta
        self.cost.record(time_s, self._total_cost)
        if demand is not None:
            self.demand.record(time_s, demand)

    def note(self, time_s: float, message: str) -> None:
        """Free-form event annotation (scaling events, failures)."""
        self.events.append((time_s, message))

    @property
    def total_cost(self) -> float:
        return self._total_cost

    def avg_tps(self, start_s: float, end_s: float) -> float:
        return self.tps.average(start_s, end_s)

    def peak_tps(self) -> float:
        return max(self.tps.values, default=0.0)

    def cost_between(self, start_s: float, end_s: float) -> float:
        if len(self.cost) == 0 or end_s <= start_s:
            return 0.0
        return self.cost.value_at(end_s) - self.cost.value_at(start_s)

    def summary(self, start_s: float, end_s: float) -> CollectorSummary:
        if len(self.tps) == 0 or end_s <= start_s:
            return CollectorSummary.zeroed(start_s, end_s)
        return CollectorSummary(
            start_s=start_s,
            end_s=end_s,
            avg_tps=self.tps.average(start_s, end_s),
            peak_tps=self.peak_tps(),
            total_cost=self.cost_between(start_s, end_s),
            avg_vcores=self.vcores.average(start_s, end_s),
            avg_memory_gb=self.memory_gb.average(start_s, end_s),
        )

    def series(self, name: str) -> TimeSeries:
        """Access a series by name ('tps', 'vcores', 'memory_gb', ...)."""
        series = getattr(self, name, None)
        if not isinstance(series, TimeSeries):
            raise KeyError(f"no series named {name!r}")
        return series

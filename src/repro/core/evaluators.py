"""Registered evaluators: one :class:`~repro.core.evalapi.EvalOutcome`
builder per evaluation the testbed supports.

Each runner receives the :class:`~repro.core.runner.CloudyBench`
instance, invokes its cached ``_compute_*`` method, and reshapes the
native result into the shared outcome form (paper-style table rows,
flat scores, timeline events).  The native result rides along as
``payload`` — that is what the legacy ``run_*`` wrappers still return.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.evalapi import EvalOption, EvalOutcome, evaluator, parse_bool

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runner import CloudyBench


def _outcome(bench: "CloudyBench", **kwargs) -> EvalOutcome:
    return EvalOutcome(obs=bench.snapshot(), **kwargs)


@evaluator(
    "throughput",
    title="Transaction processing throughput (Figure 5)",
    summary="TPS over architectures x scale factors x modes x concurrencies",
)
def _throughput(bench: "CloudyBench") -> EvalOutcome:
    data = bench._compute_throughput()
    rows = [
        (arch, sf, mode, con, round(tps))
        for (arch, sf, mode, con), tps in data.items()
    ]
    scores = {
        f"tps.{arch.name}.{mode}": bench.average_tps(arch.name, mode)
        for arch in bench.architectures
        for mode in bench.config.modes
    }
    return _outcome(
        bench, name="throughput",
        title="Transaction processing throughput (Figure 5)",
        headers=("arch", "SF", "mode", "concurrency", "TPS"),
        rows=rows, scores=scores, payload=data,
    )


@evaluator(
    "pscore",
    title="P-Score (Table V)",
    summary="cost-normalised throughput per architecture",
    options=(
        EvalOption("n_ro_nodes", int, 1, "read-only nodes charged per SUT"),
    ),
)
def _pscore(bench: "CloudyBench", n_ro_nodes: int = 1) -> EvalOutcome:
    data = bench._compute_pscore(n_ro_nodes=n_ro_nodes)
    modes = bench.config.modes
    rows = [
        (
            row.arch_name,
            round(row.total_cost_per_minute, 4),
            *(round(row.p_by_mode[mode]) for mode in modes),
            round(row.p_avg),
        )
        for row in data
    ]
    return _outcome(
        bench, name="pscore", title="P-Score (Table V)",
        headers=("arch", "cost/min", *modes, "AVG"),
        rows=rows,
        scores={f"p.{row.arch_name}": row.p_avg for row in data},
        payload=data,
    )


@evaluator(
    "elasticity",
    title="Elasticity (Figure 6)",
    summary="E1 over scaling patterns and workload modes",
)
def _elasticity(bench: "CloudyBench") -> EvalOutcome:
    data = bench._compute_elasticity()
    rows = []
    events = []
    scores = {}
    for arch, by_pattern in data.items():
        e1_values = []
        for pattern, by_mode in by_pattern.items():
            for mode, result in by_mode.items():
                rows.append((
                    arch, pattern, mode, round(result.avg_tps),
                    round(result.total_cost, 4), round(result.e1_score),
                ))
                e1_values.append(result.e1_score)
        scores[f"e1.{arch}"] = (
            sum(e1_values) / len(e1_values) if e1_values else 0.0
        )
        # one representative run's scaling decisions per architecture
        pattern, by_mode = next(iter(by_pattern.items()))
        _mode, result = next(iter(by_mode.items()))
        events.extend(
            (time_s, f"{arch}/{pattern}: {message}")
            for time_s, message in result.collector.events
        )
    return _outcome(
        bench, name="elasticity", title="Elasticity (Figure 6)",
        headers=("arch", "pattern", "mode", "avg TPS", "total cost", "E1"),
        rows=rows, scores=scores, events=events, payload=data,
    )


@evaluator(
    "multitenancy",
    title="Multi-tenancy (Table VII)",
    summary="T-Score under the contention patterns",
)
def _multitenancy(bench: "CloudyBench") -> EvalOutcome:
    data = bench._compute_multitenancy()
    rows = []
    scores = {}
    for arch, by_pattern in data.items():
        t_values = []
        for pattern, result in by_pattern.items():
            rows.append((
                arch, pattern, round(result.total_tps),
                round(result.cost_per_minute, 4), round(result.t_score),
            ))
            t_values.append(result.t_score)
        scores[f"t.{arch}"] = sum(t_values) / len(t_values) if t_values else 0.0
    return _outcome(
        bench, name="multitenancy", title="Multi-tenancy (Table VII)",
        headers=("arch", "pattern", "total TPS", "cost/min", "T-Score"),
        rows=rows, scores=scores, payload=data,
    )


@evaluator(
    "failover",
    title="Fail-over (Table VIII), seconds",
    summary="fault and recovery times for RW/RO interruption",
)
def _failover(bench: "CloudyBench") -> EvalOutcome:
    data = bench._compute_failover()
    rows = [
        (
            arch, round(scores.f_rw_s, 1), round(scores.f_ro_s, 1),
            round(scores.r_rw_s, 1), round(scores.r_ro_s, 1),
            round(scores.total_s, 1),
        )
        for arch, scores in data.items()
    ]
    flat = {}
    for arch, scores in data.items():
        flat[f"f_s.{arch}"] = scores.f_avg_s
        flat[f"r_s.{arch}"] = scores.r_avg_s
    return _outcome(
        bench, name="failover", title="Fail-over (Table VIII), seconds",
        headers=("arch", "F(RW)", "F(RO)", "R(RW)", "R(RO)", "total"),
        rows=rows, scores=flat, payload=data,
    )


@evaluator(
    "lagtime",
    title="Replication lag (Section III-F)",
    summary="per-kind replication lag over the IUD patterns",
)
def _lagtime(bench: "CloudyBench") -> EvalOutcome:
    data = bench._compute_lagtime()
    rows = []
    scores = {}
    for arch, by_pattern in data.items():
        for pattern, result in by_pattern.items():
            rows.append((
                arch, pattern,
                round(result.insert_lag_s * 1000, 2),
                round(result.update_lag_s * 1000, 2),
                round(result.delete_lag_s * 1000, 2),
                round(result.c_score_s * 1000, 2),
            ))
        mixed = by_pattern.get("mixed") or next(iter(by_pattern.values()))
        scores[f"c_ms.{arch}"] = mixed.avg_lag_s * 1000.0
    return _outcome(
        bench, name="lagtime", title="Replication lag (Section III-F)",
        headers=("arch", "pattern", "insert ms", "update ms", "delete ms", "C ms"),
        rows=rows, scores=scores, payload=data,
    )


@evaluator(
    "chaos",
    title="Availability under chaos",
    summary="goodput and error-budget burn under the seeded fault plan",
)
def _chaos(bench: "CloudyBench") -> EvalOutcome:
    plan = bench.chaos_plan()
    data = bench._compute_chaos()
    rows = [
        (
            arch, score.requests, round(score.goodput, 4),
            round(score.error_budget_burn, 3),
            score.breaker_opened, score.breaker_reclosed,
        )
        for arch, score in data.items()
    ]
    notes = "\n".join(
        [
            f"fault plan {plan.name} (seed={plan.seed}, "
            f"fingerprint {plan.fingerprint()[:16]}):",
            *(f"  {line}" for line in plan.describe()),
        ]
    )
    events = [(spec.start_s, f"{spec.kind.value} @ {spec.target}")
              for spec in plan.specs]
    return _outcome(
        bench, name="chaos",
        title=f"Availability under chaos (SLO {bench.config.chaos_slo:g})",
        headers=("arch", "requests", "goodput", "budget burn",
                 "opens", "recloses"),
        rows=rows,
        scores={f"goodput.{arch}": score.goodput for arch, score in data.items()},
        events=events, notes=notes, payload=data,
    )


def _parse_arrival_opt(value) -> str:
    """Validate an arrival spec at option-parse time (clean CLI errors)."""
    from repro.perf.openloop import parse_arrival

    spec = str(value)
    parse_arrival(spec)  # raises ValueError on a malformed spec
    return spec


@evaluator(
    "oltp",
    title="Instrumented OLTP run (fault-free)",
    summary="end-to-end run exercising engine, replication and clients",
    options=(
        EvalOption("arrival", _parse_arrival_opt, None,
                   "client arrival process: closed (default) | "
                   "poisson[:RATE] | burst[:RATE,N]; open arrivals record "
                   "CO-free sojourn times from scheduled starts"),
    ),
)
def _oltp(bench: "CloudyBench", arrival=None) -> EvalOutcome:
    data = bench._compute_oltp(arrival=arrival)
    metrics = bench.observer.metrics
    commits = metrics.counter("engine.txn.commit").value
    lag_p99 = metrics.histogram("repl.lag_s").percentile(99.0)
    call_p99 = metrics.histogram("client.call_s").percentile(99.0)
    rows = [
        (
            arch, score.requests, round(score.goodput, 4), int(commits),
            round(lag_p99 * 1000, 3), round(call_p99 * 1000, 3),
        )
        for arch, score in data.items()
    ]
    scores = {f"goodput.{arch}": score.goodput for arch, score in data.items()}
    for arch, score in data.items():
        if score.openloop_latency_ms:
            scores[f"oltp.openloop_p99_ms.{arch}"] = (
                score.openloop_latency_ms.get("p99", 0.0)
            )
    return _outcome(
        bench, name="oltp", title="Instrumented OLTP run (fault-free)",
        headers=("arch", "requests", "goodput", "commits",
                 "lag p99 ms", "call p99 ms"),
        rows=rows,
        scores=scores,
        payload=data,
    )


@evaluator(
    "overload",
    title="Overload protection (goodput past the knee)",
    summary="goodput-vs-offered-load sweep with the qos stack on or off",
    options=(
        EvalOption(
            "qos", parse_bool, None,
            "admission control / deadlines / retry budgets on (default: "
            "the config's qos_enabled knob)",
        ),
        EvalOption(
            "arrival", str, None,
            "arrival process: poisson (default) | burst[:RATE,N]; RATE is "
            "a multiple of capacity",
        ),
    ),
)
def _overload(bench: "CloudyBench", qos=None, arrival=None) -> EvalOutcome:
    data = bench._compute_overload(qos=qos, arrival=arrival)
    enabled = bench.config.qos_enabled if qos is None else qos
    rows = []
    scores = {}
    for arch, result in data.items():
        for point in result.points:
            rows.append((
                arch, f"x{point.multiple:g}",
                round(point.offered_rps), round(point.goodput_rps, 1),
                point.shed, point.expired, point.timeouts,
                round(point.p99_latency_s * 1000, 1), point.peak_queue_depth,
            ))
        scores[f"d.{arch}"] = result.dscore
    return _outcome(
        bench, name="overload",
        title=f"Overload protection (qos {'on' if enabled else 'off'})",
        headers=("arch", "load", "offered rps", "goodput rps", "shed",
                 "expired", "timeouts", "p99 ms", "queue max"),
        rows=rows, scores=scores, payload=data,
    )


def _parse_ack_mode(value) -> str:
    mode = str(value)
    if mode not in ("sync", "semisync"):
        raise ValueError(f"unknown ack mode {mode!r}; use 'sync' or 'semisync'")
    return mode


@evaluator(
    "ha",
    title="Shard HA (replication + automated failover)",
    summary="availability through a primary kill, zeroed by any history "
            "violation (the R-Score)",
    options=(
        EvalOption("ack_mode", _parse_ack_mode, None,
                   "replication ack mode (default: config ha_ack_mode)"),
        EvalOption("arrival", _parse_arrival_opt, None,
                   "client arrival process: closed (default) | "
                   "poisson[:RATE] | burst[:RATE,N]; open arrivals record "
                   "CO-free sojourn times through the failover"),
    ),
)
def _ha(bench: "CloudyBench", ack_mode=None, arrival=None) -> EvalOutcome:
    result = bench._compute_ha(ack_mode=ack_mode, arrival=arrival)
    rows = [(
        result.ack_mode, result.txns, result.acked,
        f"{result.availability:.4f}",
        result.failovers, result.restarts,
        round(result.unavailable_s * 1000, 1),
        round(result.bound_s * 1000, 1),
        len(result.violations),
        round(result.r_score, 4),
    )]
    scores = {"r": result.r_score}
    if result.openloop_latency_ms:
        scores["ha.openloop_p99_ms"] = result.openloop_latency_ms.get(
            "p99", 0.0
        )
    return _outcome(
        bench, name="ha",
        title="Shard HA (replication + automated failover)",
        headers=("ack", "txns", "acked", "availability", "failovers",
                 "restarts", "unavail ms", "bound ms", "violations",
                 "R-Score"),
        rows=rows,
        scores=scores,
        payload=result,
    )


def _parse_archive_mode(value) -> str:
    mode = str(value)
    if mode not in ("sync", "lagged"):
        raise ValueError(f"unknown archive mode {mode!r}; use 'sync' or 'lagged'")
    return mode


@evaluator(
    "dr",
    title="Disaster recovery (backup + PITR restore)",
    summary="RPO/RTO through backup-under-load, disaster and "
            "point-in-time restore (the DR-Score)",
    options=(
        EvalOption("archive_mode", _parse_archive_mode, None,
                   "WAL archiving mode: sync (RPO=0 expected) | lagged "
                   "(buffered tail lost at disaster, RPO priced in); "
                   "default: config dr_archive_mode"),
    ),
)
def _dr(bench: "CloudyBench", archive_mode=None) -> EvalOutcome:
    result = bench._compute_dr(archive_mode=archive_mode)
    rows = [(
        result.archive_mode, result.txns, result.acked,
        result.archived_records, result.lag_lost_records,
        result.rpo_txns,
        round(result.rto_wall_s * 1000, 1),
        round(result.rto_virtual_s * 1000, 1),
        len(result.violations),
        round(result.dr_score, 4),
    )]
    scores = {
        "dr": result.dr_score,
        "dr.rpo_txns": float(result.rpo_txns),
        "dr.rto_virtual_ms": result.rto_virtual_s * 1000.0,
    }
    return _outcome(
        bench, name="dr",
        title="Disaster recovery (backup + PITR restore)",
        headers=("archive", "txns", "acked", "archived", "lag lost",
                 "RPO txns", "RTO wall ms", "RTO virt ms", "violations",
                 "DR-Score"),
        rows=rows,
        scores=scores,
        payload=result,
    )


def _parse_counts(value) -> list:
    """Parse a comma-separated shard-count list (``"1,2,4"``)."""
    if isinstance(value, (list, tuple)):
        return [int(item) for item in value]
    return [int(item) for item in str(value).split(",") if item.strip()]


def _parse_driver(value) -> str:
    driver = str(value)
    if driver not in ("inline", "mp"):
        raise ValueError(f"unknown driver {driver!r}; use 'inline' or 'mp'")
    return driver


def _parse_transport(value) -> str:
    transport = str(value)
    if transport not in ("inline", "socket"):
        raise ValueError(
            f"unknown transport {transport!r}; use 'inline' or 'socket'"
        )
    return transport


@evaluator(
    "scaleout-real",
    title="Real scale-out (sharded fleet, 2PC)",
    summary="measured fleet txn/s vs shard count and cross-shard ratio, "
            "against the modelled E2 curve",
    options=(
        EvalOption("shards", _parse_counts, None,
                   "comma-separated shard counts (default: config shard_counts)"),
        EvalOption("cross", float, None,
                   "cross-shard transaction ratio in [0, 1]"),
        EvalOption("txns", int, None, "total transactions per point"),
        EvalOption("driver", _parse_driver, None,
                   "'inline' (any cross ratio) or 'mp' (one process per shard)"),
        EvalOption("arrival", _parse_arrival_opt, None,
                   "latency recording: closed (default) | poisson[:RATE] | "
                   "burst[:RATE,N] (inline driver only)"),
        EvalOption("transport", _parse_transport, None,
                   "'inline' (in-process clients, default) or 'socket' "
                   "(the same workload over the serving tier's loopback "
                   "socket; inline driver only)"),
    ),
)
def _scaleout_real(
    bench: "CloudyBench", shards=None, cross=None, txns=None, driver=None,
    arrival=None, transport=None,
) -> EvalOutcome:
    from repro.core.metrics import scale_out_tps

    # validate() fills defaults without coercing (the CLI layer owns
    # string parsing); coerce here so programmatic callers can pass
    # "1,2,4" or [1, 2, 4] interchangeably.
    data = bench._compute_scaleout_real(
        shard_counts=None if shards is None else _parse_counts(shards),
        cross_ratio=None if cross is None else float(cross),
        transactions=None if txns is None else int(txns),
        driver=None if driver is None else _parse_driver(driver),
        arrival=None if arrival is None else str(arrival),
        transport=None if transport is None else _parse_transport(transport),
    )
    # The analytic counterpart: the MVA scale-out curve (E2's substrate)
    # for the first configured architecture under the RW mix.  Measured
    # speedup comes from hash partitioning, modelled speedup from read
    # replicas -- the comparison shows how the testbed's two scale-out
    # mechanisms price added nodes.
    arch = bench.architectures[0]
    workload = bench.workload_mix("RW", bench.config.scale_factors[0])
    model_base = scale_out_tps(arch, workload, 150, 0)
    base = data[min(data)]
    rows = []
    scores = {}
    for n_shards in sorted(data):
        result = data[n_shards]
        speedup = (
            result.tps_node / base.tps_node if base.tps_node > 0 else 0.0
        )
        modelled = (
            scale_out_tps(arch, workload, 150, n_shards - 1) / model_base
            if model_base > 0 else 0.0
        )
        rows.append((
            n_shards, result.driver, f"{result.cross_ratio:.0%}",
            result.committed, result.aborted, result.cross_committed,
            round(result.tps_node), round(speedup, 2), round(modelled, 2),
            round(result.fsyncs / max(1, result.committed), 2),
        ))
        scores[f"scaleout.tps@{n_shards}"] = result.tps_node
        scores[f"scaleout.speedup@{n_shards}"] = speedup
        if result.openloop_latency_ms:
            scores[f"scaleout.openloop_p99_ms@{n_shards}"] = (
                result.openloop_latency_ms.get("p99", 0.0)
            )
    return _outcome(
        bench, name="scaleout-real",
        title="Real scale-out (sharded fleet, 2PC)",
        headers=("shards", "driver", "cross", "committed", "aborted",
                 "2PC commits", "node TPS", "speedup", "modelled",
                 "fsyncs/txn"),
        rows=rows, scores=scores, payload=data,
    )


def _parse_persona(value) -> str:
    persona = str(value)
    if persona not in ("payment", "reader", "mixed"):
        raise ValueError(
            f"unknown persona {persona!r}; use 'payment', 'reader' or 'mixed'"
        )
    return persona


@evaluator(
    "serve",
    title="Serving tier (SQL over sockets)",
    summary="measured TPS / p50 / p99 vs connection count through the "
            "asyncio SQL server; optional qos-on/off knee comparison",
    options=(
        EvalOption("connections", _parse_counts, None,
                   "comma-separated connection counts "
                   "(default: config serve_connections)"),
        EvalOption("txns", int, None, "transactions per connection"),
        EvalOption("qos", parse_bool, None,
                   "admission queue + deadline shedding on "
                   "(default: config serve_qos)"),
        EvalOption("workers", int, None,
                   "SO_REUSEPORT server processes "
                   "(0 = single in-process server, deterministic)"),
        EvalOption("arrival", _parse_arrival_opt, None,
                   "client arrival process: closed (default) | "
                   "poisson[:RATE] | burst[:RATE,N]"),
        EvalOption("persona", _parse_persona, None,
                   "load persona: payment | reader | mixed"),
        EvalOption("rate", float, None,
                   "total offered rate for open arrivals (txns/s)"),
        EvalOption("deadline", float, None,
                   "per-request deadline in seconds (expired work is shed)"),
        EvalOption("knee", parse_bool, False,
                   "also drive a qos-on vs qos-off overload pair past the "
                   "knee at the deepest connection count"),
    ),
)
def _serve(
    bench: "CloudyBench", connections=None, txns=None, qos=None,
    workers=None, arrival=None, persona=None, rate=None, deadline=None,
    knee=False,
) -> EvalOutcome:
    txns_opt = None if txns is None else int(txns)
    workers_opt = None if workers is None else int(workers)
    persona_opt = None if persona is None else _parse_persona(persona)
    data = bench._compute_serve(
        connections=None if connections is None else _parse_counts(connections),
        txns_per_conn=txns_opt,
        qos=None if qos is None else parse_bool(qos),
        workers=workers_opt,
        arrival=None if arrival is None else str(arrival),
        persona=persona_opt,
        rate_tps=None if rate is None else float(rate),
        deadline_s=None if deadline is None else float(deadline),
    )

    def _row(count, result):
        return (
            count, "on" if result.qos else "off", result.driver,
            result.offered, result.committed,
            result.shed + result.expired, result.errors,
            round(result.tps), round(result.goodput_tps),
            round(result.latency_ms.get("p50", 0.0), 2),
            round(result.latency_ms.get("p99", 0.0), 2),
        )

    rows = []
    scores = {}
    for count in sorted(data):
        result = data[count]
        rows.append(_row(count, result))
        scores[f"serve.tps@{count}"] = result.tps
        scores[f"serve.goodput@{count}"] = result.goodput_tps
        scores[f"serve.p99_ms@{count}"] = result.latency_ms.get("p99", 0.0)
    notes = ""
    if parse_bool(knee):
        # Overload the deepest point at ~2.5x its measured closed-loop
        # service rate with a tight deadline and a short admission queue
        # -- the regime where shedding pays -- once with the qos stack
        # on, once off.  The ratio is the end-to-end D-Score analogue
        # measured over a real socket.
        deepest = max(data)
        knee_rate = max(data[deepest].tps, 1.0) * 2.5
        knee_deadline = 0.1 if deadline is None else float(deadline)
        pair = {}
        for flag in (True, False):
            run = bench._compute_serve(
                connections=[deepest],
                txns_per_conn=txns_opt,
                qos=flag,
                workers=workers_opt,
                arrival=f"poisson:{knee_rate:.6g}",
                persona=persona_opt,
                deadline_s=knee_deadline,
                max_queue=8,
            )[deepest]
            pair[flag] = run
            rows.append(_row(deepest, run))
        ratio = pair[True].goodput_tps / max(pair[False].goodput_tps, 1e-9)
        scores["serve.knee_ratio"] = ratio
        notes = (
            f"knee @ {deepest} conns: offered {knee_rate:.0f} tps poisson, "
            f"deadline {knee_deadline:g}s -> qos-on goodput "
            f"{pair[True].goodput_tps:.1f} vs off "
            f"{pair[False].goodput_tps:.1f} ({ratio:.2f}x)"
        )
    return _outcome(
        bench, name="serve", title="Serving tier (SQL over sockets)",
        headers=("conns", "qos", "driver", "offered", "committed",
                 "shed+exp", "errors", "TPS", "goodput", "p50 ms", "p99 ms"),
        rows=rows, scores=scores, notes=notes, payload=data,
    )


def _parse_workloads(value) -> list:
    """Parse a comma-separated perf workload list (``"oltp,shard"``)."""
    from repro.perf.harness import perf_workload_names

    if isinstance(value, (list, tuple)):
        names = [str(item) for item in value]
    else:
        names = [item.strip() for item in str(value).split(",") if item.strip()]
    known = perf_workload_names()
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValueError(f"unknown perf workloads {unknown}; one of {known}")
    return names


@evaluator(
    "perf",
    title="Perf trajectory (two-stage measured harness)",
    summary="pilot-calibrated measured runs: wall/CPU/RSS, CO-free tail "
            "latency, subsystem cost breakdown, BENCH_<eval>.json records",
    options=(
        EvalOption("workloads", _parse_workloads, None,
                   "comma-separated perf workloads (default: all)"),
        EvalOption("arrival", _parse_arrival_opt, None,
                   "arrival spec: closed | poisson[:RATE] | burst[:RATE,N]"),
        EvalOption("txns", int, None,
                   "fixed measured iteration count (default: config/pilot)"),
        EvalOption("profile", parse_bool, None,
                   "run the subsystem-profile pass (default: config)"),
    ),
)
def _perf(
    bench: "CloudyBench", workloads=None, arrival=None, txns=None,
    profile=None,
) -> EvalOutcome:
    data = bench._compute_perf(
        workloads=None if workloads is None else _parse_workloads(workloads),
        arrival=None if arrival is None else str(arrival),
        txns=None if txns is None else int(txns),
        profile=None if profile is None else parse_bool(profile),
    )
    rows = []
    scores = {}
    for name in sorted(data):
        run = data[name]
        latency = run.service.latency_summary_ms()
        sojourn = (
            run.openloop.latency_summary_ms() if run.openloop is not None
            else {}
        )
        top = ""
        if run.profile is not None:
            shares = {
                k: v for k, v in run.profile.shares().items() if k != "other"
            }
            if shares:
                name_top, share_top = max(shares.items(), key=lambda kv: kv[1])
                top = f"{name_top} {share_top:.0%}"
        rows.append((
            name, run.arrival.describe(), run.txns, run.committed,
            run.aborted, round(run.tps), round(run.wall_s, 3),
            round(run.cpu_s, 3),
            round(latency.get("p50", 0.0), 3),
            round(latency.get("p99", 0.0), 3),
            round(sojourn.get("p99", 0.0), 3) if sojourn else "-",
            top or "-",
        ))
        scores[f"perf.tps.{name}"] = run.tps
        scores[f"perf.p99_ms.{name}"] = latency.get("p99", 0.0)
        if sojourn:
            scores[f"perf.openloop_p99_ms.{name}"] = sojourn.get("p99", 0.0)
    return _outcome(
        bench, name="perf",
        title="Perf trajectory (two-stage measured harness)",
        headers=("workload", "arrival", "txns", "committed", "aborted",
                 "TPS", "wall s", "CPU s", "p50 ms", "p99 ms",
                 "open p99 ms", "top subsystem"),
        rows=rows, scores=scores, payload=data,
    )


@evaluator(
    "overall",
    title="Overall performance (Table IX)",
    summary="the unified PERFECT score card",
    options=(
        EvalOption("duration_s", float, 300.0, "billing window in seconds"),
    ),
)
def _overall(bench: "CloudyBench", duration_s: float = 300.0) -> EvalOutcome:
    data = bench._compute_overall(duration_s=duration_s)
    headers = ["arch", "P", "P*", "E1", "E1*", "R", "F", "E2",
               "C(ms)", "T", "T*", "O", "O*"]
    # extra score columns append after O* when the corresponding
    # evaluator has run: "D" is the overload D-Score, "R-HA" the shard
    # HA R-Score ("R" proper is the failover recovery time), "DR" the
    # disaster-recovery score
    extra_columns = [
        (key, header)
        for key, header in (("d", "D"), ("r", "R-HA"), ("dr", "DR"))
        if any(key in scores.extras for scores in data.values())
    ]
    headers.extend(header for _key, header in extra_columns)
    rows = []
    flat = {}
    for arch, scores in data.items():
        row = list(scores.as_row())
        for key, _header in extra_columns:
            value = scores.extras.get(key)
            row.append("-" if value is None else round(value, 3))
        rows.append(tuple(row))
        flat[f"o.{arch}"] = scores.o
        flat[f"o_star.{arch}"] = scores.o_star
    return _outcome(
        bench, name="overall", title="Overall performance (Table IX)",
        headers=tuple(headers), rows=rows, scores=flat, payload=data,
    )

"""CloudyBench core: workloads, evaluators, metrics, and the testbed.

Public entry points:

* :class:`~repro.core.runner.CloudyBench` -- the end-to-end testbed.
* :class:`~repro.core.config.BenchConfig` -- the props file.
* :mod:`repro.core.workload` -- T1-T4 and the throughput patterns.
* The evaluators: elasticity, multi-tenancy, fail-over, lag time.
* :mod:`repro.core.metrics` -- the PERFECT scores and the O-Score.
"""

from repro.core.config import BenchConfig
from repro.core.datagen import DataGenerator, load_sales_database, nominal_bytes
from repro.core.evalapi import (
    EvalOption,
    EvalOutcome,
    EvaluatorSpec,
    evaluator_names,
    evaluator_specs,
    get_evaluator,
)
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator
from repro.core.failover import FailOverEvaluator
from repro.core.lagtime import LagTimeEvaluator
from repro.core.manager import WorkloadManager
from repro.core.metrics import PerfectScores, o_score, p_score
from repro.core.multitenancy import TENANCY_PATTERNS, MultiTenancyEvaluator
from repro.core.oltp import OltpEvaluator
from repro.core.runner import CloudyBench
from repro.core.summary import generate_report
from repro.core.schema import create_sales_schema
from repro.core.sqlreader import SqlReader, SqlStmts
from repro.core.workload import (
    LAG_PATTERNS,
    READ_ONLY,
    READ_WRITE,
    THROUGHPUT_PATTERNS,
    WRITE_ONLY,
    SalesWorkload,
    TransactionMix,
)

__all__ = [
    "BenchConfig",
    "CloudyBench",
    "DataGenerator",
    "ELASTIC_PATTERNS",
    "ElasticityEvaluator",
    "EvalOption",
    "EvalOutcome",
    "EvaluatorSpec",
    "evaluator_names",
    "evaluator_specs",
    "get_evaluator",
    "FailOverEvaluator",
    "LAG_PATTERNS",
    "LagTimeEvaluator",
    "MultiTenancyEvaluator",
    "OltpEvaluator",
    "PerfectScores",
    "READ_ONLY",
    "READ_WRITE",
    "SalesWorkload",
    "SqlReader",
    "SqlStmts",
    "TENANCY_PATTERNS",
    "THROUGHPUT_PATTERNS",
    "TransactionMix",
    "WRITE_ONLY",
    "WorkloadManager",
    "create_sales_schema",
    "load_sales_database",
    "nominal_bytes",
    "generate_report",
    "o_score",
    "p_score",
]

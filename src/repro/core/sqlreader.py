"""Decoupled SQL statement files (``stmt_db.toml``).

CloudyBench keeps all workload SQL in a TOML file so new transactions
can be added without touching the workload manager (paper Section II's
extensibility story).  :class:`SqlReader` parses the file and
:class:`SqlStmts` serves the statements by task id.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: the statement file shipped with the benchmark
DEFAULT_STMT_FILE = Path(__file__).with_name("stmt_db.toml")

VALID_PATTERNS = ("read_only", "read_write", "write_only", "deletion")


@dataclass(frozen=True)
class TransactionSpec:
    """One transaction as declared in the statement file."""

    task: str          # "T1" .. "T4" (or any new id)
    name: str          # human-readable ("Order Payment")
    pattern: str       # read_only | read_write | write_only | deletion
    statements: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.pattern not in VALID_PATTERNS:
            raise ValueError(
                f"transaction {self.task}: pattern must be one of "
                f"{VALID_PATTERNS}, got {self.pattern!r}"
            )
        if not self.statements:
            raise ValueError(f"transaction {self.task} has no statements")


class SqlReader:
    """Parses a statement TOML file into :class:`TransactionSpec` objects."""

    def __init__(self, path: Optional[Path | str] = None):
        self.path = Path(path) if path is not None else DEFAULT_STMT_FILE

    def read(self) -> Dict[str, TransactionSpec]:
        with open(self.path, "rb") as handle:
            raw = tomllib.load(handle)
        specs: Dict[str, TransactionSpec] = {}
        for task, body in raw.items():
            if not isinstance(body, dict):
                raise ValueError(f"entry {task!r} is not a table")
            specs[task] = TransactionSpec(
                task=task,
                name=body.get("name", task),
                pattern=body["pattern"],
                statements=tuple(body["statements"]),
            )
        if not specs:
            raise ValueError(f"statement file {self.path} defines no transactions")
        return specs


class SqlStmts:
    """Statement registry with task-id lookup."""

    def __init__(self, specs: Optional[Dict[str, TransactionSpec]] = None):
        self._specs = specs if specs is not None else SqlReader().read()

    @classmethod
    def from_file(cls, path: Path | str) -> "SqlStmts":
        return cls(SqlReader(path).read())

    @property
    def tasks(self) -> List[str]:
        return list(self._specs)

    def spec(self, task: str) -> TransactionSpec:
        try:
            return self._specs[task]
        except KeyError:
            raise KeyError(
                f"unknown transaction {task!r}; known: {self.tasks}"
            ) from None

    def statements(self, task: str) -> Tuple[str, ...]:
        return self.spec(task).statements

    def add(self, spec: TransactionSpec) -> None:
        """Register a new transaction at runtime (extensibility hook)."""
        if spec.task in self._specs:
            raise ValueError(f"transaction {spec.task!r} already registered")
        self._specs[spec.task] = spec

"""The CloudyBench OLTP workload (paper Table II).

Four transactions against the sales microservice:

* **T1 New Orderline** (write-only): insert one orderline.
* **T2 Order Payment** (read-write): read an order, mark it paid,
  credit the customer.
* **T3 Order Status** (read-only): point-read an order.
* **T4 Orderline Deletion**: delete one orderline.

Each transaction exists in two forms that must stay in sync:

* a **functional executor** that runs the real SQL from
  ``stmt_db.toml`` against the engine (used by the lag-time evaluator,
  the examples, and the tests), and
* a **resource footprint** (:class:`~repro.cloud.workload_model.
  TxnClass`) feeding the analytical throughput model (used by the
  modelled evaluations: Figures 5/6/8, Tables V-IX).

The footprint constants were calibrated once against the per-pattern
average TPS implied by the paper's Table V (P-Score x cost); see
EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cloud.workload_model import TxnClass, WorkloadMix
from repro.core.client import Client, EngineClient
from repro.core.datagen import nominal_bytes
from repro.core.distributions import KeyDistribution, UniformDistribution, make_distribution
from repro.core.schema import BASE_ROWS
from repro.core.resilience import retry_transaction
from repro.core.sqlreader import SqlStmts
from repro.engine.database import Database
from repro.engine.errors import EngineError

#: calibrated resource footprints of the four transactions
TXN_CLASSES: Dict[str, TxnClass] = {
    "T1": TxnClass(
        "T1", cpu_s=0.215e-3, page_reads=1, page_writes=1,
        log_bytes=200, rows_written=1, statements=1,
    ),
    "T2": TxnClass(
        "T2", cpu_s=1.6e-3, page_reads=3, page_writes=2,
        log_bytes=400, rows_written=2, rows_updated=2, statements=3,
    ),
    "T3": TxnClass(
        "T3", cpu_s=0.18e-3, page_reads=2, page_writes=0,
        log_bytes=0, statements=1,
    ),
    "T4": TxnClass(
        "T4", cpu_s=0.19e-3, page_reads=1, page_writes=1,
        log_bytes=150, rows_written=1, statements=1,
    ),
}


@dataclass(frozen=True)
class TransactionMix:
    """Percentages of T1:T2:T3:T4 (need not sum to 100; they are weights)."""

    t1: float = 0.0
    t2: float = 0.0
    t3: float = 0.0
    t4: float = 0.0

    def __post_init__(self) -> None:
        weights = (self.t1, self.t2, self.t3, self.t4)
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError(f"invalid transaction mix {weights}")

    @property
    def weights(self) -> Tuple[Tuple[str, float], ...]:
        return tuple(
            (task, weight)
            for task, weight in (
                ("T1", self.t1), ("T2", self.t2), ("T3", self.t3), ("T4", self.t4)
            )
            if weight > 0
        )

    @property
    def label(self) -> str:
        return f"({self.t1:g}:{self.t2:g}:{self.t3:g})" + (
            f"+d{self.t4:g}" if self.t4 else ""
        )

    def to_workload_mix(
        self,
        scale_factor: int = 1,
        distribution: str = "uniform",
        latest_k: int = 10,
        mvcc: bool = False,
    ) -> WorkloadMix:
        """Map this mix onto the analytical model's workload abstraction."""
        working_set = nominal_bytes(scale_factor)
        if distribution == "uniform":
            hot_fraction, hot_bytes = 0.0, 0.0
        else:
            probe = make_distribution(
                distribution, BASE_ROWS * scale_factor, random.Random(0), latest_k
            )
            hot_fraction = probe.hot_fraction
            rows = BASE_ROWS * scale_factor
            hot_bytes = max(1.0, probe.hot_keys / rows * working_set)
        classes = tuple(
            (TXN_CLASSES[task], weight) for task, weight in self.weights
        )
        return WorkloadMix(
            name=f"sales{self.label}/{distribution}/SF{scale_factor}",
            classes=classes,
            working_set_bytes=working_set,
            hot_fraction=hot_fraction,
            hot_set_bytes=hot_bytes,
            mvcc=mvcc,
        )


#: the paper's three throughput patterns, (t1:t2:t3)
READ_ONLY = TransactionMix(t3=100)
READ_WRITE = TransactionMix(t1=15, t2=5, t3=80)
WRITE_ONLY = TransactionMix(t1=100)
THROUGHPUT_PATTERNS: Dict[str, TransactionMix] = {
    "RO": READ_ONLY,
    "RW": READ_WRITE,
    "WO": WRITE_ONLY,
}


def iud_mix(insert: float, update: float, delete: float) -> TransactionMix:
    """Lag-time mixes: insert -> T1, update -> T2, delete -> T4."""
    return TransactionMix(t1=insert, t2=update, t4=delete)


#: Section III-F lag-time patterns
LAG_PATTERNS: Dict[str, TransactionMix] = {
    "mixed": iud_mix(60, 30, 10),
    "insert": iud_mix(100, 0, 0),
    "update": iud_mix(0, 100, 0),
    "delete": iud_mix(0, 0, 100),
}


class SalesWorkload:
    """Functional executor of T1-T4 against a real engine database.

    All statement traffic goes through a transport-agnostic
    :class:`~repro.core.client.Client` (default: an in-process
    :class:`~repro.core.client.EngineClient` over ``db``), so the same
    four transaction bodies run unchanged over the socket transport.
    ``db`` is still required for key-space setup (row counts).
    """

    def __init__(
        self,
        db: Database,
        mix: TransactionMix,
        distribution: str = "uniform",
        latest_k: int = 10,
        seed: int = 42,
        stmts: Optional[SqlStmts] = None,
        client: Optional[Client] = None,
    ):
        self.db = db
        self.client: Client = client if client is not None else EngineClient(db)
        self.client.connect()
        self.mix = mix
        self.stmts = stmts or SqlStmts()
        self._rng = random.Random(seed)
        order_rows = db.table("ORDERS").row_count
        customer_rows = db.table("CUSTOMER").row_count
        self._order_keys: KeyDistribution = make_distribution(
            distribution, max(1, order_rows), self._rng, latest_k
        )
        self._customer_keys = UniformDistribution(max(1, customer_rows), self._rng)
        self._orderline_high = db.table("ORDERLINE").row_count
        self._clock = 1_700_000_000.0
        self.executed: Dict[str, int] = {task: 0 for task in ("T1", "T2", "T3", "T4")}
        self.aborted = 0
        self.retry_attempts = 3

    #: optional per-statement deadline (anything with ``.expired()``),
    #: propagated into the engine's cancellation points; clients set
    #: it per call via :meth:`run_one`'s ``deadline`` argument.  Stored
    #: on the client so the transport (not the workload) owns it.
    @property
    def deadline(self):
        return self.client.deadline

    @deadline.setter
    def deadline(self, value) -> None:
        self.client.deadline = value

    # -- transaction bodies -----------------------------------------------------

    def _now(self) -> float:
        self._clock += 0.001
        return self._clock

    def run_t1(self) -> Optional[int]:
        """Insert a new orderline; returns nothing observable (autocommit)."""
        (statement,) = self.stmts.statements("T1")
        o_id = self._order_keys.next_key()
        self.client.execute(
            statement,
            [o_id, self._rng.randint(1, 100_000), self._rng.randint(1, 10),
             round(self._rng.uniform(1, 100), 2)],
        )
        self._orderline_high += 1
        return self._orderline_high

    def run_t2(self) -> Optional[Tuple[int, float]]:
        """Order payment; returns ``(o_id, stamp)`` or ``None`` if the
        target order vanished.  The stamp is the unique timestamp written
        to ``O_UPDATEDDATE`` -- the lag prober matches on it.
        """
        select, update_order, update_customer = self.stmts.statements("T2")
        o_id = self._order_keys.next_key()
        client = self.client
        client.begin()
        try:
            rows = client.execute(select, [o_id]).rows
            if not rows:
                client.commit()
                return None
            _o_id, c_id, _total, _updated = rows[0]
            now = self._now()
            client.execute(update_order, [now, o_id])
            client.execute(
                update_customer,
                [round(self._rng.uniform(1, 50), 2), now, c_id],
            )
            client.commit()
        except BaseException:
            if client.in_txn:
                try:
                    client.rollback()
                except EngineError:
                    pass
            raise
        return o_id, now

    def run_t3(self) -> Optional[Tuple]:
        (statement,) = self.stmts.statements("T3")
        o_id = self._order_keys.next_key()
        return self.client.query(statement, [o_id]).first()

    def run_t4(self) -> bool:
        """Delete an orderline; returns False when it was already gone."""
        (statement,) = self.stmts.statements("T4")
        ol_id = self._rng.randint(1, max(1, self._orderline_high))
        return self.client.execute(statement, [ol_id]).rowcount > 0

    # -- driver -------------------------------------------------------------------

    def next_task(self) -> str:
        tasks, weights = zip(*self.mix.weights)
        return self._rng.choices(tasks, weights=weights, k=1)[0]

    def run_one(self, task: Optional[str] = None, deadline=None) -> str:
        """Execute one transaction (random task unless given); returns it.

        Retryable aborts (lock timeouts, deadlock victims) replay the
        transaction body up to ``retry_attempts`` times; non-retryable
        engine errors propagate -- replaying them cannot succeed.
        ``deadline`` (anything with ``.expired()``/``.check()``) rides
        into the engine and cancels the transaction at its lock-wait,
        buffer-miss and WAL-append points.
        """
        chosen = task or self.next_task()
        runner = {
            "T1": self.run_t1, "T2": self.run_t2,
            "T3": self.run_t3, "T4": self.run_t4,
        }[chosen]
        prior = self.deadline
        if deadline is not None:
            self.deadline = deadline
        try:
            outcome = retry_transaction(runner, attempts=self.retry_attempts)
        finally:
            self.deadline = prior
        self.aborted += outcome.aborts
        if outcome.committed:
            self.executed[chosen] += 1
        return chosen

    def run_many(self, count: int) -> Dict[str, int]:
        for _ in range(count):
            self.run_one()
        return dict(self.executed)

"""The unified evaluator surface: ``EvalOutcome`` plus the registry.

Every evaluation the testbed can run — throughput, P-Score, elasticity,
multi-tenancy, fail-over, replication lag, chaos, the instrumented OLTP
run and the Table IX score card — is registered here as an
:class:`EvaluatorSpec` and produces the *same* result shape, an
:class:`EvalOutcome`.  ``CloudyBench.run(name, **opts)`` dispatches
through the registry; the CLI, the markdown report and the exporters
consume only outcomes, never per-evaluator result types.

The per-evaluator result objects still exist (they are rich and typed)
— an outcome carries them in :attr:`EvalOutcome.payload`, which is what
the legacy ``run_*`` wrappers return for back compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "EvalOption",
    "EvalOutcome",
    "EvaluatorSpec",
    "evaluator",
    "get_evaluator",
    "evaluator_names",
    "evaluator_specs",
    "parse_bool",
]


def parse_bool(value: Any) -> bool:
    """Parse a boolean option value; ``bool("false")`` is a foot-gun.

    Accepts actual booleans (programmatic callers) and the usual
    spellings from the CLI; anything else raises ``ValueError`` so the
    caller can report which option was malformed.
    """
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("1", "true", "yes", "on"):
        return True
    if text in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean (true/false), got {value!r}")


@dataclass(frozen=True)
class EvalOption:
    """One option an evaluator accepts, typed so the CLI can parse it."""

    name: str
    type: Callable[[str], Any]
    default: Any
    help: str = ""


@dataclass
class EvalOutcome:
    """What every evaluator returns.

    * ``headers``/``rows`` — the paper-style table, ready to render.
    * ``scores`` — flat ``metric.arch -> value`` summary numbers.
    * ``events`` — ``(time_s, message)`` timeline annotations (scaling
      decisions, fault injections, ...), possibly empty.
    * ``obs`` — the shared observer's metrics/trace snapshot taken when
      the evaluation finished.
    * ``payload`` — the evaluator's native result object (the exact
      value the legacy ``run_*`` method used to return).
    * ``notes`` — free-form preamble text (e.g. the chaos fault plan).
    """

    name: str
    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]
    scores: Dict[str, float] = field(default_factory=dict)
    events: List[Tuple[float, str]] = field(default_factory=list)
    obs: Dict[str, Any] = field(default_factory=dict)
    payload: Any = None
    notes: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view (drops the native payload)."""
        return {
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "scores": dict(self.scores),
            "events": [
                {"time_s": time_s, "message": message}
                for time_s, message in self.events
            ],
            "notes": self.notes,
        }


@dataclass(frozen=True)
class EvaluatorSpec:
    """A registered evaluator: its name, option schema, and runner."""

    name: str
    title: str
    summary: str
    options: Tuple[EvalOption, ...]
    runner: Callable[..., EvalOutcome]

    def validate(self, opts: Dict[str, Any]) -> Dict[str, Any]:
        """Fill defaults and reject unknown option names."""
        known = {option.name: option for option in self.options}
        unknown = sorted(set(opts) - set(known))
        if unknown:
            raise TypeError(
                f"evaluator {self.name!r} accepts {sorted(known) or 'no options'}, "
                f"got unknown option(s) {unknown}"
            )
        resolved = {option.name: option.default for option in self.options}
        resolved.update(opts)
        return resolved


_REGISTRY: Dict[str, EvaluatorSpec] = {}


def evaluator(
    name: str,
    title: str,
    summary: str,
    options: Tuple[EvalOption, ...] = (),
) -> Callable[[Callable[..., EvalOutcome]], Callable[..., EvalOutcome]]:
    """Class-level decorator registering ``runner(bench, **opts)``."""

    def decorate(runner: Callable[..., EvalOutcome]) -> Callable[..., EvalOutcome]:
        if name in _REGISTRY:
            raise ValueError(f"evaluator {name!r} already registered")
        _REGISTRY[name] = EvaluatorSpec(
            name=name, title=title, summary=summary,
            options=options, runner=runner,
        )
        return runner

    return decorate


def get_evaluator(name: str) -> EvaluatorSpec:
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown evaluator {name!r}; known: {', '.join(evaluator_names())}"
        ) from None


def evaluator_names() -> Tuple[str, ...]:
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


def evaluator_specs() -> Iterator[EvaluatorSpec]:
    _ensure_registered()
    for name in sorted(_REGISTRY):
        yield _REGISTRY[name]


def _ensure_registered() -> None:
    # The registrations live beside the runners; importing the module is
    # what populates the registry (idempotent thanks to sys.modules).
    from repro.core import evaluators  # noqa: F401

"""Workload manager: spawns workers and drives functional OLTP runs.

This is the testbed's *functional* execution path: real transactions
against the real engine, used by the OLTP evaluator, the examples, and
the tests.  Workers are cooperative (one OS thread): each worker is a
round-robin slot executing its next transaction, which measures engine
throughput honestly without GIL games.

The *modelled* path (the paper's cloud-scale numbers) goes through
:class:`repro.core.runner.CloudyBench` instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.workload import SalesWorkload, TransactionMix
from repro.engine.database import Database
from repro.sim.rng import derive_seed


@dataclass
class OltpResult:
    """Outcome of one functional OLTP run."""

    transactions: int
    elapsed_s: float
    counts: Dict[str, int] = field(default_factory=dict)
    aborted: int = 0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def tps(self) -> float:
        return self.transactions / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_percentile(self, percentile: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(len(ordered) * percentile / 100.0))
        return ordered[index]


class WorkloadManager:
    """Spawns ``concurrency`` workers over one database."""

    def __init__(
        self,
        db: Database,
        mix: TransactionMix,
        concurrency: int = 4,
        distribution: str = "uniform",
        latest_k: int = 10,
        seed: int = 42,
        record_latencies: bool = False,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.db = db
        self.concurrency = concurrency
        self.record_latencies = record_latencies
        # One workload state per worker: separate RNG streams keep the
        # run deterministic regardless of interleaving.  Worker seeds
        # are derived by name -- ``seed + worker_id`` made worker i of a
        # run seeded S draw the exact stream of worker 0 seeded S+i.
        self.workers = [
            SalesWorkload(
                db, mix, distribution=distribution, latest_k=latest_k,
                seed=derive_seed(seed, f"worker.{worker_id}"),
            )
            for worker_id in range(concurrency)
        ]

    def run_transactions(self, total: int) -> OltpResult:
        """Execute ``total`` transactions round-robin across workers."""
        if total < 1:
            raise ValueError("total must be >= 1")
        latencies: List[float] = []
        started = time.perf_counter()
        for index in range(total):
            worker = self.workers[index % self.concurrency]
            if self.record_latencies:
                txn_start = time.perf_counter()
                worker.run_one()
                latencies.append(time.perf_counter() - txn_start)
            else:
                worker.run_one()
        elapsed = time.perf_counter() - started
        counts: Dict[str, int] = {}
        aborted = 0
        for worker in self.workers:
            aborted += worker.aborted
            for task, count in worker.executed.items():
                counts[task] = counts.get(task, 0) + count
        return OltpResult(
            transactions=total,
            elapsed_s=elapsed,
            counts=counts,
            aborted=aborted,
            latencies_s=latencies,
        )

    def run_for(self, duration_s: float, batch: int = 64) -> OltpResult:
        """Execute transactions until ``duration_s`` wall seconds pass."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        executed = 0
        latencies: List[float] = []
        started = time.perf_counter()
        while time.perf_counter() - started < duration_s:
            for _ in range(batch):
                worker = self.workers[executed % self.concurrency]
                worker.run_one()
                executed += 1
        elapsed = time.perf_counter() - started
        counts: Dict[str, int] = {}
        aborted = 0
        for worker in self.workers:
            aborted += worker.aborted
            for task, count in worker.executed.items():
                counts[task] = counts.get(task, 0) + count
        return OltpResult(
            transactions=executed,
            elapsed_s=elapsed,
            counts=counts,
            aborted=aborted,
            latencies_s=latencies,
        )

"""Deterministic data generation for the sales microservice.

Two views of the data exist side by side:

* **materialised rows** for functional runs (the engine-backed lag-time
  and OLTP evaluations, examples, tests).  ``row_scale`` shrinks the
  materialised row counts -- loading 300 000 x SF real rows into a pure
  Python engine is possible but pointless for functional checks -- while
  keeping key distributions intact.
* **nominal byte sizes** for the analytical model: the paper's raw
  dataset sizes (194 MB / 1.99 GB / 20.8 GB for SF1/SF10/SF100) are used
  as working-set inputs, so buffer-versus-working-set effects match the
  paper's scale factors regardless of ``row_scale``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.core.schema import (
    ORDERLINE_MULTIPLIER,
    create_sales_schema,
    rows_at_scale,
)
from repro.engine.database import Database

GIB = 2**30
MIB = 2**20

#: raw dataset sizes reported in the paper's benchmark configuration
NOMINAL_BYTES: Dict[int, float] = {
    1: 194 * MIB,
    10: 1.99 * GIB,
    100: 20.8 * GIB,
}

_REGIONS = ("NORTH", "SOUTH", "EAST", "WEST", "CENTRAL")
_STATUSES = ("NEW", "PAID", "SHIPPED", "DONE")


def nominal_bytes(scale_factor: int) -> float:
    """Raw data bytes at ``scale_factor`` (paper values for SF1/10/100)."""
    if scale_factor in NOMINAL_BYTES:
        return NOMINAL_BYTES[scale_factor]
    if scale_factor < 1:
        raise ValueError("scale factor must be >= 1")
    return 200 * MIB * scale_factor


@dataclass
class GeneratedData:
    """Summary of a data-generation run."""

    scale_factor: int
    row_scale: float
    rows: Dict[str, int] = field(default_factory=dict)
    nominal_bytes: float = 0.0

    @property
    def total_rows(self) -> int:
        return sum(self.rows.values())


class DataGenerator:
    """Loads the sales schema and rows into an engine database."""

    def __init__(self, scale_factor: int = 1, row_scale: float = 0.01, seed: int = 42):
        if not 0 < row_scale <= 1:
            raise ValueError("row_scale must be in (0, 1]")
        self.scale_factor = scale_factor
        self.row_scale = row_scale
        self.seed = seed

    def materialised_rows(self) -> Dict[str, int]:
        """Row counts actually loaded (>= 100 per table)."""
        return {
            table: max(100, int(count * self.row_scale))
            for table, count in rows_at_scale(self.scale_factor).items()
        }

    def iter_rows(self) -> Iterator[tuple]:
        """Yield ``(table_name, row)`` in deterministic generation order.

        The single stream serves both the whole-database loader below
        and the sharded fleet loader, which routes each row to the shard
        owning its partition key -- every consumer sees byte-identical
        rows for a given seed.
        """
        rng = random.Random(self.seed)
        counts = self.materialised_rows()
        now = 1_700_000_000.0  # fixed epoch base keeps runs reproducible

        for c_id in range(1, counts["CUSTOMER"] + 1):
            yield "CUSTOMER", (
                c_id,
                f"Customer#{c_id:09d}",
                round(rng.uniform(0, 5000), 2),
                rng.choice(_REGIONS),
                now - rng.uniform(0, 86_400 * 30),
            )

        for o_id in range(1, counts["ORDERS"] + 1):
            yield "ORDERS", (
                o_id,
                rng.randint(1, counts["CUSTOMER"]),
                now - rng.uniform(0, 86_400 * 30),
                rng.choice(_STATUSES),
                round(rng.uniform(5, 500), 2),
                now - rng.uniform(0, 86_400 * 30),
            )

        per_order = ORDERLINE_MULTIPLIER
        ol_id = 0
        for o_id in range(1, counts["ORDERS"] + 1):
            for _ in range(per_order):
                ol_id += 1
                if ol_id > counts["ORDERLINE"]:
                    break
                yield "ORDERLINE", (
                    ol_id,
                    o_id,
                    rng.randint(1, 100_000),
                    rng.randint(1, 10),
                    round(rng.uniform(1, 100), 2),
                )
            if ol_id > counts["ORDERLINE"]:
                break
        # Top up if the per-order loop undershot (row_scale rounding).
        while ol_id < counts["ORDERLINE"]:
            ol_id += 1
            yield "ORDERLINE", (
                ol_id,
                rng.randint(1, counts["ORDERS"]),
                rng.randint(1, 100_000),
                rng.randint(1, 10),
                round(rng.uniform(1, 100), 2),
            )

    def populate(self, db: Database, create_schema: bool = True) -> GeneratedData:
        """Generate and load all rows; returns a summary."""
        if create_schema:
            create_sales_schema(db)
        tables = {name: db.table(name) for name in ("CUSTOMER", "ORDERS", "ORDERLINE")}
        for table_name, row in self.iter_rows():
            tables[table_name].insert_row(row)
        return GeneratedData(
            scale_factor=self.scale_factor,
            row_scale=self.row_scale,
            rows=self.materialised_rows(),
            nominal_bytes=nominal_bytes(self.scale_factor),
        )


def load_sales_database(
    name: str = "primary",
    scale_factor: int = 1,
    row_scale: float = 0.01,
    seed: int = 42,
    buffer_size_bytes: Optional[int] = None,
    observer=None,
) -> tuple[Database, GeneratedData]:
    """One-call helper: new engine database with the sales data loaded."""
    db = Database(name, buffer_size_bytes=buffer_size_bytes, observer=observer)
    data = DataGenerator(scale_factor, row_scale, seed).populate(db)
    return db, data

"""The CloudyBench testbed orchestrator (paper Figure 1).

``CloudyBench`` wires data generation, the workload manager, and the
five evaluators together, and computes the PERFECT metrics.  Every
benchmark in ``benchmarks/`` is a thin wrapper over one method here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chaos.availability import AScore, AvailabilityEvaluator
from repro.chaos.plan import FaultPlan
from repro.cloud.architectures import Architecture, get as get_architecture
from repro.cloud.mva_model import estimate_throughput
from repro.cloud.replication import ReplicationPipeline
from repro.cloud.workload_model import WorkloadMix
from repro.core.config import BenchConfig
from repro.core.evalapi import EvalOutcome, get_evaluator
from repro.core.elasticity import (
    ELASTIC_PATTERNS,
    ElasticityEvaluator,
    ElasticityResult,
    custom_pattern,
)
from repro.core.failover import FailOverEvaluator, FailoverScores
from repro.core.lagtime import LagResult, LagTimeEvaluator
from repro.core.metrics import PerfectScores, e2_score, p_score_actual
from repro.core.multitenancy import MultiTenancyEvaluator, TenancyResult
from repro.core.pricing import (
    actual_cost,
    package_cost_breakdown_per_minute,
    package_cost_per_minute,
)
from repro.core.workload import LAG_PATTERNS, THROUGHPUT_PATTERNS, TransactionMix
from repro.obs import Observer
from repro.qos.overload import OverloadEvaluator, OverloadResult

#: key of one throughput measurement: (arch, scale factor, mode, concurrency)
ThroughputKey = Tuple[str, int, str, int]


def _deprecated(wrapper: str, replacement: str) -> None:
    """Warn once per call site that a legacy ``run_*`` wrapper ran.

    ``stacklevel=3`` points the warning at the *caller* of the wrapper
    (helper -> wrapper -> caller), which is the line that needs the
    migration.
    """
    warnings.warn(
        f"CloudyBench.{wrapper}() is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class PScoreRow:
    """One row of Table V."""

    arch_name: str
    cost_breakdown: Dict[str, float]
    total_cost_per_minute: float
    tps_by_mode: Dict[str, float]
    p_by_mode: Dict[str, float]

    @property
    def p_avg(self) -> float:
        values = list(self.p_by_mode.values())
        return sum(values) / len(values) if values else 0.0


class CloudyBench:
    """End-to-end testbed over the configured architectures."""

    def __init__(
        self,
        config: Optional[BenchConfig] = None,
        observer: Optional[Observer] = None,
    ):
        self.config = config or BenchConfig()
        #: one observer spans the whole bench run: engine, DES and client
        #: events land in a single timeline/metrics registry, and
        #: :meth:`snapshot` / the CLI exporters read it back out.
        self.observer = observer if observer is not None else Observer()
        self.architectures: List[Architecture] = [
            get_architecture(name) for name in self.config.architectures
        ]
        self._throughput: Optional[Dict[ThroughputKey, float]] = None
        self._elasticity: Optional[Dict[str, Dict[str, Dict[str, ElasticityResult]]]] = None
        self._tenancy: Optional[Dict[str, Dict[str, TenancyResult]]] = None
        self._failover: Optional[Dict[str, FailoverScores]] = None
        self._lag: Optional[Dict[str, Dict[str, LagResult]]] = None
        self._chaos: Optional[Dict[str, AScore]] = None
        self._oltp: Optional[Dict[str, AScore]] = None
        self._oltp_arrival: str = "closed"
        #: overload sweeps, cached per (qos flag, arrival spec)
        self._overload: Dict[Tuple, Dict[str, OverloadResult]] = {}
        #: HA availability runs, cached per "ack_mode/arrival"
        self._ha: Dict[str, "HAResult"] = {}
        #: DR (backup/restore) runs, cached per archive mode
        self._dr: Dict[str, "DRResult"] = {}
        #: real scale-out runs, cached per (counts, cross, txns, driver)
        self._scaleout: Dict[Tuple, Dict[int, object]] = {}
        #: serve sweeps, cached per (counts, txns, qos, workers, ...)
        self._serve: Dict[Tuple, Dict[int, object]] = {}
        #: perf trajectory runs, cached per (workloads, arrival, txns)
        self._perf: Dict[Tuple, Dict[str, object]] = {}

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time observability snapshot (metrics + trace stats)."""
        return self.observer.snapshot()

    # -- the unified evaluator entry point ---------------------------------------

    def run(self, eval_name: str, **opts) -> EvalOutcome:
        """Run one registered evaluator and return its :class:`EvalOutcome`.

        ``eval_name`` is any name from the evaluator registry
        (:func:`repro.core.evalapi.evaluator_names`); ``opts`` are
        validated against the evaluator's declared option schema.
        Results are cached per underlying computation, so repeated runs
        (and the legacy ``run_*`` wrappers) return identical payloads.
        """
        spec = get_evaluator(eval_name)
        return spec.runner(self, **spec.validate(opts))

    # -- workload plumbing -------------------------------------------------------

    def mix_for(self, mode: str) -> TransactionMix:
        try:
            return THROUGHPUT_PATTERNS[mode]
        except KeyError:
            raise KeyError(f"unknown mode {mode!r}; use RO/RW/WO") from None

    def workload_mix(self, mode: str, scale_factor: int) -> WorkloadMix:
        return self.mix_for(mode).to_workload_mix(
            scale_factor,
            distribution=self.config.distribution,
            latest_k=self.config.latest_k,
            mvcc=self.config.uses_mvcc,
        )

    # -- throughput (Figure 5) -----------------------------------------------------

    def run_throughput(self) -> Dict[ThroughputKey, float]:
        """Deprecated: use ``run("throughput").payload``."""
        _deprecated("run_throughput", 'run("throughput").payload')
        return self.run("throughput").payload

    def _compute_throughput(self) -> Dict[ThroughputKey, float]:
        if self._throughput is not None:
            return self._throughput
        results: Dict[ThroughputKey, float] = {}
        for arch in self.architectures:
            for sf in self.config.scale_factors:
                for mode in self.config.modes:
                    workload = self.workload_mix(mode, sf)
                    for con in self.config.concurrencies:
                        estimate = estimate_throughput(arch, workload, con)
                        results[(arch.name, sf, mode, con)] = estimate.tps
        self._throughput = results
        return results

    def average_tps(self, arch_name: str, mode: str) -> float:
        """Average TPS of one mode over all SFs and concurrencies."""
        data = self._compute_throughput()
        values = [
            tps for (name, _sf, m, _con), tps in data.items()
            if name == arch_name and m == mode
        ]
        return sum(values) / len(values) if values else 0.0

    # -- P-Score (Table V) ------------------------------------------------------------

    def run_pscore(self, n_ro_nodes: int = 1) -> List[PScoreRow]:
        """Deprecated: use ``run("pscore", n_ro_nodes=...).payload``."""
        _deprecated("run_pscore", 'run("pscore", n_ro_nodes=...).payload')
        return self.run("pscore", n_ro_nodes=n_ro_nodes).payload

    def _compute_pscore(self, n_ro_nodes: int = 1) -> List[PScoreRow]:
        """Table V rows.

        The paper deploys one RW plus one RO node per SUT, so the total
        cost charges compute (CPU + memory) once per node while storage,
        IOPS and network are shared -- that is how Table V's total of
        $0.0437/min for RDS reconciles with its per-resource breakdown.
        """
        rows = []
        for arch in self.architectures:
            package = arch.provisioned
            breakdown = package_cost_breakdown_per_minute(package)
            total = package_cost_per_minute(package) + n_ro_nodes * (
                breakdown["cpu"] + breakdown["memory"]
            )
            tps_by_mode = {
                mode: self.average_tps(arch.name, mode) for mode in self.config.modes
            }
            p_by_mode = {
                mode: tps / total if total > 0 else 0.0
                for mode, tps in tps_by_mode.items()
            }
            rows.append(
                PScoreRow(
                    arch_name=arch.name,
                    cost_breakdown=breakdown,
                    total_cost_per_minute=total,
                    tps_by_mode=tps_by_mode,
                    p_by_mode=p_by_mode,
                )
            )
        return rows

    # -- saturation probe (the tau of Sections II-C/II-D) ------------------------------

    def saturation_concurrency(self, arch: Architecture, mode: str = "RW") -> int:
        workload = self.workload_mix(mode, min(self.config.scale_factors))
        evaluator = ElasticityEvaluator(arch, workload)
        return evaluator.saturation_concurrency()

    def elastic_tau(self, mode: str = "RW") -> int:
        """The paper's tau: maximum saturation concurrency across SUTs.

        Computed per workload mode -- read-only mixes saturate far later
        than write-heavy ones.
        """
        if self.config.elastic_tau is not None:
            return self.config.elastic_tau
        return max(
            self.saturation_concurrency(arch, mode) for arch in self.architectures
        )

    # -- elasticity (Figure 6, Table VI) --------------------------------------------------

    def run_elasticity(self) -> Dict[str, Dict[str, Dict[str, ElasticityResult]]]:
        """Deprecated: use ``run("elasticity").payload``."""
        _deprecated("run_elasticity", 'run("elasticity").payload')
        return self.run("elasticity").payload

    def _compute_elasticity(
        self,
    ) -> Dict[str, Dict[str, Dict[str, ElasticityResult]]]:
        if self._elasticity is not None:
            return self._elasticity
        sf = min(self.config.scale_factors)
        taus = {mode: self.elastic_tau(mode) for mode in self.config.elastic_modes}
        patterns = dict(ELASTIC_PATTERNS)
        for key, proportions in self.config.custom_patterns.items():
            patterns[key] = custom_pattern(key, proportions)
        results: Dict[str, Dict[str, Dict[str, ElasticityResult]]] = {}
        for arch in self.architectures:
            results[arch.name] = {}
            for pattern_key, pattern in patterns.items():
                results[arch.name][pattern_key] = {}
                for mode in self.config.elastic_modes:
                    workload = self.workload_mix(mode, sf)
                    evaluator = ElasticityEvaluator(
                        arch,
                        workload,
                        slot_seconds=self.config.slot_seconds,
                        measure_window_s=self.config.measure_window_s,
                    )
                    results[arch.name][pattern_key][mode] = evaluator.run(
                        pattern, taus[mode]
                    )
        self._elasticity = results
        return results

    # -- multi-tenancy (Table VII) ----------------------------------------------------------

    def tenancy_taus(self) -> Tuple[int, int]:
        """(tau_high, tau_low) for the contention patterns.

        The deployment spans ``tenants`` instances, so the high-contention
        tau is the per-instance saturation times the tenant count (the
        paper's tau=330 for three tenants at tau~110), while the low
        patterns use the weakest SUT's single-instance saturation.
        """
        high = self.config.tenancy_tau_high
        low = self.config.tenancy_tau_low
        if high is None or low is None:
            saturations = [
                self.saturation_concurrency(arch, "RW") for arch in self.architectures
            ]
            high = high or max(saturations) * self.config.tenants
            low = low or min(saturations)
        return high, low

    def run_multitenancy(self) -> Dict[str, Dict[str, TenancyResult]]:
        """Deprecated: use ``run("multitenancy").payload``."""
        _deprecated("run_multitenancy", 'run("multitenancy").payload')
        return self.run("multitenancy").payload

    def _compute_multitenancy(self) -> Dict[str, Dict[str, TenancyResult]]:
        if self._tenancy is not None:
            return self._tenancy
        tau_high, tau_low = self.tenancy_taus()
        sf = min(self.config.scale_factors)
        results: Dict[str, Dict[str, TenancyResult]] = {}
        for arch in self.architectures:
            workload = self.workload_mix("RW", sf)
            evaluator = MultiTenancyEvaluator(
                arch,
                workload,
                n_tenants=self.config.tenants,
                n_slots=self.config.tenant_slots,
                slot_seconds=self.config.slot_seconds,
            )
            results[arch.name] = evaluator.run_all(tau_high, tau_low)
        self._tenancy = results
        return results

    # -- fail-over (Table VIII, Figure 7) ------------------------------------------------------

    def run_failover(self) -> Dict[str, FailoverScores]:
        """Deprecated: use ``run("failover").payload``."""
        _deprecated("run_failover", 'run("failover").payload')
        return self.run("failover").payload

    def _compute_failover(self) -> Dict[str, FailoverScores]:
        if self._failover is not None:
            return self._failover
        sf = min(self.config.scale_factors)
        results = {}
        for arch in self.architectures:
            workload = self.workload_mix("RW", sf)
            evaluator = FailOverEvaluator(
                arch,
                workload,
                concurrency=self.config.failover_concurrency,
                recovery_threshold=self.config.recovery_threshold,
            )
            results[arch.name] = evaluator.run()
        self._failover = results
        return results

    # -- chaos / availability -----------------------------------------------------------------

    def chaos_plan(self) -> FaultPlan:
        """The seeded fault plan every SUT is scored against.

        One plan for all architectures: A-Scores are only comparable
        when every SUT survives the *same* fault schedule, and the
        config seed pins that schedule exactly.
        """
        targets = ["primary"] + [
            ReplicationPipeline.replica_target(index)
            for index in range(self.config.chaos_replicas)
        ]
        return FaultPlan.generate(
            seed=self.config.seed,
            duration_s=self.config.chaos_duration_s,
            targets=targets,
            n_faults=self.config.chaos_faults,
            name="bench",
        )

    def run_chaos(self) -> Dict[str, AScore]:
        """Deprecated: use ``run("chaos").payload``."""
        _deprecated("run_chaos", 'run("chaos").payload')
        return self.run("chaos").payload

    def _compute_chaos(self) -> Dict[str, AScore]:
        if self._chaos is not None:
            return self._chaos
        plan = self.chaos_plan()
        results: Dict[str, AScore] = {}
        for arch in self.architectures:
            evaluator = AvailabilityEvaluator(
                arch,
                plan,
                slo=self.config.chaos_slo,
                n_clients=self.config.chaos_clients,
                n_replicas=self.config.chaos_replicas,
                row_scale=self.config.row_scale,
                observer=self.observer,
            )
            results[arch.name] = evaluator.run()
        self._chaos = results
        return results

    # -- instrumented OLTP run (observability timeline) -------------------------

    def run_oltp(self) -> Dict[str, AScore]:
        """Deprecated: use ``run("oltp").payload``."""
        _deprecated("run_oltp", 'run("oltp").payload')
        return self.run("oltp").payload

    def _compute_oltp(self, arrival: Optional[str] = None) -> Dict[str, AScore]:
        """A fault-free end-to-end run that exercises every layer.

        Reuses the availability machinery with an *empty* fault plan, so
        real transactions hit the engine, WAL records ship through the
        replication DES, and every request crosses the client resilience
        stack -- one run produces engine, replication and client spans on
        the shared observer.  Only the first configured architecture runs:
        the point is one clean timeline, not a cross-SUT comparison.
        """
        spec = "closed" if arrival is None else arrival
        if self._oltp is not None and self._oltp_arrival == spec:
            return self._oltp
        plan = FaultPlan((), seed=self.config.seed, name="healthy")
        arch = self.architectures[0]
        evaluator = AvailabilityEvaluator(
            arch,
            plan,
            slo=self.config.chaos_slo,
            n_clients=self.config.chaos_clients,
            n_replicas=self.config.chaos_replicas,
            duration_s=self.config.chaos_duration_s,
            row_scale=self.config.row_scale,
            observer=self.observer,
            arrival=spec,
        )
        self._oltp = {arch.name: evaluator.run()}
        self._oltp_arrival = spec
        return self._oltp

    # -- replication lag (Section III-F) ----------------------------------------------------------

    def run_lagtime(
        self, patterns: Optional[Dict[str, TransactionMix]] = None
    ) -> Dict[str, Dict[str, LagResult]]:
        """Deprecated: use ``run("lagtime").payload`` (custom ``patterns``
        still go through this wrapper; they bypass the cache)."""
        _deprecated("run_lagtime", 'run("lagtime").payload')
        if patterns is not None:
            return self._compute_lagtime(patterns)
        return self.run("lagtime").payload

    def _compute_lagtime(
        self, patterns: Optional[Dict[str, TransactionMix]] = None
    ) -> Dict[str, Dict[str, LagResult]]:
        if self._lag is not None and patterns is None:
            return self._lag
        chosen = patterns or LAG_PATTERNS
        results: Dict[str, Dict[str, LagResult]] = {}
        for arch in self.architectures:
            evaluator = LagTimeEvaluator(
                arch,
                scale_factor=min(self.config.scale_factors),
                row_scale=self.config.row_scale,
                concurrency=self.config.lag_concurrency,
                n_replicas=self.config.lag_replicas,
                transactions=self.config.lag_transactions,
                seed=self.config.seed,
                isolation=self.config.isolation_level(),
            )
            results[arch.name] = evaluator.run_patterns(chosen)
        if patterns is None:
            self._lag = results
        return results

    # -- overload / graceful degradation (qos) -----------------------------------

    def _compute_overload(
        self,
        qos: Optional[bool] = None,
        arrival: Optional[str] = None,
    ) -> Dict[str, OverloadResult]:
        """Goodput-vs-offered-load sweep past saturation, per SUT.

        ``qos=None`` follows the config's ``qos_enabled`` knob.  Each
        (qos, arrival) pair caches independently so a comparison run
        (the knee bench) pays for each sweep once.
        """
        if qos is None:
            qos = self.config.qos_enabled
        spec = "poisson" if arrival is None else arrival
        key = (qos, spec)
        cached = self._overload.get(key)
        if cached is not None:
            return cached
        results: Dict[str, OverloadResult] = {}
        for arch in self.architectures:
            evaluator = OverloadEvaluator(
                arch,
                qos=qos,
                capacity_rps=self.config.overload_capacity_rps,
                deadline_s=self.config.overload_deadline_s,
                duration_s=self.config.overload_duration_s,
                seed=self.config.seed,
                observer=self.observer,
                arrival=spec,
            )
            results[arch.name] = evaluator.run(list(self.config.overload_multiples))
        self._overload[key] = results
        return results

    # -- shard HA / replication (the R-Score) --------------------------------------

    def _compute_ha(
        self,
        ack_mode: Optional[str] = None,
        arrival: Optional[str] = None,
    ) -> "HAResult":
        """One HA fleet run through a mid-run primary kill, per ack mode.

        This is testbed-level, not per-SUT: it exercises the engine's
        own replication/failover stack (:mod:`repro.ha`), so a single
        run covers every architecture row.  Cached per (ack mode,
        arrival process).
        """
        from repro.ha.evaluator import HAEvaluator
        from repro.ha.lease import LeaseConfig

        mode = ack_mode or self.config.ha_ack_mode
        spec = "closed" if arrival is None else arrival
        key = f"{mode}/{spec}"
        cached = self._ha.get(key)
        if cached is not None:
            return cached
        evaluator = HAEvaluator(
            n_shards=self.config.ha_shards,
            txns=self.config.ha_txns,
            n_pairs=self.config.ha_pairs,
            ack_mode=mode,
            lease=LeaseConfig(
                lease_s=self.config.ha_lease_s,
                heartbeat_s=self.config.ha_heartbeat_s,
            ),
            seed=self.config.seed,
            observer=self.observer,
            arrival=spec,
        )
        result = evaluator.run()
        self._ha[key] = result
        return result

    # -- disaster recovery (the DR-Score) ------------------------------------------

    def _compute_dr(self, archive_mode: Optional[str] = None) -> "DRResult":
        """One backup-under-load, disaster, PITR-restore run.

        Testbed-level like the HA run: it exercises the engine's own
        archive/backup/restore stack (:mod:`repro.dr`), so a single run
        covers every architecture row.  Cached per archive mode.
        """
        from repro.dr.evaluator import DREvaluator

        mode = archive_mode or self.config.dr_archive_mode
        cached = self._dr.get(mode)
        if cached is not None:
            return cached
        evaluator = DREvaluator(
            n_shards=self.config.dr_shards,
            txns=self.config.dr_txns,
            n_pairs=self.config.dr_pairs,
            archive_mode=mode,
            seed=self.config.seed,
            observer=self.observer,
        )
        result = evaluator.run()
        self._dr[mode] = result
        return result

    # -- real scale-out (sharded fleet) -------------------------------------------

    def _compute_scaleout_real(
        self,
        shard_counts: Optional[List[int]] = None,
        cross_ratio: Optional[float] = None,
        transactions: Optional[int] = None,
        driver: Optional[str] = None,
        arrival: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> Dict[int, object]:
        """Measured fleet throughput per shard count.

        Unlike the rest of the runner this is not a model: it loads one
        real sharded fleet per point and drives the payment workload
        through it (:mod:`repro.shard.driver`).  Returns ``{n_shards:
        ShardRunResult}``.  ``transport="socket"`` reruns the inline
        driver's workload through the serving tier's loopback socket.
        """
        from repro.shard.driver import run_scaleout

        counts = list(shard_counts or self.config.shard_counts)
        txns = self.config.shard_txns if transactions is None else transactions
        driver = driver or self.config.shard_driver
        wire = "inline" if transport is None else transport
        if cross_ratio is None:
            # the mp driver has no cross-process coordinator, so its
            # only valid ratio is 0; don't let the config default for
            # the inline driver reject an explicit ``driver=mp``
            cross = 0.0 if driver == "mp" else self.config.shard_cross_ratio
        else:
            cross = cross_ratio
        spec = "closed" if arrival is None else arrival
        key = (tuple(counts), cross, txns, driver, spec, wire)
        cached = self._scaleout.get(key)
        if cached is not None:
            return cached
        results = run_scaleout(
            counts, txns, cross_ratio=cross, seed=self.config.seed,
            row_scale=self.config.row_scale, driver=driver,
            observer=self.observer, arrival=spec, transport=wire,
        )
        data = {result.n_shards: result for result in results}
        self._scaleout[key] = data
        return data

    # -- serving tier (SQL over sockets) ------------------------------------------

    def _compute_serve(
        self,
        connections: Optional[List[int]] = None,
        txns_per_conn: Optional[int] = None,
        qos: Optional[bool] = None,
        workers: Optional[int] = None,
        arrival: Optional[str] = None,
        persona: Optional[str] = None,
        rate_tps: Optional[float] = None,
        deadline_s: Optional[float] = None,
        max_queue: Optional[int] = None,
        fault_plan=None,
    ) -> Dict[int, object]:
        """One serve sweep, ``{connections: ServeRunResult}``.

        Boots the real serving tier (:mod:`repro.serve`) per connection
        count and drives it with the async load generator -- measured
        end-to-end over a loopback socket, like the scale-out runs.
        Testbed-level (one run covers every architecture row).  Cached
        per fully-resolved parameter tuple; runs with a fault plan
        bypass the cache (plans are not hashable and rarely repeated).
        """
        from repro.serve.driver import run_sweep

        counts = list(connections or self.config.serve_connections)
        txns = (
            self.config.serve_txns_per_conn
            if txns_per_conn is None else txns_per_conn
        )
        qos_on = self.config.serve_qos if qos is None else qos
        n_workers = self.config.serve_workers if workers is None else workers
        spec = arrival or self.config.serve_arrival
        who = persona or self.config.serve_persona
        deadline = (
            self.config.serve_deadline_s if deadline_s is None else deadline_s
        )
        queue = self.config.serve_max_queue if max_queue is None else max_queue
        key = (
            tuple(counts), txns, qos_on, n_workers, spec, who,
            rate_tps, deadline, queue,
        )
        if fault_plan is None:
            cached = self._serve.get(key)
            if cached is not None:
                return cached
        results = run_sweep(
            counts, txns, n_shards=self.config.serve_shards,
            workers=n_workers, qos=qos_on, persona=who, arrival=spec,
            rate_tps=rate_tps, deadline_s=deadline, seed=self.config.seed,
            row_scale=self.config.row_scale,
            max_connections=self.config.serve_max_connections,
            max_queue=queue, observer=self.observer, fault_plan=fault_plan,
        )
        data = {result.connections: result for result in results}
        if fault_plan is None:
            self._serve[key] = data
        return data

    # -- perf trajectory (two-stage measured harness) -----------------------------

    def _compute_perf(
        self,
        workloads: Optional[List[str]] = None,
        arrival: Optional[str] = None,
        txns: Optional[int] = None,
        profile: Optional[bool] = None,
    ) -> Dict[str, object]:
        """Measured perf runs, ``{workload: MeasuredRun}``.

        Testbed-level, like the shard/HA evaluators: it measures the
        engine's own hot paths (single-shard payment loop, cross-shard
        2PC) through the two-stage harness, so one run covers every
        architecture row.  Cached per (workloads, arrival, txns).
        """
        from repro.perf.harness import TwoStageHarness, perf_workload_names

        names = list(workloads or perf_workload_names())
        spec = arrival or self.config.perf_arrival
        count = self.config.perf_txns if txns is None else txns
        key = (tuple(names), spec, count)
        cached = self._perf.get(key)
        if cached is not None:
            return cached
        harness = TwoStageHarness(
            seed=self.config.seed,
            row_scale=self.config.row_scale,
            pilot_txns=self.config.perf_pilot_txns,
            target_s=self.config.perf_target_s,
            txns=count,
            arrival=spec,
            profile=self.config.perf_profile if profile is None else profile,
            shard_cross_ratio=self.config.shard_cross_ratio,
            observer=self.observer,
        )
        runs = {name: harness.run(name) for name in names}
        self._perf[key] = runs
        return runs

    # -- the unified metric (Table IX) -----------------------------------------

    def overall(self, duration_s: float = 300.0) -> Dict[str, PerfectScores]:
        """Deprecated: use ``run("overall", duration_s=...).payload``."""
        _deprecated("overall", 'run("overall", duration_s=...).payload')
        return self.run("overall", duration_s=duration_s).payload

    def _compute_overall(self, duration_s: float = 300.0) -> Dict[str, PerfectScores]:
        """Compute all seven scores plus O-Score for every SUT."""
        pscore_rows = {row.arch_name: row for row in self._compute_pscore()}
        elasticity = self._compute_elasticity()
        tenancy = self._compute_multitenancy()
        failover = self._compute_failover()
        lag = self._compute_lagtime()
        sf = min(self.config.scale_factors)

        scores: Dict[str, PerfectScores] = {}
        for arch in self.architectures:
            name = arch.name
            row = pscore_rows[name]
            avg_tps = sum(row.tps_by_mode.values()) / max(1, len(row.tps_by_mode))

            # E1: average over patterns and modes of the elasticity runs
            e1_values = [
                result.e1_score
                for by_mode in elasticity[name].values()
                for result in by_mode.values()
            ]
            e1 = sum(e1_values) / len(e1_values) if e1_values else 0.0
            # E1*: recompute the denominator with the vendor's prices
            e1_star_values = []
            for by_mode in elasticity[name].values():
                for result in by_mode.values():
                    billed = actual_cost(
                        arch.pricing, arch.provisioned, duration_s
                    )
                    window_minutes = duration_s / 60.0
                    denom = billed * (result.elastic_cost / max(result.total_cost, 1e-9))
                    e1_star_values.append(
                        result.avg_tps / denom if denom > 0 else 0.0
                    )
            e1_star = (
                sum(e1_star_values) / len(e1_star_values) if e1_star_values else 0.0
            )

            t_values = [result.t_score for result in tenancy[name].values()]
            t = sum(t_values) / len(t_values) if t_values else 0.0
            t_star_values = []
            for result in tenancy[name].values():
                billed = actual_cost(arch.pricing, result.package, duration_s)
                per_minute = billed / (duration_s / 60.0)
                t_star_values.append(
                    result.t_score * result.cost_per_minute / per_minute
                    if per_minute > 0
                    else 0.0
                )
            t_star = sum(t_star_values) / len(t_star_values) if t_star_values else 0.0

            fo = failover[name]
            lag_mixed = lag[name].get("mixed") or next(iter(lag[name].values()))

            # graceful degradation rides along when a sweep already ran:
            # the D-Score annotates Table IX without forcing every
            # ``overall`` caller to pay for the overload evaluation
            extras = {}
            overload = self._overload.get((self.config.qos_enabled, "poisson"))
            if overload is None and self._overload:
                overload = next(iter(self._overload.values()))
            if overload and name in overload:
                extras["d"] = overload[name].dscore
            # ...and so does the HA R-Score; it is testbed-level, so the
            # same availability-under-failover number annotates every row.
            # Prefer the configured ack mode, but any computed mode counts.
            ha = self._ha.get(f"{self.config.ha_ack_mode}/closed")
            if ha is None and self._ha:
                ha = next(iter(self._ha.values()))
            if ha is not None:
                extras["r"] = ha.r_score
            # ...and the DR-Score (RPO-discounted restore fidelity),
            # also testbed-level and shared by every row.
            dr = self._dr.get(self.config.dr_archive_mode)
            if dr is None and self._dr:
                dr = next(iter(self._dr.values()))
            if dr is not None:
                extras["dr"] = dr.dr_score

            scores[name] = PerfectScores(
                arch_name=name,
                p=row.p_avg,
                p_star=p_score_actual(avg_tps, arch, arch.provisioned, duration_s),
                e1=e1,
                e1_star=e1_star,
                e2=e2_score(arch, self.workload_mix("RW", sf)),
                r_s=fo.r_avg_s,
                f_s=fo.f_avg_s,
                # Table IX's C column is the average replication lag of
                # the mixed IUD pattern in milliseconds (Equation (6)'s
                # per-kind sum is reported by the lag bench itself).
                c_ms=lag_mixed.avg_lag_s * 1000.0,
                t=t,
                t_star=t_star,
                scale_factor=1.0,
                extras=extras,
            )
        return scores

"""Multi-tenancy evaluator (paper Sections II-D and III-D).

Four contention patterns over three tenants and three one-minute slots
(CloudyBench supports arbitrary tenant/slot counts; the generation
rule is the same):

* (a) **high contention**: constant demands (10%, 30%, 60%+20%) x tau
  -- the total exceeds the capacity threshold.
* (b) **low contention**: constant (10%, 30%, 60%-20%) x tau -- total
  stays below the threshold.
* (c) **staggered high**: tenants take turns at (10/30/60% + 100%) tau.
* (d) **staggered low**: tenants take turns at 10/20/30% of tau.

tau is the *maximum* saturation concurrency among the SUTs for the high
patterns and the *minimum* for the low ones, exactly as in the paper.

The billed resource bundle depends on the tenancy model: isolated
instances triple everything; the elastic pool shares network and IOPS;
branches share storage (copy-on-write) but triple I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.cloud.architectures import Architecture
from repro.cloud.specs import ProvisionedPackage, TenancyKind
from repro.cloud.tenancy import SlotResult, TenantScheduler
from repro.cloud.workload_model import WorkloadMix
from repro.core.pricing import package_cost_per_minute
from dataclasses import replace as dc_replace


@dataclass(frozen=True)
class TenancyPattern:
    key: str
    name: str
    #: demand matrix builder: (tau, n_tenants, n_slots) -> [[con per slot]]
    staggered: bool
    high: bool

    def demand_matrix(
        self, tau: int, n_tenants: int = 3, n_slots: int = 3
    ) -> List[List[int]]:
        ratios = _tenant_ratios(n_tenants, staggered=self.staggered)
        matrix: List[List[int]] = []
        if self.staggered:
            boost = 1.0 if self.high else 0.0
            for tenant in range(n_tenants):
                row = [0] * n_slots
                slot = tenant % n_slots
                row[slot] = int(round((ratios[tenant] + boost) * tau))
                matrix.append(row)
            return matrix
        delta = 0.2 if self.high else -0.2
        adjusted = list(ratios)
        adjusted[-1] = max(0.05, adjusted[-1] + delta)
        for tenant in range(n_tenants):
            level = int(round(adjusted[tenant] * tau))
            matrix.append([level] * n_slots)
        return matrix


def _tenant_ratios(n_tenants: int, staggered: bool) -> List[float]:
    """Demand ratios per tenant (paper defaults for three tenants)."""
    if n_tenants == 3:
        return [0.1, 0.2, 0.3] if staggered else [0.1, 0.3, 0.6]
    # Generalisation: linearly increasing shares normalised to the
    # three-tenant totals.
    weights = [index + 1 for index in range(n_tenants)]
    total = sum(weights)
    scale = 0.6 if staggered else 1.0
    return [weight / total * scale for weight in weights]


TENANCY_PATTERNS: Dict[str, TenancyPattern] = {
    "high_contention": TenancyPattern("high_contention", "(a) High Contention",
                                      staggered=False, high=True),
    "low_contention": TenancyPattern("low_contention", "(b) Low Contention",
                                     staggered=False, high=False),
    "staggered_high": TenancyPattern("staggered_high", "(c) Staggered High",
                                     staggered=True, high=True),
    "staggered_low": TenancyPattern("staggered_low", "(d) Staggered Low",
                                    staggered=True, high=False),
}


def tenant_package(arch: Architecture, n_tenants: int) -> ProvisionedPackage:
    """The billed bundle for an ``n_tenants`` deployment (Table VII)."""
    base = arch.provisioned
    kind = arch.tenancy.kind
    if kind is TenancyKind.ISOLATED:
        return dc_replace(
            base,
            vcores=base.vcores * n_tenants,
            memory_gb=base.memory_gb * n_tenants,
            storage_gb=base.storage_gb * n_tenants,
            iops=base.iops * n_tenants,
            network_gbps=base.network_gbps * n_tenants,
        )
    if kind is TenancyKind.ELASTIC_POOL:
        pool_memory = arch.instance.max_allocation.memory_gb * n_tenants
        return dc_replace(
            base,
            vcores=base.vcores * n_tenants,
            memory_gb=pool_memory,
            storage_gb=base.storage_gb * n_tenants,
            # the pool shares the log service I/O and the network
            iops=base.iops,
            network_gbps=base.network_gbps,
        )
    # branches: compute per branch, storage shared copy-on-write
    return dc_replace(
        base,
        vcores=base.vcores * n_tenants,
        memory_gb=base.memory_gb * n_tenants,
        storage_gb=base.storage_gb,
        iops=base.iops * n_tenants,
        network_gbps=base.network_gbps,
    )


@dataclass
class TenancyResult:
    """One architecture x one pattern."""

    arch_name: str
    pattern: TenancyPattern
    demand_matrix: List[List[int]]
    slot_results: List[SlotResult]
    package: ProvisionedPackage
    cost_per_minute: float

    @property
    def tenant_avg_tps(self) -> List[float]:
        """Average TPS per tenant over its *active* slots."""
        n_tenants = len(self.demand_matrix)
        averages = []
        for tenant in range(n_tenants):
            samples = [
                slot.tenants[tenant].tps
                for slot_index, slot in enumerate(self.slot_results)
                if self.demand_matrix[tenant][slot_index] > 0
            ]
            averages.append(sum(samples) / len(samples) if samples else 0.0)
        return averages

    @property
    def total_tps(self) -> float:
        """Average total TPS over all slots (the TPS column of Table VII)."""
        if not self.slot_results:
            return 0.0
        return sum(slot.total_tps for slot in self.slot_results) / len(
            self.slot_results
        )

    @property
    def t_score(self) -> float:
        """Geometric mean of tenants' TPS over the total resource cost."""
        tps = [value for value in self.tenant_avg_tps if value > 0]
        if not tps or self.cost_per_minute <= 0:
            return 0.0
        geo = math.prod(tps) ** (1.0 / len(tps))
        return geo / self.cost_per_minute


class MultiTenancyEvaluator:
    """Runs the four patterns for one architecture."""

    def __init__(
        self,
        arch: Architecture,
        workload: WorkloadMix,
        n_tenants: int = 3,
        n_slots: int = 3,
        slot_seconds: float = 60.0,
    ):
        self.arch = arch
        self.workload = workload
        self.n_tenants = n_tenants
        self.n_slots = n_slots
        self.slot_seconds = slot_seconds

    def run(self, pattern: TenancyPattern, tau: int) -> TenancyResult:
        matrix = pattern.demand_matrix(tau, self.n_tenants, self.n_slots)
        scheduler = TenantScheduler(
            self.arch, self.workload, self.n_tenants, self.slot_seconds
        )
        slot_results = scheduler.run_slots(matrix)
        package = tenant_package(self.arch, self.n_tenants)
        return TenancyResult(
            arch_name=self.arch.name,
            pattern=pattern,
            demand_matrix=matrix,
            slot_results=slot_results,
            package=package,
            cost_per_minute=package_cost_per_minute(package),
        )

    def run_all(
        self, tau_high: int, tau_low: int
    ) -> Dict[str, TenancyResult]:
        results = {}
        for key, pattern in TENANCY_PATTERNS.items():
            tau = tau_high if pattern.high else tau_low
            results[key] = self.run(pattern, tau)
        return results

"""Exporting results: CSV/JSON serialisation of collector series and
score cards, for plotting outside the testbed.

Kept dependency-free (``csv`` + ``json`` from the standard library);
every evaluator result that carries a
:class:`~repro.core.collector.PerformanceCollector` can be dumped.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping, TextIO

from repro.core.collector import PerformanceCollector
from repro.core.metrics import PerfectScores


def collector_to_csv(collector: PerformanceCollector, out: TextIO) -> int:
    """Write the collector's step series as tidy CSV rows.

    Columns: ``time_s, tps, vcores, memory_gb, cost_cumulative``.
    Returns the number of data rows written.  Series are sampled at the
    union of their timestamps (step semantics: last value carries
    forward).
    """
    times = sorted(
        set(collector.tps.times)
        | set(collector.vcores.times)
        | set(collector.cost.times)
    )
    writer = csv.writer(out)
    writer.writerow(["time_s", "tps", "vcores", "memory_gb", "cost_cumulative"])
    rows = 0
    for t in times:
        writer.writerow([
            t,
            _value_or_zero(collector.tps, t),
            _value_or_zero(collector.vcores, t),
            _value_or_zero(collector.memory_gb, t),
            _value_or_zero(collector.cost, t),
        ])
        rows += 1
    return rows


def _value_or_zero(series, t: float) -> float:
    try:
        return series.value_at(t)
    except Exception:
        return 0.0


def collector_to_csv_string(collector: PerformanceCollector) -> str:
    buffer = io.StringIO()
    collector_to_csv(collector, buffer)
    return buffer.getvalue()


def events_to_csv(collector: PerformanceCollector, out: TextIO) -> int:
    """Write the collector's annotations (``note`` calls) as CSV rows.

    Columns: ``time_s, message``.  Returns the number of event rows.
    """
    writer = csv.writer(out)
    writer.writerow(["time_s", "message"])
    for time_s, message in collector.events:
        writer.writerow([time_s, message])
    return len(collector.events)


def events_to_json(collector: PerformanceCollector, indent: int = 2) -> str:
    """Serialise collector annotations as a JSON event list."""
    return json.dumps(
        [{"time_s": time_s, "message": message}
         for time_s, message in collector.events],
        indent=indent,
    )


def scores_to_json(scores: Mapping[str, PerfectScores], indent: int = 2) -> str:
    """Serialise a Table IX score card (one entry per SUT) to JSON."""
    payload = {}
    for name, s in scores.items():
        payload[name] = {
            "p_score": s.p,
            "p_score_actual": s.p_star,
            "e1_score": s.e1,
            "e1_score_actual": s.e1_star,
            "e2_score": s.e2,
            "r_score_s": s.r_s,
            "f_score_s": s.f_s,
            "c_score_ms": s.c_ms,
            "t_score": s.t,
            "t_score_actual": s.t_star,
            "o_score": s.o,
            "o_score_actual": s.o_star,
        }
    return json.dumps(payload, indent=indent, sort_keys=True)


def outcome_to_json(outcome, indent: int = 2) -> str:
    """Serialise an :class:`~repro.core.evalapi.EvalOutcome` to JSON.

    Every evaluator exports identically: name, title, table headers and
    rows, flat scores, timeline events, notes.  The native payload is
    dropped (it is not, in general, JSON-serialisable).
    """
    return json.dumps(outcome.to_dict(), indent=indent, sort_keys=True)


def outcome_to_csv(outcome, out: TextIO) -> int:
    """Write an outcome's table rows as CSV. Returns the row count."""
    writer = csv.writer(out)
    writer.writerow(list(outcome.headers))
    rows = 0
    for row in outcome.rows:
        writer.writerow(list(row))
        rows += 1
    return rows


def throughput_to_csv(
    data: Mapping[tuple, float], out: TextIO
) -> int:
    """Write a Figure 5 throughput matrix keyed by
    ``(arch, scale_factor, mode, concurrency)``."""
    writer = csv.writer(out)
    writer.writerow(["architecture", "scale_factor", "mode", "concurrency", "tps"])
    rows = 0
    for (arch, sf, mode, con), tps in sorted(data.items()):
        writer.writerow([arch, sf, mode, con, tps])
        rows += 1
    return rows

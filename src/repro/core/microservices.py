"""The Inventory and Manufacturing microservices (paper Figure 2).

Section II-A describes a SaaS ERP of three microservices sharing
schema/database/server: Sales (the paper's focus, T1-T4), plus
Manufacturing and Inventory named as future additions.  This module
implements those two, completing Figure 2:

* **Inventory service** -- PRODUCT, INVENTORY and RESTOCK_EVENT tables,
  with T5 (Restock: read-modify-write of a stock level plus an event
  insert) and T6 (Inventory Check: point read).
* **Manufacturing service** -- BOM (bill of materials) and WORKORDER
  tables, with T7 (Schedule Work Order: explode the BOM, reserve
  components, insert a work order) and T8 (Complete Work Order: finish
  the order and return the produced quantity to inventory).

The statements live in ``stmt_db_extended.toml`` and flow through the
same :class:`~repro.core.sqlreader.SqlStmts` mechanism as T1-T4, so
the workload manager and the cloud model need no changes -- the
extension is data plus this executor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.cloud.workload_model import TxnClass, WorkloadMix
from repro.core.datagen import nominal_bytes
from repro.core.sqlreader import SqlStmts
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema

#: the extended statement file shipped with the benchmark
EXTENDED_STMT_FILE = Path(__file__).with_name("stmt_db_extended.toml")

#: base row counts at scale factor 1 (inventory mirrors the sales scale)
PRODUCTS = 30_000
WAREHOUSES = 10
COMPONENTS_PER_PRODUCT = 3

PRODUCT = Schema(
    "PRODUCT",
    (
        Column("P_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("P_NAME", ColumnType.VARCHAR, length=24, nullable=False),
        Column("P_PRICE", ColumnType.DECIMAL, default=1.0),
    ),
    primary_key="P_ID",
)

INVENTORY = Schema(
    "INVENTORY",
    (
        Column("I_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("I_P_ID", ColumnType.INT, nullable=False),
        Column("I_WAREHOUSE", ColumnType.INT, nullable=False),
        Column("I_QUANTITY", ColumnType.INT, nullable=False, default=0),
        Column("I_UPDATEDDATE", ColumnType.TIMESTAMP),
    ),
    primary_key="I_ID",
)

RESTOCK_EVENT = Schema(
    "RESTOCK_EVENT",
    (
        Column("RE_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("RE_I_ID", ColumnType.INT, nullable=False),
        Column("RE_QUANTITY", ColumnType.INT, default=0),
        Column("RE_DATE", ColumnType.TIMESTAMP),
    ),
    primary_key="RE_ID",
)

BOM = Schema(
    "BOM",
    (
        Column("B_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("B_P_ID", ColumnType.INT, nullable=False),
        Column("B_COMPONENT_ID", ColumnType.INT, nullable=False),
        Column("B_COUNT", ColumnType.INT, default=1),
    ),
    primary_key="B_ID",
)

WORKORDER = Schema(
    "WORKORDER",
    (
        Column("W_ID", ColumnType.INT, nullable=False, autoincrement=True),
        Column("W_P_ID", ColumnType.INT, nullable=False),
        Column("W_QUANTITY", ColumnType.INT, default=1),
        Column("W_STATUS", ColumnType.VARCHAR, length=12, default="SCHEDULED"),
        Column("W_DUE", ColumnType.TIMESTAMP),
    ),
    primary_key="W_ID",
)

EXTENDED_SCHEMAS = [PRODUCT, INVENTORY, RESTOCK_EVENT, BOM, WORKORDER]

#: resource footprints of the extended transactions (same calibration
#: scale as T1-T4; T7 explodes a three-component BOM)
EXTENDED_TXN_CLASSES: Dict[str, TxnClass] = {
    "T5": TxnClass("T5", cpu_s=0.9e-3, page_reads=2, page_writes=2,
                   log_bytes=350, rows_written=2, rows_updated=1, statements=3),
    "T6": TxnClass("T6", cpu_s=0.17e-3, page_reads=2, page_writes=0,
                   log_bytes=0, statements=1),
    "T7": TxnClass("T7", cpu_s=2.4e-3, page_reads=6, page_writes=4,
                   log_bytes=900, rows_written=4, rows_updated=3, statements=5),
    "T8": TxnClass("T8", cpu_s=1.3e-3, page_reads=3, page_writes=2,
                   log_bytes=400, rows_written=2, rows_updated=2, statements=3),
}


def create_extended_schema(db: Database) -> None:
    """Create the inventory + manufacturing tables and their indexes."""
    for schema in EXTENDED_SCHEMAS:
        db.create_table(schema)
    db.create_index("INVENTORY", "inventory_pw", ("I_P_ID", "I_WAREHOUSE"), unique=True)
    db.create_index("BOM", "bom_p", ("B_P_ID",))
    db.create_index("WORKORDER", "workorder_p", ("W_P_ID",))


@dataclass
class ExtendedScale:
    products: int
    warehouses: int


def load_extended(
    db: Database,
    scale_factor: int = 1,
    row_scale: float = 0.01,
    seed: int = 42,
    create_schema: bool = True,
) -> ExtendedScale:
    """Populate the extended services (optionally into the sales database:
    the paper's tenants share schema/database/server among services)."""
    if create_schema:
        create_extended_schema(db)
    rng = random.Random(seed)
    products = max(30, int(PRODUCTS * scale_factor * row_scale))
    now = 1_700_000_000.0

    product = db.table("PRODUCT")
    for p_id in range(1, products + 1):
        product.insert_row((p_id, f"Product#{p_id:06d}", round(rng.uniform(1, 500), 2)))

    inventory = db.table("INVENTORY")
    i_id = 0
    for p_id in range(1, products + 1):
        for warehouse in range(1, WAREHOUSES + 1):
            i_id += 1
            inventory.insert_row((i_id, p_id, warehouse, rng.randint(0, 500), now))

    bom = db.table("BOM")
    b_id = 0
    for p_id in range(1, products + 1):
        for _ in range(COMPONENTS_PER_PRODUCT):
            b_id += 1
            bom.insert_row((b_id, p_id, rng.randint(1, products), rng.randint(1, 4)))

    return ExtendedScale(products=products, warehouses=WAREHOUSES)


@dataclass(frozen=True)
class ExtendedMix:
    """Weights over T5-T8 (the extended services' transaction mix)."""

    t5: float = 0.0
    t6: float = 0.0
    t7: float = 0.0
    t8: float = 0.0

    def __post_init__(self) -> None:
        weights = (self.t5, self.t6, self.t7, self.t8)
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError(f"invalid extended mix {weights}")

    @property
    def weights(self) -> Tuple[Tuple[str, float], ...]:
        return tuple(
            (task, weight)
            for task, weight in (
                ("T5", self.t5), ("T6", self.t6), ("T7", self.t7), ("T8", self.t8)
            )
            if weight > 0
        )

    def to_workload_mix(self, scale_factor: int = 1) -> WorkloadMix:
        classes = tuple(
            (EXTENDED_TXN_CLASSES[task], weight) for task, weight in self.weights
        )
        return WorkloadMix(
            name=f"erp-extended/SF{scale_factor}",
            classes=classes,
            working_set_bytes=nominal_bytes(scale_factor) * 0.4,
        )


#: the inventory-heavy default mix: mostly checks, some restocks and orders
INVENTORY_MIX = ExtendedMix(t5=10, t6=70, t7=12, t8=8)


class ExtendedWorkload:
    """Functional executor of T5-T8 against a loaded engine database."""

    def __init__(
        self,
        db: Database,
        scale: ExtendedScale,
        mix: ExtendedMix = INVENTORY_MIX,
        seed: int = 42,
        stmts: Optional[SqlStmts] = None,
    ):
        self.db = db
        self.scale = scale
        self.mix = mix
        self.stmts = stmts or SqlStmts.from_file(EXTENDED_STMT_FILE)
        self._rng = random.Random(seed)
        self._clock = 1_700_000_000.0
        self._workorder_high = db.table("WORKORDER").row_count
        self.executed: Dict[str, int] = {t: 0 for t in ("T5", "T6", "T7", "T8")}

    def _now(self) -> float:
        self._clock += 0.001
        return self._clock

    def _pick_pw(self) -> Tuple[int, int]:
        return (
            self._rng.randint(1, self.scale.products),
            self._rng.randint(1, self.scale.warehouses),
        )

    # -- transactions ----------------------------------------------------------

    def run_t5(self) -> bool:
        """Restock: bump one stock level and record the event."""
        select, update, insert = self.stmts.statements("T5")
        p_id, warehouse = self._pick_pw()
        amount = self._rng.randint(10, 200)
        with self.db.begin() as txn:
            row = self.db.execute(select, [p_id, warehouse], txn=txn).first()
            if row is None:
                return False
            i_id, _quantity = row
            now = self._now()
            self.db.execute(update, [amount, now, i_id], txn=txn)
            self.db.execute(insert, [i_id, amount, now], txn=txn)
        return True

    def run_t6(self) -> Optional[Tuple]:
        (select,) = self.stmts.statements("T6")
        p_id, warehouse = self._pick_pw()
        return self.db.query(select, [p_id, warehouse]).first()

    def run_t7(self) -> Optional[int]:
        """Schedule a work order: explode the BOM, reserve components."""
        bom_select, reserve, insert = self.stmts.statements("T7")
        p_id, warehouse = self._pick_pw()
        quantity = self._rng.randint(1, 5)
        with self.db.begin() as txn:
            components = self.db.execute(bom_select, [p_id], txn=txn).rows
            if not components:
                return None
            now = self._now()
            for component_id, count in components:
                self.db.execute(
                    reserve, [count * quantity, now, component_id, warehouse],
                    txn=txn,
                )
            self.db.execute(insert, [p_id, quantity, now + 86_400], txn=txn)
        self._workorder_high += 1
        return self._workorder_high

    def run_t8(self) -> bool:
        """Complete a work order and return the yield to inventory."""
        select, finish, credit = self.stmts.statements("T8")
        if self._workorder_high == 0:
            return False
        w_id = self._rng.randint(1, self._workorder_high)
        with self.db.begin() as txn:
            row = self.db.execute(select, [w_id], txn=txn).first()
            if row is None:
                return False
            _w_id, p_id, quantity = row
            self.db.execute(finish, [w_id], txn=txn)
            self.db.execute(
                credit,
                [quantity, self._now(), p_id, self._rng.randint(1, self.scale.warehouses)],
                txn=txn,
            )
        return True

    # -- driver -------------------------------------------------------------------

    def run_one(self, task: Optional[str] = None) -> str:
        if task is None:
            tasks, weights = zip(*self.mix.weights)
            task = self._rng.choices(tasks, weights=weights, k=1)[0]
        {
            "T5": self.run_t5, "T6": self.run_t6,
            "T7": self.run_t7, "T8": self.run_t8,
        }[task]()
        self.executed[task] += 1
        return task

    def run_many(self, count: int) -> Dict[str, int]:
        for _ in range(count):
            self.run_one()
        return dict(self.executed)

"""Plain-text table and figure-series rendering for the bench harness.

Every benchmark prints its table or figure in the same layout the paper
uses, so paper-vs-measured comparison is a visual diff.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


class TextTable:
    """Aligned monospace table with an optional title."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(header) for header in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        separator = "-+-".join("-" * width for width in widths)
        lines.append(
            " | ".join(header.ljust(width) for header, width in zip(self.headers, widths))
        )
        lines.append(separator)
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()


def outcome_table(outcome) -> TextTable:
    """Render an :class:`~repro.core.evalapi.EvalOutcome` as a TextTable."""
    table = TextTable(outcome.headers, title=outcome.title)
    for row in outcome.rows:
        table.add_row(*row)
    return table


def figure_series(
    title: str,
    x_label: str,
    xs: Iterable[Any],
    series: dict[str, Sequence[float]],
) -> str:
    """Render figure data as one table: x column plus one column per line."""
    table = TextTable([x_label, *series.keys()], title=title)
    xs = list(xs)
    for index, x in enumerate(xs):
        table.add_row(x, *[values[index] for values in series.values()])
    return table.render()


def events_table(
    events: Sequence[tuple],
    title: str = "Timeline events",
    limit: Optional[int] = None,
) -> str:
    """Render collector annotations (``(time_s, message)`` pairs).

    ``limit`` keeps long runs readable: the first ``limit`` events are
    shown and a trailing row counts the elision.
    """
    table = TextTable(["t (s)", "event"], title=title)
    shown = list(events) if limit is None else list(events)[:limit]
    for time_s, message in shown:
        table.add_row(round(float(time_s), 1), message)
    hidden = len(events) - len(shown)
    if hidden > 0:
        table.add_row("...", f"({hidden} more events)")
    return table.render()


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse unicode sparkline for timeline sanity checks."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(values) or 1.0
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    return "".join(blocks[min(8, int(value / top * 8))] for value in sampled)

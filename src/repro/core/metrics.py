"""The "PERFECT" metric framework (paper Section II-G).

Seven scores quantify a cloud database's service quality:

* **P-Score** -- productivity: average TPS per resource-unit cost (1).
* **E1-Score** -- scale-up/down elasticity: TPS per elastic cost (2).
* **F-Score** -- fail-over: injection -> service restoration (3).
* **R-Score** -- recovery: service restoration -> TPS restored (4).
* **E2-Score** -- scale-out elasticity: TPS gained per added RO node (5).
* **C-Score** -- replication lag for consistency (6).
* **T-Score** -- multi-tenancy: geometric-mean tenant TPS per cost (7).

They combine into the unified **O-Score** (8)::

    O = SF * lg(P * T * E1 * E2 / (R * F * C))

Each score can also be computed against the vendors' *actual* prices
(the starred variants of Table IX), which reranks the systems because
billing minimums and per-vendor price lists dominate short runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.cloud.architectures import Architecture
from repro.cloud.mva_model import estimate_throughput
from repro.cloud.specs import ProvisionedPackage
from repro.cloud.workload_model import WorkloadMix
from repro.core.pricing import actual_cost, package_cost_per_minute

#: the E2 normalisation factor delta of Equation (5)
E2_DELTA = 1000.0


def p_score(avg_tps: float, package: ProvisionedPackage) -> float:
    """Equation (1): average TPS over the per-minute RUC of the bundle."""
    cost = package_cost_per_minute(package)
    return avg_tps / cost if cost > 0 else 0.0


def p_score_actual(
    avg_tps: float, arch: Architecture, package: ProvisionedPackage,
    duration_s: float = 600.0,
) -> float:
    """P-Score* with the vendor's billed cost for a ``duration_s`` run."""
    billed = actual_cost(arch.pricing, package, duration_s)
    per_minute = billed / (duration_s / 60.0)
    return avg_tps / per_minute if per_minute > 0 else 0.0


def scale_out_tps(
    arch: Architecture,
    workload: WorkloadMix,
    concurrency: int,
    n_ro_nodes: int,
) -> float:
    """Total TPS with ``n_ro_nodes`` read replicas added.

    Writers stay on the RW node; each added replica serves the
    read-only share of the mix at the architecture's replica
    efficiency (shared-storage replicas contend on page services, an
    RDS replica owns a full local copy).
    """
    base = estimate_throughput(arch, workload, concurrency).tps
    read_fraction = 1.0 - workload.write_fraction
    return base * (1.0 + n_ro_nodes * read_fraction * arch.replica_efficiency)


def e2_score(
    arch: Architecture,
    workload: WorkloadMix,
    concurrency: int = 150,
    n_ro_nodes: int = 1,
    delta: float = E2_DELTA,
) -> float:
    """Equation (5): average TPS gained per added RO node, over delta."""
    if n_ro_nodes < 1:
        raise ValueError("need at least one added RO node")
    total = 0.0
    previous = scale_out_tps(arch, workload, concurrency, 0)
    for nodes in range(1, n_ro_nodes + 1):
        current = scale_out_tps(arch, workload, concurrency, nodes)
        total += (current - previous) / delta
        previous = current
    return total / n_ro_nodes


def o_score(
    p: float,
    t: float,
    e1: float,
    e2: float,
    r_s: float,
    f_s: float,
    c_ms: float,
    scale_factor: float = 1.0,
) -> float:
    """Equation (8): ``SF * lg(P*T*E1*E2 / (R*F*C))``.

    R and F are in seconds, C in milliseconds (the paper's units in
    Table IX).  Non-positive inputs make the score undefined; they are
    clamped to tiny positives so a system that never recovered scores
    terribly instead of crashing the report.
    """
    eps = 1e-9
    numerator = max(p, eps) * max(t, eps) * max(e1, eps) * max(e2, eps)
    denominator = max(r_s, eps) * max(f_s, eps) * max(c_ms, eps)
    return scale_factor * math.log10(numerator / denominator)


@dataclass
class PerfectScores:
    """One architecture's row of Table IX."""

    arch_name: str
    p: float = 0.0
    p_star: float = 0.0
    e1: float = 0.0
    e1_star: float = 0.0
    e2: float = 0.0
    r_s: float = 0.0
    f_s: float = 0.0
    c_ms: float = 0.0
    t: float = 0.0
    t_star: float = 0.0
    scale_factor: float = 1.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def o(self) -> float:
        return o_score(
            self.p, self.t, self.e1, self.e2,
            self.r_s, self.f_s, self.c_ms, self.scale_factor,
        )

    @property
    def o_star(self) -> float:
        return o_score(
            self.p_star, self.t_star, self.e1_star, self.e2,
            self.r_s, self.f_s, self.c_ms, self.scale_factor,
        )

    def as_row(self) -> tuple:
        return (
            self.arch_name, round(self.p), round(self.p_star),
            round(self.e1), round(self.e1_star),
            round(self.r_s, 1), round(self.f_s, 1), round(self.e2, 1),
            round(self.c_ms, 1), round(self.t), round(self.t_star),
            round(self.o, 2), round(self.o_star, 2),
        )

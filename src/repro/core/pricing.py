"""Resource Unit Cost (RUC) -- paper Section II-F, Table III.

The RUC normalises cost across providers: a standard hourly price per
basic resource unit (1 vCore, 1 GB RAM, 1 GB storage, 100 IOPS, 1 Gbps
network), derived by fixing the CPU:RAM price ratio from hardware
prices (0.95 : 0.05) and averaging the per-unit prices of the four
vendors.  Every provisioned package then costs

    cost/hour = vcores * CPU + memory * MEM + storage * STO
              + iops/100 * IOPS + gbps * NET(kind)

The *actual cost* model (the starred scores in Table IX) instead uses
each vendor's own price list including billing minimums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cloud.specs import NetworkKind, PricingModel, ProvisionedPackage

#: Table III: resource unit cost per hour (USD)
CPU_VCORE_HOUR = 0.1847
MEMORY_GB_HOUR = 0.0095
STORAGE_GB_HOUR = 0.000853
IOPS_100_HOUR = 0.00015
TCP_GBPS_HOUR = 0.07696
RDMA_GBPS_HOUR = 0.23088

#: the CPU:RAM ratio fixed from hardware prices (Section II-F)
CPU_RAM_RATIO = (0.95, 0.05)


@dataclass(frozen=True)
class RucRow:
    """One row of Table III."""

    unit: str
    cost_per_hour: float
    reference: str


RUC_TABLE: List[RucRow] = [
    RucRow("CPU (vCore)", CPU_VCORE_HOUR, "Aurora/PolarDB/HyperScale/Neon"),
    RucRow("Memory (GB)", MEMORY_GB_HOUR, "Aurora/PolarDB/HyperScale/Neon"),
    RucRow("Storage (GB)", STORAGE_GB_HOUR, "Aurora/PolarDB/HyperScale/Neon"),
    RucRow("IOPS (100)", IOPS_100_HOUR, "AWS RDS IOPS Pricing"),
    RucRow("TCP/IP Network (Gbps)", TCP_GBPS_HOUR, "Huawei S1730S-S24T4X-QA2 10G"),
    RucRow("RDMA Network (Gbps)", RDMA_GBPS_HOUR, "MELLANOX MSB7890-ES2F 100G"),
]


def network_unit_price(kind: NetworkKind) -> float:
    return RDMA_GBPS_HOUR if kind is NetworkKind.RDMA else TCP_GBPS_HOUR


def package_cost_per_hour(package: ProvisionedPackage) -> float:
    """RUC cost of a provisioned bundle, per hour."""
    return (
        package.vcores * CPU_VCORE_HOUR
        + package.memory_gb * MEMORY_GB_HOUR
        + package.storage_gb * STORAGE_GB_HOUR
        + package.iops / 100.0 * IOPS_100_HOUR
        + package.network_gbps * network_unit_price(package.network_kind)
    )


def package_cost_per_minute(package: ProvisionedPackage) -> float:
    return package_cost_per_hour(package) / 60.0


def package_cost_breakdown_per_minute(package: ProvisionedPackage) -> Dict[str, float]:
    """Per-resource cost per minute (the detail columns of Table V)."""
    return {
        "cpu": package.vcores * CPU_VCORE_HOUR / 60.0,
        "memory": package.memory_gb * MEMORY_GB_HOUR / 60.0,
        "storage": package.storage_gb * STORAGE_GB_HOUR / 60.0,
        "iops": package.iops / 100.0 * IOPS_100_HOUR / 60.0,
        "network": package.network_gbps
        * network_unit_price(package.network_kind)
        / 60.0,
    }


def allocation_cost(
    vcores: float,
    memory_gb: float,
    iops: float = 0.0,
    duration_s: float = 1.0,
    storage_gb: float = 0.0,
    network_gbps: float = 0.0,
    network_kind: NetworkKind = NetworkKind.TCP,
) -> float:
    """RUC cost of holding an allocation for ``duration_s`` seconds.

    This is the integrand of the elasticity evaluator's cost curves
    (cloud services charge for *allocated* resources, including while
    scaling).
    """
    per_hour = (
        vcores * CPU_VCORE_HOUR
        + memory_gb * MEMORY_GB_HOUR
        + storage_gb * STORAGE_GB_HOUR
        + iops / 100.0 * IOPS_100_HOUR
        + network_gbps * network_unit_price(network_kind)
    )
    return per_hour * duration_s / 3600.0


def actual_cost(
    pricing: PricingModel,
    package: ProvisionedPackage,
    duration_s: float,
) -> float:
    """Vendor-billed cost of a run, including the billing minimum.

    AWS RDS bills at least ten minutes, the elastic pool at least an
    hour -- which is why the starred scores of Table IX rank the systems
    differently than the RUC-normalised ones.
    """
    billed_s = max(duration_s, pricing.min_billing_s)
    per_hour = (
        package.vcores * pricing.vcore_hour
        + package.memory_gb * pricing.memory_gb_hour
        + package.storage_gb * pricing.storage_gb_hour
        + package.iops / 100.0 * pricing.iops_100_hour
        + package.network_gbps * pricing.network_gbps_hour
        + pricing.platform_hour
    )
    return per_hour * billed_s / 3600.0

"""Fail-over evaluator (paper Sections II-E and III-E).

Runs the restart-model failure injection on the RW node and on an RO
node while a constant read-write workload executes, then reports the
paper's two recovery metrics:

* **F-Score** -- average seconds from failure injection to service
  restoration (first successful request), per Equation (3).
* **R-Score** -- average seconds from service restoration to the TPS
  recovering its pre-failure level, per Equation (4).

The underlying timeline comes from
:class:`repro.cloud.failure.FailoverSimulator`; this evaluator measures
the scores *from the TPS timeline*, the way the paper's testbed does,
rather than reading the pipeline parameters directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.architectures import Architecture
from repro.cloud.failure import FailoverResult, FailoverSimulator
from repro.cloud.workload_model import WorkloadMix


@dataclass
class FailoverScores:
    """F/R scores for one architecture (one row of Table VIII)."""

    arch_name: str
    f_rw_s: float
    f_ro_s: float
    r_rw_s: float
    r_ro_s: float
    results: Dict[str, FailoverResult] = field(default_factory=dict)

    @property
    def f_avg_s(self) -> float:
        return (self.f_rw_s + self.f_ro_s) / 2.0

    @property
    def r_avg_s(self) -> float:
        return (self.r_rw_s + self.r_ro_s) / 2.0

    @property
    def total_s(self) -> float:
        return self.f_rw_s + self.f_ro_s + self.r_rw_s + self.r_ro_s


def _measure_from_timeline(result: FailoverResult, threshold: float) -> tuple[float, float]:
    """(F, R) measured off the TPS timeline.

    F: first time after injection with TPS above the outage floor.
    R: from that point until TPS >= threshold x steady.
    """
    steady = result.steady_tps
    floor = min(tps for t, tps in result.timeline if t >= result.inject_s)
    service_at: Optional[float] = None
    recovered_at: Optional[float] = None
    for t, tps in result.timeline:
        if t < result.inject_s:
            continue
        if service_at is None:
            if tps > floor + 1e-9 and t > result.inject_s:
                service_at = t
        elif recovered_at is None and tps >= threshold * steady:
            recovered_at = t
            break
    if service_at is None:
        service_at = result.service_restored_s
    if recovered_at is None:
        recovered_at = result.tps_recovered_s
    return service_at - result.inject_s, recovered_at - service_at


class FailOverEvaluator:
    """Injects RW and RO failures and scores the recovery."""

    def __init__(
        self,
        arch: Architecture,
        workload: WorkloadMix,
        concurrency: int = 150,
        recovery_threshold: float = 0.95,
        repeats: int = 1,
    ):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.arch = arch
        self.workload = workload
        self.concurrency = concurrency
        self.recovery_threshold = recovery_threshold
        self.repeats = repeats

    def run(self) -> FailoverScores:
        simulator = FailoverSimulator(
            self.arch,
            self.workload,
            self.concurrency,
            recovery_threshold=self.recovery_threshold,
        )
        results: Dict[str, FailoverResult] = {}
        scores: Dict[str, List[float]] = {"f_rw": [], "f_ro": [], "r_rw": [], "r_ro": []}
        for phase in range(self.repeats):
            for node in ("rw", "ro"):
                result = simulator.run(node=node, inject_at_s=30.0 + phase)
                f_s, r_s = _measure_from_timeline(result, self.recovery_threshold)
                scores[f"f_{node}"].append(f_s)
                scores[f"r_{node}"].append(r_s)
                results[f"{node}#{phase}"] = result
        average = {key: sum(values) / len(values) for key, values in scores.items()}
        return FailoverScores(
            arch_name=self.arch.name,
            f_rw_s=average["f_rw"],
            f_ro_s=average["f_ro"],
            r_rw_s=average["r_rw"],
            r_ro_s=average["r_ro"],
            results=results,
        )

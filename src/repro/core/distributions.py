"""Access distributions for substitution parameters (Section II-B).

Two distributions are supported, as in the paper:

* **uniform** -- keys drawn uniformly over the whole key space.
* **latest-k** -- a skewed distribution produced by restricting the
  access range of ``O_ID``: writers (T2) update ``k`` specific recent
  items and readers (T3) read those same items at random.  The more
  skewed the distribution, the more likely fresh data is read.
"""

from __future__ import annotations

import random
from typing import Protocol


class KeyDistribution(Protocol):
    """Draws substitution-parameter keys from ``[1, key_space]``."""

    def next_key(self) -> int: ...

    @property
    def hot_fraction(self) -> float: ...

    @property
    def hot_keys(self) -> int: ...


class UniformDistribution:
    """Keys drawn uniformly over the full key space."""

    def __init__(self, key_space: int, rng: random.Random):
        if key_space < 1:
            raise ValueError("key space must be >= 1")
        self.key_space = key_space
        self._rng = rng

    def next_key(self) -> int:
        return self._rng.randint(1, self.key_space)

    @property
    def hot_fraction(self) -> float:
        return 0.0

    @property
    def hot_keys(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformDistribution(key_space={self.key_space})"


class LatestDistribution:
    """Latest-``k``: most accesses hit the ``k`` newest keys.

    ``skew`` is the probability that an access targets the hot range;
    the rest spill uniformly over the whole key space.  Latest-10 with
    the paper's semantics is ``LatestDistribution(space, k=10)``.
    """

    def __init__(
        self,
        key_space: int,
        k: int,
        rng: random.Random,
        skew: float = 0.9,
    ):
        if key_space < 1 or k < 1:
            raise ValueError("key space and k must be >= 1")
        if not 0 < skew <= 1:
            raise ValueError("skew must be in (0, 1]")
        self.key_space = key_space
        self.k = min(k, key_space)
        self.skew = skew
        self._rng = rng

    def next_key(self) -> int:
        if self._rng.random() < self.skew:
            low = max(1, self.key_space - self.k + 1)
            return self._rng.randint(low, self.key_space)
        return self._rng.randint(1, self.key_space)

    @property
    def hot_fraction(self) -> float:
        return self.skew

    @property
    def hot_keys(self) -> int:
        return self.k

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LatestDistribution(key_space={self.key_space}, "
            f"k={self.k}, skew={self.skew})"
        )


def make_distribution(
    name: str, key_space: int, rng: random.Random, latest_k: int = 10
) -> KeyDistribution:
    """Factory from config strings: ``"uniform"`` or ``"latest"``/``"latest-N"``."""
    lowered = name.lower()
    if lowered == "uniform":
        return UniformDistribution(key_space, rng)
    if lowered == "latest":
        return LatestDistribution(key_space, latest_k, rng)
    if lowered.startswith("latest-"):
        k = int(lowered.split("-", 1)[1])
        return LatestDistribution(key_space, k, rng)
    raise ValueError(f"unknown distribution {name!r} (use 'uniform' or 'latest[-k]')")

"""The transport-agnostic ``Client`` protocol.

Every workload in the testbed issues the same seven verbs --
``connect`` / ``execute`` / ``query`` / ``begin`` / ``commit`` /
``rollback`` / ``close`` -- and this module pins them down as a
:class:`typing.Protocol` so the *same workload code* can run over any
transport:

* :class:`EngineClient` -- in-process against one
  :class:`~repro.engine.database.Database` (the seed behaviour);
* :class:`FleetClient` -- in-process against a
  :class:`~repro.shard.fleet.ShardedDatabase`, with cross-shard
  transaction affinity (statements inside ``begin``/``commit`` enlist
  in one global transaction);
* :class:`ResilientClient` -- wraps other clients behind a
  :class:`~repro.core.resilience.ResilientSession`, so autocommit
  statements retry/fail over exactly as the resilience stack dictates;
* :class:`repro.serve.client.SocketClient` -- the same verbs over a
  real TCP socket to a :class:`repro.serve.server.SQLServer`.

The contract that makes transports interchangeable is the *error*
surface: every implementation raises the engine's exception hierarchy
(:mod:`repro.engine.errors`), with ``retryable`` and ``retry_after_s``
intact -- the socket client reconstructs them from wire frames (see
:mod:`repro.serve.errors`), so ``is_retryable`` / breaker
classification behave identically in-process and over the wire.

Two optional attributes ride along for workloads that need them:
``gtid`` (the id of the most recently begun global transaction --
``None`` for single-node clients) and ``deadline`` (anything with
``expired() -> bool``, propagated into the engine's cancellation
points where the transport supports it).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.engine.database import Database
from repro.engine.errors import EngineError, SqlError
from repro.engine.executor import ResultSet
from repro.engine.txn import IsolationLevel
from repro.core.resilience import ResilientSession

__all__ = [
    "Client",
    "ClientError",
    "EngineClient",
    "FleetClient",
    "ResilientClient",
    "coerce_isolation",
]


class ClientError(EngineError):
    """Client-side protocol misuse (begin inside begin, commit outside).

    Not retryable: the caller's state machine is wrong, not the server.
    """


def coerce_isolation(
    isolation: Optional[object],
) -> Optional[IsolationLevel]:
    """Accept an :class:`IsolationLevel`, its name, or ``None``."""
    if isolation is None or isinstance(isolation, IsolationLevel):
        return isolation
    name = str(isolation).strip().upper()
    try:
        return IsolationLevel[name]
    except KeyError:
        raise ClientError(f"unknown isolation level {isolation!r}") from None


@runtime_checkable
class Client(Protocol):
    """What every transport must provide (structural; no inheritance)."""

    def connect(self) -> None: ...

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet: ...

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet: ...

    def begin(self, isolation: Optional[object] = None) -> None: ...

    def commit(self) -> None: ...

    def rollback(self) -> None: ...

    def close(self) -> None: ...

    def abandon(self) -> None: ...

    @property
    def in_txn(self) -> bool: ...


class EngineClient:
    """In-process :class:`Client` over one engine database."""

    def __init__(self, db: Database):
        self.db = db
        self._txn = None
        #: per-statement deadline, propagated into the engine's
        #: cancellation points (set by deadline-aware workloads)
        self.deadline = None
        #: single-node transport: no global transaction ids
        self.gtid = None

    def connect(self) -> None:
        pass

    @property
    def in_txn(self) -> bool:
        return self._txn is not None and self._txn.is_active

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        if self.in_txn:
            return self.db.execute(sql, params, txn=self._txn)
        return self.db.execute(sql, params, deadline=self.deadline)

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        if self.in_txn:
            # reads inside the transaction must see its own writes
            return self.db.execute(sql, params, txn=self._txn)
        return self.db.query(sql, params, deadline=self.deadline)

    def begin(self, isolation: Optional[object] = None) -> None:
        if self.in_txn:
            raise ClientError("begin() inside an open transaction")
        self._txn = self.db.begin(
            isolation=coerce_isolation(isolation), deadline=self.deadline
        )

    def commit(self) -> None:
        txn = self._require_txn("commit")
        try:
            txn.commit()
        finally:
            if not txn.is_active:
                self._txn = None

    def rollback(self) -> None:
        txn = self._require_txn("rollback")
        try:
            txn.rollback()
        finally:
            if not txn.is_active:
                self._txn = None

    def close(self) -> None:
        if self.in_txn:
            self.rollback()

    def abandon(self) -> None:
        """Drop transaction affinity without rolling back.

        For when a :class:`~repro.engine.errors.SimulatedCrash` left
        the transaction dangling on purpose: the branch state belongs
        to crash recovery now, but this client must be able to
        ``begin()`` the next transaction.
        """
        self._txn = None

    def _require_txn(self, verb: str):
        if self._txn is None:
            raise ClientError(f"{verb}() outside a transaction")
        return self._txn


class FleetClient:
    """In-process :class:`Client` over a sharded fleet.

    Transaction affinity: between ``begin()`` and ``commit()`` every
    statement enlists in one :class:`~repro.shard.coordinator.
    GlobalTransaction`, so multi-statement transactions run cross-shard
    2PC exactly as the raw ``fleet.begin()`` API does.
    """

    def __init__(self, fleet):
        self.fleet = fleet
        self._gtxn = None
        self.deadline = None
        #: id of the most recently begun global transaction (persists
        #: after commit -- history recorders read it post-ack)
        self.gtid: Optional[str] = None

    def connect(self) -> None:
        pass

    @property
    def in_txn(self) -> bool:
        return self._gtxn is not None and self._gtxn.is_active

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        gtxn = self._gtxn  # in_txn inlined: one statement per OLTP txn op
        if gtxn is not None and gtxn.is_active:
            return self.fleet.execute(sql, params, gtxn=gtxn)
        return self.fleet.execute(sql, params)

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        gtxn = self._gtxn
        if gtxn is not None and gtxn.is_active:
            return self.fleet.execute(sql, params, gtxn=gtxn)
        return self.fleet.query(sql, params)

    def begin(self, isolation: Optional[object] = None) -> None:
        if self.in_txn:
            raise ClientError("begin() inside an open transaction")
        self._gtxn = self.fleet.begin(
            isolation=coerce_isolation(isolation), deadline=self.deadline
        )
        self.gtid = self._gtxn.gtid

    def commit(self) -> None:
        gtxn = self._require_txn("commit")
        try:
            gtxn.commit()
        finally:
            if not gtxn.is_active:
                self._gtxn = None

    def rollback(self) -> None:
        gtxn = self._require_txn("rollback")
        try:
            gtxn.rollback()
        finally:
            if not gtxn.is_active:
                self._gtxn = None

    def close(self) -> None:
        if self.in_txn:
            try:
                self.rollback()
            except EngineError:
                pass

    def abandon(self) -> None:
        """Drop transaction affinity without rolling back (post-crash)."""
        self._gtxn = None

    def _require_txn(self, verb: str):
        if self._gtxn is None:
            raise ClientError(f"{verb}() outside a transaction")
        return self._gtxn


class ResilientClient:
    """A :class:`Client` whose autocommit statements ride the
    resilience stack.

    ``clients`` maps endpoint names to inner clients; ``session`` (a
    :class:`~repro.core.resilience.ResilientSession` over the same
    endpoint names) owns retries, backoff, breakers and failover.
    Autocommit ``execute``/``query`` go through ``session.call`` --
    retryable errors replay against the next healthy endpoint, exactly
    as the availability evaluator's raw sessions do.  Transactions pin
    to one endpoint at ``begin()`` (statement replay inside an open
    transaction would duplicate writes); ``commit``/``rollback`` run on
    the pinned endpoint and unpin.
    """

    def __init__(
        self,
        clients: Dict[str, "Client"],
        session: Optional[ResilientSession] = None,
        timeout_budget_s: Optional[float] = None,
    ):
        if not clients:
            raise ValueError("need at least one endpoint client")
        self.clients = dict(clients)
        self.session = session or ResilientSession(list(self.clients))
        unknown = [e for e in self.session.endpoints if e not in self.clients]
        if unknown:
            raise ValueError(f"session endpoints without clients: {unknown}")
        self.timeout_budget_s = timeout_budget_s
        self._pinned: Optional[str] = None
        self.deadline = None
        self.gtid: Optional[str] = None

    def connect(self) -> None:
        for client in self.clients.values():
            client.connect()

    @property
    def in_txn(self) -> bool:
        return (
            self._pinned is not None
            and self.clients[self._pinned].in_txn
        )

    def _call(self, attempt) -> ResultSet:
        outcome = self.session.call(
            attempt, timeout_budget_s=self.timeout_budget_s
        )
        if outcome.ok:
            return outcome.value
        raise outcome.error or SqlError("resilient call failed without error")

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        if self.in_txn:
            return self.clients[self._pinned].execute(sql, params)
        return self._call(
            lambda endpoint: self.clients[endpoint].execute(sql, params)
        )

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        if self.in_txn:
            return self.clients[self._pinned].query(sql, params)
        return self._call(
            lambda endpoint: self.clients[endpoint].query(sql, params)
        )

    def begin(self, isolation: Optional[object] = None) -> None:
        if self.in_txn:
            raise ClientError("begin() inside an open transaction")

        def attempt(endpoint: str):
            self.clients[endpoint].begin(isolation)
            return endpoint

        self._pinned = self._call(attempt)
        self.gtid = getattr(self.clients[self._pinned], "gtid", None)

    def commit(self) -> None:
        pinned = self._require_pin("commit")
        try:
            self.clients[pinned].commit()
        finally:
            if not self.clients[pinned].in_txn:
                self._pinned = None

    def rollback(self) -> None:
        pinned = self._require_pin("rollback")
        try:
            self.clients[pinned].rollback()
        finally:
            if not self.clients[pinned].in_txn:
                self._pinned = None

    def close(self) -> None:
        for client in self.clients.values():
            client.close()
        self._pinned = None

    def abandon(self) -> None:
        """Drop transaction affinity without rolling back (post-crash)."""
        if self._pinned is not None:
            self.clients[self._pinned].abandon()
            self._pinned = None

    def _require_pin(self, verb: str) -> str:
        if self._pinned is None:
            raise ClientError(f"{verb}() outside a transaction")
        return self._pinned

"""Elasticity evaluator (paper Sections II-C and III-C).

Four deterministic patterns with peaks and valleys are generated
proportionally to a reference concurrency ``tau`` (the concurrency at
which the tested database saturates):

* (a) **single peak**  (0, 100%, 0)         -- an ETL-style spike
* (b) **large spike**  (10%, 80%, 10%)      -- a hot-selling product
* (c) **single valley** (40%, 20%, 40%)     -- declining sales
* (d) **zero valley**  (50%, 0, 50%)        -- pause-and-resume probe

Each slot is one minute.  The evaluator steps the simulation clock one
second at a time, feeding the instantaneous demand to the
architecture's autoscaler and reading TPS from the throughput model at
the *allocated* resources.  Cost integrates allocated resources at RUC
prices (clouds charge while scaling!), split into execution cost (the
demand-matched part) and scaling cost (over-allocation during policy
lag).  Scaling times per slot transition are measured from the
allocation timeline -- Table VI falls out of this log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.architectures import Architecture
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.mva_model import estimate_throughput, required_vcores
from repro.cloud.specs import ComputeAllocation, ScalingKind
from repro.cloud.workload_model import WorkloadMix
from repro.core.collector import PerformanceCollector
from repro.core.pricing import allocation_cost

#: one slot is one minute (paper Section II-C)
SLOT_SECONDS = 60.0


@dataclass(frozen=True)
class ElasticPattern:
    """A named pattern: concurrency proportions of tau, one per slot."""

    key: str
    name: str
    proportions: Tuple[float, ...]
    description: str

    def concurrency_slots(self, tau: int) -> List[int]:
        return [int(round(p * tau)) for p in self.proportions]


ELASTIC_PATTERNS: Dict[str, ElasticPattern] = {
    "single_peak": ElasticPattern(
        "single_peak", "Single Peak", (0.0, 1.0, 0.0),
        "a single spike, e.g. an ETL maintenance job",
    ),
    "large_spike": ElasticPattern(
        "large_spike", "Large Spike", (0.1, 0.8, 0.1),
        "small ramps around a large spike (hot-selling product)",
    ),
    "single_valley": ElasticPattern(
        "single_valley", "Single Valley", (0.4, 0.2, 0.4),
        "demand dips mid-run (declined sales after a price change)",
    ),
    "zero_valley": ElasticPattern(
        "zero_valley", "Zero Valley", (0.5, 0.0, 0.5),
        "demand pauses entirely (out of stock), probing pause-and-resume",
    ),
}


def pareto_proportions(n_slots: int, alpha: float = 1.16) -> Tuple[float, ...]:
    """Default proportions via the Pareto distribution (Section II-C).

    Deterministic: slot ``i`` gets the Pareto survival weight of rank
    ``i+1``, normalised so the largest slot is 1.0.
    """
    if n_slots < 1:
        raise ValueError("need at least one slot")
    weights = [(1.0 / (rank + 1)) ** alpha for rank in range(n_slots)]
    top = max(weights)
    return tuple(weight / top for weight in weights)


def custom_pattern(key: str, proportions: Sequence[float], name: str = "") -> ElasticPattern:
    """User-defined pattern (the props-file extensibility path)."""
    return ElasticPattern(
        key=key,
        name=name or key,
        proportions=tuple(proportions),
        description="user-defined pattern",
    )


def pattern_from_trace(
    key: str,
    samples: Sequence[Tuple[float, float]],
    slot_seconds: float = SLOT_SECONDS,
    name: str = "",
) -> ElasticPattern:
    """Build a pattern from a recorded concurrency trace.

    ``samples`` are (time_s, concurrency) points from a production
    trace (or a collector's demand series).  The trace is bucketed into
    ``slot_seconds`` slots by time-weighted averaging and normalised to
    proportions of its peak, so it can be replayed at any tau -- the
    same mechanism CAB-style benchmarks use to replay arrival patterns.
    """
    if not samples:
        raise ValueError("a trace needs at least one sample")
    ordered = sorted(samples)
    end = ordered[-1][0] + slot_seconds
    n_slots = max(1, int(end // slot_seconds))
    totals = [0.0] * n_slots
    weights = [0.0] * n_slots
    for index, (t, value) in enumerate(ordered):
        next_t = ordered[index + 1][0] if index + 1 < len(ordered) else t + 1.0
        span = max(1e-9, next_t - t)
        slot = min(n_slots - 1, int(t // slot_seconds))
        totals[slot] += value * span
        weights[slot] += span
    levels = [totals[i] / weights[i] if weights[i] else 0.0 for i in range(n_slots)]
    peak = max(levels)
    if peak <= 0:
        raise ValueError("trace never exceeds zero concurrency")
    return ElasticPattern(
        key=key,
        name=name or key,
        proportions=tuple(level / peak for level in levels),
        description=f"replayed trace ({len(samples)} samples)",
    )


@dataclass
class SlotTransition:
    """Scaling behaviour at one slot boundary (Table VI rows)."""

    from_concurrency: int
    to_concurrency: int
    change_at_s: float
    settled_at_s: Optional[float]
    scaling_cost: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.from_concurrency}->{self.to_concurrency}"

    @property
    def scaling_time_s(self) -> Optional[float]:
        if self.settled_at_s is None:
            return None
        return self.settled_at_s - self.change_at_s


@dataclass
class ElasticityResult:
    """Everything measured during one pattern run."""

    arch_name: str
    pattern: ElasticPattern
    workload_name: str
    tau: int
    slots: List[int]
    collector: PerformanceCollector
    avg_tps: float
    execution_cost: float
    scaling_cost: float
    elastic_cost: float          # cpu + memory + iops share (E1 denominator)
    infra_cost: float            # storage + network baseline
    transitions: List[SlotTransition] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        """Figure 6's total cost: execution plus scaling (elastic share)."""
        return self.execution_cost + self.scaling_cost

    @property
    def e1_score(self) -> float:
        if self.elastic_cost <= 0:
            return 0.0
        return self.avg_tps / self.elastic_cost


class ElasticityEvaluator:
    """Runs elastic patterns against one architecture."""

    def __init__(
        self,
        arch: Architecture,
        workload: WorkloadMix,
        slot_seconds: float = SLOT_SECONDS,
        measure_window_s: float = 600.0,
        tick_s: float = 1.0,
    ):
        self.arch = arch
        self.workload = workload
        self.slot_seconds = slot_seconds
        self.measure_window_s = measure_window_s
        self.tick_s = tick_s

    # -- helpers ---------------------------------------------------------------

    def saturation_concurrency(self, max_probe: int = 2048) -> int:
        """The tau probe: smallest concurrency reaching ~95% of capacity.

        Mirrors the paper's procedure of finding the concurrency at
        which a tested database reaches its resource limit: double the
        offered load until throughput stops growing, then binary-search
        the knee.
        """
        allocation = self.arch.instance.max_allocation

        def tps_at(n: int) -> float:
            return estimate_throughput(self.arch, self.workload, n, allocation).tps

        previous = 0.0
        n = 8
        plateau = max_probe
        while n <= max_probe:
            tps = tps_at(n)
            if previous > 0 and tps < previous * 1.02:
                plateau = n
                break
            previous = tps
            n *= 2
        capacity = tps_at(plateau)
        low, high = max(1, plateau // 4), plateau
        while low < high:
            mid = (low + high) // 2
            if tps_at(mid) >= 0.95 * capacity:
                high = mid
            else:
                low = mid + 1
        return low

    def _tps_at(
        self,
        demand: int,
        allocation: ComputeAllocation,
        cache: Dict[Tuple[int, float], float],
    ) -> float:
        if demand <= 0 or allocation.is_paused:
            return 0.0
        key = (demand, round(allocation.vcores, 3))
        tps = cache.get(key)
        if tps is None:
            tps = estimate_throughput(
                self.arch, self.workload, demand, allocation
            ).tps
            cache[key] = tps
        return tps

    # -- the run -------------------------------------------------------------------

    def run(self, pattern: ElasticPattern, tau: int) -> ElasticityResult:
        """Run one pattern; the paper's cost window is ten minutes from
        the pattern start, so the run continues with zero demand after
        the last slot -- that idle tail is exactly where gradual
        scale-down policies keep billing and pause-and-resume saves.
        """
        slots = pattern.concurrency_slots(tau)
        pattern_duration = len(slots) * self.slot_seconds
        duration = max(pattern_duration, self.measure_window_s)
        # Proactive policies receive the slot schedule as their forecast
        # (the previous run's pattern -- a perfect predictor).
        forecast = [
            (index * self.slot_seconds, demand)
            for index, demand in enumerate(slots)
        ] + [(pattern_duration, 0)]
        autoscaler = Autoscaler(self.arch, self.workload, forecast=forecast)
        collector = PerformanceCollector()
        tps_cache: Dict[Tuple[int, float], float] = {}
        target_cache: Dict[int, float] = {}

        can_pause = self.arch.scaling.kind is ScalingKind.CU_PAUSE_RESUME

        def target_vcores(demand: int) -> float:
            if demand <= 0:
                # The policy floor: pause-capable systems can reach zero,
                # the rest can only fall to their minimum allocation.
                return 0.0 if can_pause else self.arch.instance.min_allocation.vcores
            if demand not in target_cache:
                target_cache[demand] = required_vcores(
                    self.arch, self.workload, demand
                )
            return target_cache[demand]

        transitions: List[SlotTransition] = []
        execution_cost = 0.0
        scaling_cost = 0.0
        elastic_cost = 0.0
        infra_cost = 0.0

        t = 0.0
        previous_demand = 0
        open_transition: Optional[SlotTransition] = None
        while t < duration:
            slot_index = int(t // self.slot_seconds)
            demand = slots[slot_index] if slot_index < len(slots) else 0
            if t > 0 and demand != previous_demand and t % self.slot_seconds < self.tick_s:
                open_transition = SlotTransition(
                    from_concurrency=previous_demand,
                    to_concurrency=demand,
                    change_at_s=t,
                    settled_at_s=None,
                )
                transitions.append(open_transition)
            previous_demand = demand

            allocation = autoscaler.step(t, demand)
            tps = self._tps_at(demand, allocation, tps_cache)
            # Serverless scale-ups arrive with a cold(er) buffer: damp TPS
            # while the cache re-warms (tau from the scaling policy).
            warm_tau = self.arch.scaling.scaling_warm_tau_s
            if warm_tau > 0 and tps > 0:
                last_up = None
                for event in reversed(autoscaler.events):
                    if event.trigger in ("scale_up", "resume"):
                        last_up = event.time_s
                        break
                if last_up is not None and t >= last_up:
                    tps *= 1.0 - math.exp(-max(self.tick_s, t - last_up) / warm_tau)

            # Cost: charge the allocated resources at RUC prices.  The
            # share matching the demand target is execution cost; any
            # surplus while the policy catches up is scaling cost.
            iops_alloc = self.arch.provisioned.iops * (
                allocation.vcores / max(self.arch.provisioned.vcores, 1e-9)
            )
            tick_cost = allocation_cost(
                allocation.vcores,
                allocation.memory_gb,
                iops=iops_alloc,
                duration_s=self.tick_s,
            )
            elastic_cost += tick_cost
            infra_cost += allocation_cost(
                0.0,
                0.0,
                duration_s=self.tick_s,
                storage_gb=self.arch.provisioned.storage_gb,
                network_gbps=self.arch.provisioned.network_gbps,
                network_kind=self.arch.provisioned.network_kind,
            )
            target = target_vcores(demand)
            if self.arch.scaling.kind is ScalingKind.FIXED:
                # Fixed instances never scale: everything is execution cost.
                target = allocation.vcores
            surplus_vcores = max(0.0, allocation.vcores - target)
            surplus_cost = allocation_cost(
                surplus_vcores,
                surplus_vcores
                * (allocation.memory_gb / allocation.vcores if allocation.vcores else 0.0),
                duration_s=self.tick_s,
            )
            scaling_cost += min(surplus_cost, tick_cost)
            execution_cost += tick_cost - min(surplus_cost, tick_cost)

            if open_transition is not None:
                settled = (
                    abs(allocation.vcores - target) < 1e-9
                    or (demand <= 0 and allocation.is_paused)
                )
                fixed = self.arch.scaling.kind is ScalingKind.FIXED
                if settled or fixed:
                    open_transition.settled_at_s = t + self.tick_s if not fixed else t
                    open_transition = None

            collector.record(
                t,
                tps,
                vcores=allocation.vcores,
                memory_gb=allocation.memory_gb,
                cost_delta=tick_cost,
                demand=demand,
            )
            t += self.tick_s

        # Scaling decisions become collector annotations, so exports and
        # reports can line the allocation steps up with the TPS series.
        for event in autoscaler.events:
            collector.note(
                event.time_s,
                f"{event.trigger}: {event.from_vcores:g} -> {event.to_vcores:g} vcores",
            )

        # Figure 6 reports average throughput over the *pattern* (costs
        # keep accruing over the full ten-minute window).
        avg_tps = collector.avg_tps(0.0, pattern_duration)
        for transition in transitions:
            end = transition.settled_at_s or duration
            # scaling cost attributed per transition: surplus window length
            transition.scaling_cost = scaling_cost * (
                (end - transition.change_at_s) / duration
            )
        return ElasticityResult(
            arch_name=self.arch.name,
            pattern=pattern,
            workload_name=self.workload.name,
            tau=tau,
            slots=slots,
            collector=collector,
            avg_tps=avg_tps,
            execution_cost=execution_cost,
            scaling_cost=scaling_cost,
            elastic_cost=elastic_cost,
            infra_cost=infra_cost,
            transitions=transitions,
        )

    def run_all(
        self, tau: int, patterns: Optional[Sequence[str]] = None
    ) -> Dict[str, ElasticityResult]:
        keys = list(patterns) if patterns else list(ELASTIC_PATTERNS)
        return {key: self.run(ELASTIC_PATTERNS[key], tau) for key in keys}

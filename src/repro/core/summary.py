"""One-shot markdown report over a full testbed run.

``generate_report(bench)`` runs every registered evaluator through the
unified :class:`~repro.core.evalapi.EvalOutcome` surface and renders a
single markdown document -- throughput matrix, P-Scores, elasticity,
tenancy, fail-over, replication lag, and the Table IX score card --
suitable for committing next to a paper draft or attaching to CI
output.

Wired into the CLI as ``cloudybench --eval report [--out FILE]``.
"""

from __future__ import annotations

import io
from typing import Optional, TextIO

from repro.core.evalapi import EvalOutcome
from repro.core.runner import CloudyBench

#: report sections, in paper order; each is one evaluator run
_SECTIONS = (
    ("throughput", "Throughput (Figure 5)"),
    ("pscore", "P-Score (Table V)"),
    ("elasticity", "Elasticity (Figure 6)"),
    ("multitenancy", "Multi-tenancy (Table VII)"),
    ("failover", "Fail-over (Table VIII)"),
    ("lagtime", "Replication lag (Section III-F)"),
    ("overload", "Overload protection (D-Score)"),
    ("scaleout-real", "Real scale-out (sharded fleet)"),
    ("ha", "Shard HA (R-Score)"),
    ("dr", "Disaster recovery (RPO/RTO)"),
    ("overall", "Overall (Table IX)"),
)

#: cap on per-section timeline events, to keep long runs readable
_EVENT_CAP = 12


def _heading(out: TextIO, level: int, text: str) -> None:
    out.write(f"\n{'#' * level} {text}\n\n")


def _table(out: TextIO, headers, rows) -> None:
    out.write("| " + " | ".join(str(h) for h in headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(str(cell) for cell in row) + " |\n")


def _events(out: TextIO, outcome: EvalOutcome) -> None:
    shown = outcome.events[:_EVENT_CAP]
    rows = [[f"{time_s:.0f}", message] for time_s, message in shown]
    hidden = len(outcome.events) - len(shown)
    if hidden > 0:
        rows.append(["...", f"({hidden} more events)"])
    _table(out, ["t (s)", "event"], rows)


def generate_report(bench: CloudyBench, out: Optional[TextIO] = None) -> str:
    """Run every evaluation and render the markdown report."""
    buffer = out or io.StringIO()
    config = bench.config

    buffer.write("# CloudyBench report\n\n")
    buffer.write(
        f"Systems: {', '.join(config.architectures)} · "
        f"scale factors {config.scale_factors} · "
        f"concurrencies {config.concurrencies} · "
        f"distribution {config.distribution}\n"
    )

    for eval_name, section_title in _SECTIONS:
        outcome = bench.run(eval_name)
        _heading(buffer, 2, section_title)
        if outcome.notes:
            buffer.write(outcome.notes + "\n\n")
        _table(buffer, outcome.headers, outcome.rows)
        if outcome.events:
            _heading(buffer, 3, "Timeline events")
            _events(buffer, outcome)

    if isinstance(buffer, io.StringIO):
        return buffer.getvalue()
    return ""

"""One-shot markdown report over a full testbed run.

``generate_report(bench)`` runs every evaluator of a
:class:`~repro.core.runner.CloudyBench` instance and renders a single
markdown document -- throughput matrix, P-Scores, elasticity, tenancy,
fail-over, replication lag, and the Table IX score card -- suitable
for committing next to a paper draft or attaching to CI output.

Wired into the CLI as ``cloudybench --eval report [--out FILE]``.
"""

from __future__ import annotations

import io
from typing import Optional, TextIO

from repro.core.runner import CloudyBench


def _heading(out: TextIO, level: int, text: str) -> None:
    out.write(f"\n{'#' * level} {text}\n\n")


def _table(out: TextIO, headers, rows) -> None:
    out.write("| " + " | ".join(str(h) for h in headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(str(cell) for cell in row) + " |\n")


def generate_report(bench: CloudyBench, out: Optional[TextIO] = None) -> str:
    """Run every evaluation and render the markdown report."""
    buffer = out or io.StringIO()
    config = bench.config

    buffer.write("# CloudyBench report\n\n")
    buffer.write(
        f"Systems: {', '.join(config.architectures)} · "
        f"scale factors {config.scale_factors} · "
        f"concurrencies {config.concurrencies} · "
        f"distribution {config.distribution}\n"
    )

    # -- throughput ---------------------------------------------------------
    _heading(buffer, 2, "Throughput (Figure 5)")
    data = bench.run_throughput()
    for sf in config.scale_factors:
        _heading(buffer, 3, f"Scale factor {sf}")
        rows = []
        for arch in bench.architectures:
            for mode in config.modes:
                rows.append([
                    arch.display_name, mode,
                    *(round(data[(arch.name, sf, mode, con)])
                      for con in config.concurrencies),
                ])
        _table(buffer, ["system", "mode",
                        *(f"con={c}" for c in config.concurrencies)], rows)

    # -- P-Score ---------------------------------------------------------------
    _heading(buffer, 2, "P-Score (Table V)")
    rows = []
    for row in bench.run_pscore():
        rows.append([
            row.arch_name, f"{row.total_cost_per_minute:.4f}",
            *(round(row.p_by_mode[mode]) for mode in config.modes),
            round(row.p_avg),
        ])
    _table(buffer, ["system", "cost/min", *config.modes, "P(avg)"], rows)

    # -- elasticity ---------------------------------------------------------------
    _heading(buffer, 2, "Elasticity (Figure 6)")
    rows = []
    for arch_name, by_pattern in bench.run_elasticity().items():
        for pattern_key, by_mode in by_pattern.items():
            for mode, result in by_mode.items():
                rows.append([
                    arch_name, pattern_key, mode, round(result.avg_tps),
                    f"{result.total_cost:.4f}", round(result.e1_score),
                ])
    _table(buffer, ["system", "pattern", "mode", "avg TPS", "cost", "E1"], rows)

    # Scaling decisions recorded by the collectors: one representative
    # run (first pattern/mode) per system, capped to stay readable.
    _heading(buffer, 3, "Scaling events (representative runs)")
    event_cap = 12
    rows = []
    for arch_name, by_pattern in bench.run_elasticity().items():
        pattern_key, by_mode = next(iter(by_pattern.items()))
        mode, result = next(iter(by_mode.items()))
        events = result.collector.events
        for time_s, message in events[:event_cap]:
            rows.append([arch_name, pattern_key, mode, f"{time_s:.0f}", message])
        if len(events) > event_cap:
            rows.append([
                arch_name, pattern_key, mode, "...",
                f"({len(events) - event_cap} more events)",
            ])
    if rows:
        _table(buffer, ["system", "pattern", "mode", "t (s)", "event"], rows)
    else:
        buffer.write("(no scaling events recorded)\n")

    # -- multi-tenancy ----------------------------------------------------------------
    _heading(buffer, 2, "Multi-tenancy (Table VII)")
    rows = []
    for arch_name, by_pattern in bench.run_multitenancy().items():
        for pattern_key, result in by_pattern.items():
            rows.append([
                arch_name, pattern_key, round(result.total_tps),
                f"{result.cost_per_minute:.4f}", round(result.t_score),
            ])
    _table(buffer, ["system", "pattern", "total TPS", "cost/min", "T-Score"], rows)

    # -- fail-over -------------------------------------------------------------------
    _heading(buffer, 2, "Fail-over (Table VIII)")
    rows = []
    for arch_name, scores in bench.run_failover().items():
        rows.append([
            arch_name, round(scores.f_rw_s, 1), round(scores.f_ro_s, 1),
            round(scores.r_rw_s, 1), round(scores.r_ro_s, 1),
            round(scores.total_s, 1),
        ])
    _table(buffer, ["system", "F(RW)", "F(RO)", "R(RW)", "R(RO)", "total s"], rows)

    # -- replication lag -----------------------------------------------------------------
    _heading(buffer, 2, "Replication lag (Section III-F)")
    rows = []
    for arch_name, by_pattern in bench.run_lagtime().items():
        for pattern, result in by_pattern.items():
            rows.append([
                arch_name, pattern,
                f"{result.insert_lag_s * 1000:.2f}",
                f"{result.update_lag_s * 1000:.2f}",
                f"{result.delete_lag_s * 1000:.2f}",
                f"{result.avg_lag_s * 1000:.2f}",
            ])
    _table(buffer, ["system", "pattern", "insert ms", "update ms",
                    "delete ms", "avg ms"], rows)

    # -- overall -------------------------------------------------------------------------
    _heading(buffer, 2, "Overall (Table IX)")
    rows = [scores.as_row() for scores in bench.overall().values()]
    _table(buffer, ["system", "P", "P*", "E1", "E1*", "R", "F", "E2",
                    "C(ms)", "T", "T*", "O", "O*"], rows)

    if isinstance(buffer, io.StringIO):
        return buffer.getvalue()
    return ""

"""Client-side resilience: retries, backoff, circuit breaking, failover.

What a latency-critical client *observes* during a fault is dominated by
its own timeout/retry behaviour, not by the server's recovery pipeline.
This module is that client stack:

* :func:`retry_transaction` -- the minimal classification-driven retry
  loop the functional workloads use: replay a transaction body when the
  engine aborts it with a ``retryable`` error (lock timeout, deadlock
  victim), propagate everything else immediately.
* :class:`RetryPolicy` -- jittered exponential backoff with a per-call
  attempt cap.
* :class:`CircuitBreaker` -- closed / open / half-open per endpoint;
  opens after consecutive health failures, probes after a reset timeout,
  re-closes on probe success.
* :class:`ResilientSession` -- ties it together: endpoint preference
  order, per-endpoint breakers, per-request timeout budgets, and
  failover.  One retry state machine drives both a synchronous mode
  (:meth:`~ResilientSession.call`) and a DES process mode
  (:meth:`~ResilientSession.call_in`) so tests and the availability
  evaluator exercise identical logic.

Which failures trip a breaker is deliberately narrower than which are
retryable: a deadlock victim is retryable but says nothing about
endpoint health, while an unreachable node is both.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.qos.budget import RetryBudget

from repro.engine.errors import (
    EngineError,
    NodeUnavailableError,
    OverloadError,
    RequestTimeout,
    SimulatedCrash,
)
from repro.obs import NULL_OBSERVER, Observer
from repro.qos.budget import RetryBudget as _RetryBudget
from repro.qos.deadline import Deadline

#: errors that indict the endpoint (breaker-relevant), not the request
HEALTH_ERRORS = (NodeUnavailableError, RequestTimeout, SimulatedCrash)


def is_retryable(error: BaseException) -> bool:
    """Classification hook: may the whole request be replayed?"""
    if isinstance(error, EngineError):
        return error.retryable
    return False


def counts_against_breaker(error: BaseException) -> bool:
    """Does this failure signal endpoint ill-health?"""
    return isinstance(error, HEALTH_ERRORS)


# ---------------------------------------------------------------------------
# transaction-level retry (engine workloads)
# ---------------------------------------------------------------------------

@dataclass
class TxnOutcome:
    """Result of a classification-driven transaction retry loop."""

    value: Any = None
    committed: bool = False
    aborts: int = 0


def retry_transaction(
    fn: Callable[[], Any], attempts: int = 3
) -> TxnOutcome:
    """Run ``fn``, replaying it on retryable engine aborts.

    Non-retryable errors (bad SQL, duplicate keys) propagate on the
    first occurrence -- replaying them would fail identically.  After
    ``attempts`` aborted tries the outcome reports ``committed=False``
    rather than raising, matching how benchmark drivers account aborted
    transactions without dying.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    outcome = TxnOutcome()
    while True:
        try:
            outcome.value = fn()
            outcome.committed = True
            return outcome
        except EngineError as error:
            if not error.retryable:
                raise
            outcome.aborts += 1
            if outcome.aborts >= attempts:
                return outcome


# ---------------------------------------------------------------------------
# backoff policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff.

    Attempt ``n`` (1-based) sleeps ``base * multiplier**(n-1)`` capped at
    ``max_backoff_s``, scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``.  Jitter decorrelates retry storms from
    many clients hitting the same fault.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < self.base_backoff_s:
            raise ValueError("need 0 <= base_backoff_s <= max_backoff_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retrying after the ``attempt``-th failure."""
        raw = min(
            self.max_backoff_s,
            self.base_backoff_s * self.multiplier ** max(0, attempt - 1),
        )
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter + rng.random() * 2.0 * self.jitter)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-endpoint circuit breaker with a half-open probe state.

    Time is always passed in by the caller, so the breaker works under
    both wall-clock and DES virtual time.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        half_open_successes: int = 1,
        half_open_max_probes: Optional[int] = None,
        name: str = "",
        observer: Optional[Observer] = None,
    ):
        if failure_threshold < 1 or half_open_successes < 1:
            raise ValueError("thresholds must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset timeout must be positive")
        if half_open_max_probes is not None and half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.name = name
        self.obs = observer or NULL_OBSERVER
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_successes = half_open_successes
        #: probes admitted per half-open episode before a verdict.
        #: Unbounded probing let every queued retry flood through the
        #: instant the breaker half-opened, re-tripping it and restarting
        #: the reset clock under sustained faults -- the retry storm the
        #: breaker exists to prevent.
        self.half_open_max_probes = (
            half_open_max_probes
            if half_open_max_probes is not None
            else half_open_successes
        )
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.probe_successes = 0
        self.probes_admitted = 0
        self.opened_at: Optional[float] = None
        self.times_opened = 0
        self.times_reclosed = 0

    def allow(self, now: float) -> bool:
        """May a request be sent to this endpoint at ``now``?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.reset_timeout_s:
                self.state = BreakerState.HALF_OPEN
                self.probe_successes = 0
                self.probes_admitted = 1
                return True
            return False
        # HALF_OPEN: admit a bounded number of probes until a verdict
        if self.probes_admitted < self.half_open_max_probes:
            self.probes_admitted += 1
            return True
        return False

    def time_until_probe(self, now: float) -> float:
        """Seconds until the breaker would admit a request (0 if it would now)."""
        if self.state is BreakerState.OPEN:
            return max(0.0, self.opened_at + self.reset_timeout_s - now)
        return 0.0

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self.probe_successes += 1
            if self.probes_admitted > 0:
                self.probes_admitted -= 1  # verdict in: free the probe slot
            if self.probe_successes >= self.half_open_successes:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
                self.probes_admitted = 0
                self.opened_at = None
                self.times_reclosed += 1
                if self.obs.enabled:
                    self.obs.count("client.breaker.close")
                    self.obs.event(
                        "breaker.close", "client", ts=now, track="client",
                        attrs={"endpoint": self.name},
                    )
        else:
            self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
            return
        self.consecutive_failures += 1
        if self.state is BreakerState.CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.times_opened += 1
        self.probe_successes = 0
        self.probes_admitted = 0
        if self.obs.enabled:
            self.obs.count("client.breaker.open")
            self.obs.event(
                "breaker.open", "client", ts=now, track="client",
                attrs={"endpoint": self.name},
            )


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------

@dataclass
class AttemptResult:
    """What one endpoint attempt produced (returned by attempt functions)."""

    ok: bool
    value: Any = None
    error: Optional[BaseException] = None
    latency_s: float = 0.0


@dataclass
class CallOutcome:
    """End-to-end result of one resilient call."""

    ok: bool
    value: Any = None
    error: Optional[BaseException] = None
    endpoint: Optional[str] = None
    attempts: int = 0
    breaker_rejections: int = 0
    elapsed_s: float = 0.0
    #: endpoints tried, in order (observability)
    path: List[str] = field(default_factory=list)
    #: the retry budget denied a replay (the call gave up early)
    budget_exhausted: bool = False


class _ManualClock:
    """Virtual clock for synchronous (non-DES) sessions."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, delta_s: float) -> None:
        self.now += delta_s


def _run_attempt(attempt_fn: Callable[[str], Any], endpoint: str) -> AttemptResult:
    """Invoke one attempt, normalising returns and exceptions."""
    try:
        result = attempt_fn(endpoint)
    except EngineError as error:
        return AttemptResult(
            ok=False, error=error, latency_s=getattr(error, "latency_s", 0.0)
        )
    if isinstance(result, AttemptResult):
        return result
    return AttemptResult(ok=True, value=result)


class ResilientSession:
    """Failover-aware request executor over a set of named endpoints.

    ``endpoints`` is a preference order (e.g. ``["replica:0",
    "replica:1", "primary"]`` for reads).  Each call walks the retry
    state machine: pick the first endpoint whose breaker admits traffic,
    attempt, classify the failure, back off, fail over.  A per-request
    ``timeout_budget_s`` bounds total elapsed time (attempt latencies
    plus backoffs); when the next backoff cannot fit, the call fails
    with the last error rather than overrunning its budget.
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        rng: Optional[random.Random] = None,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        observer: Optional[Observer] = None,
        retry_budget: Optional["RetryBudget"] = None,
        advance: Optional[Callable[[float], None]] = None,
    ):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.endpoints = list(endpoints)
        self.policy = policy or RetryPolicy()
        self.obs = observer or NULL_OBSERVER
        self._own_clock = _ManualClock() if clock is None else None
        self._clock = clock or self._own_clock
        #: with an external ``clock``, the synchronous driver cannot move
        #: time itself; ``advance(delta_s)`` lets it push a shared
        #: virtual clock forward on backoffs and attempt latencies (the
        #: HA evaluator shares one clock between session and failure
        #: detector this way).
        self._advance_external = advance
        self._rng = rng or random.Random(0)
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                breaker_threshold, breaker_reset_s,
                name=name, observer=self.obs,
            )
            for name in self.endpoints
        }
        #: token-bucket retry budget (see :mod:`repro.qos.budget`): every
        #: session gets one so a fleet of clients cannot amplify a server
        #: brownout into a retry storm.  Pass an explicit budget to share
        #: one bucket across sessions or to tune the ratio.
        # The default reserve covers one call's full retry schedule so a
        # quiet session is never throttled; sustained retry traffic still
        # drains the bucket and gets capped at the deposit ratio.
        self.retry_budget = retry_budget or _RetryBudget(
            min_tokens=float(self.policy.max_attempts),
            max_tokens=max(10.0, 2.0 * self.policy.max_attempts),
        )
        #: deadline of the call currently in flight (when it was given a
        #: timeout budget); attempt functions read this and hand it to
        #: ``Database.execute(deadline=...)`` so the engine can cancel
        #: doomed work at its own cancellation points.
        self.current_deadline = None
        self.calls = 0
        self.failures = 0
        self.budget_denials = 0

    # -- bookkeeping ----------------------------------------------------------

    def breaker(self, endpoint: str) -> CircuitBreaker:
        return self.breakers[endpoint]

    def breaker_opens(self) -> int:
        return sum(breaker.times_opened for breaker in self.breakers.values())

    def breaker_recloses(self) -> int:
        return sum(breaker.times_reclosed for breaker in self.breakers.values())

    def _pick(self, now: float) -> Optional[str]:
        for name in self.endpoints:
            if self.breakers[name].allow(now):
                return name
        return None

    # -- the shared retry state machine ---------------------------------------

    def _script(self, budget_s: Optional[float], now: float):
        """Generator yielding ("call", endpoint) / ("sleep", delay) actions.

        The driver resumes it with the current time (and, for calls, the
        :class:`AttemptResult`).  Returns a :class:`CallOutcome`.
        """
        outcome = CallOutcome(ok=False)
        started = now
        self.retry_budget.record_request()
        while outcome.attempts < self.policy.max_attempts:
            endpoint = self._pick(now)
            if endpoint is None:
                # Every breaker is open: wait for the earliest probe slot.
                delay = min(
                    breaker.time_until_probe(now)
                    for breaker in self.breakers.values()
                )
                delay = max(delay, 1e-6)
                outcome.breaker_rejections += 1
                if outcome.breaker_rejections > 2 * self.policy.max_attempts or (
                    budget_s is not None and (now - started) + delay > budget_s
                ):
                    break
                now = yield ("sleep", delay)
                continue
            outcome.attempts += 1
            outcome.path.append(endpoint)
            now, result = yield ("call", endpoint)
            breaker = self.breakers[endpoint]
            if result.ok:
                breaker.record_success(now)
                outcome.ok = True
                outcome.value = result.value
                outcome.endpoint = endpoint
                outcome.elapsed_s = now - started
                return outcome
            outcome.error = result.error
            if result.error is not None and counts_against_breaker(result.error):
                breaker.record_failure(now)
            if result.error is not None and not is_retryable(result.error):
                break
            if outcome.attempts >= self.policy.max_attempts:
                break
            if not self.retry_budget.try_spend():
                # Out of retry tokens: give up rather than amplify the
                # overload.  The breaker consumes the same signal --
                # sustained budget exhaustion is endpoint pressure, and
                # backing the breaker off sheds this client entirely.
                outcome.budget_exhausted = True
                self.budget_denials += 1
                breaker.record_failure(now)
                if self.obs.enabled:
                    self.obs.count("client.budget_exhausted")
                break
            delay = self.policy.backoff_s(outcome.attempts, self._rng)
            if isinstance(result.error, OverloadError):
                # honor the server's backoff hint: returning sooner than
                # the queue can drain just gets this request shed again
                delay = max(delay, result.error.retry_after_s)
            if budget_s is not None and (now - started) + delay > budget_s:
                break
            now = yield ("sleep", delay)
        outcome.elapsed_s = now - started
        return outcome

    # -- drivers --------------------------------------------------------------

    def call(
        self,
        attempt_fn: Callable[[str], Any],
        timeout_budget_s: Optional[float] = None,
    ) -> CallOutcome:
        """Synchronous driver (virtual clock; no real sleeping).

        ``attempt_fn(endpoint)`` either returns a value, returns an
        :class:`AttemptResult` (to model latency), or raises an
        :class:`~repro.engine.errors.EngineError`.
        """
        self.calls += 1
        started = self._clock()
        self.current_deadline = (
            Deadline(started + timeout_budget_s, self._clock)
            if timeout_budget_s is not None
            else None
        )
        script = self._script(timeout_budget_s, started)
        payload: Any = None
        while True:
            try:
                action = script.send(payload)
            except StopIteration as stop:
                outcome: CallOutcome = stop.value
                if not outcome.ok:
                    self.failures += 1
                self.current_deadline = None
                self._observe_outcome(started, self._clock(), outcome)
                return outcome
            kind, arg = action
            if kind == "sleep":
                if self.obs.enabled:
                    self.obs.count("client.backoff")
                    self.obs.observe("client.backoff_s", arg)
                self._advance(arg)
                payload = self._clock()
            else:
                result = _run_attempt(attempt_fn, arg)
                self._advance(result.latency_s)
                payload = (self._clock(), result)

    def call_in(
        self,
        env,
        attempt_fn: Callable[[str], Any],
        timeout_budget_s: Optional[float] = None,
    ):
        """DES driver: a generator for ``env.process``.

        Sleeps and attempt latencies advance *virtual* time, so chaos
        windows open and close underneath the retries exactly as they
        would around a real client.  The process value is the
        :class:`CallOutcome`.
        """
        self.calls += 1
        started = env.now
        self.current_deadline = (
            Deadline(started + timeout_budget_s, lambda: env.now)
            if timeout_budget_s is not None
            else None
        )
        script = self._script(timeout_budget_s, started)
        payload: Any = None
        while True:
            try:
                action = script.send(payload)
            except StopIteration as stop:
                outcome = stop.value
                if not outcome.ok:
                    self.failures += 1
                self.current_deadline = None
                self._observe_outcome(started, env.now, outcome)
                return outcome
            kind, arg = action
            if kind == "sleep":
                if self.obs.enabled:
                    self.obs.count("client.backoff")
                    self.obs.observe("client.backoff_s", arg)
                yield env.timeout(arg)
                payload = env.now
            else:
                result = _run_attempt(attempt_fn, arg)
                if result.latency_s > 0:
                    yield env.timeout(result.latency_s)
                payload = (env.now, result)

    def _advance(self, delta_s: float) -> None:
        if delta_s <= 0:
            return
        if self._own_clock is not None:
            self._own_clock.advance(delta_s)
        elif self._advance_external is not None:
            self._advance_external(delta_s)

    def _observe_outcome(
        self, started: float, ended: float, outcome: CallOutcome
    ) -> None:
        if not self.obs.enabled:
            return
        self.obs.count("client.calls")
        if not outcome.ok:
            self.obs.count("client.failures")
        if outcome.attempts > 1:
            self.obs.count("client.retries", outcome.attempts - 1)
        self.obs.observe("client.call_s", ended - started)
        self.obs.complete(
            "call", "client", started, ended, track="client",
            attrs={
                "endpoint": outcome.endpoint,
                "ok": outcome.ok,
                "attempts": outcome.attempts,
            },
        )

"""A miniature transactional storage engine.

The engine backs CloudyBench's *functional* evaluations: the lag-time
evaluator really polls a replica until a committed change is visible,
the fail-over evaluator really replays the write-ahead log, and the
OLTP workload really executes SQL against tables.

Components
----------
* :mod:`repro.engine.types`   -- column/row model and schema objects.
* :mod:`repro.engine.page`    -- slotted pages holding row versions.
* :mod:`repro.engine.buffer`  -- LRU buffer pool with dirty tracking.
* :mod:`repro.engine.wal`     -- write-ahead log with LSNs.
* :mod:`repro.engine.index`   -- hash and ordered indexes.
* :mod:`repro.engine.table`   -- heap tables over pages + indexes.
* :mod:`repro.engine.locks`   -- row-level strict 2PL with deadlock
  detection on the wait-for graph.
* :mod:`repro.engine.txn`     -- transactions and the transaction manager.
* :mod:`repro.engine.sql`     -- parser for the SQL subset used by the
  paper's decoupled statement files.
* :mod:`repro.engine.executor`-- prepared statements and execution.
* :mod:`repro.engine.recovery`-- ARIES-style analysis/redo/undo plus the
  log-replay path used by read replicas.
* :mod:`repro.engine.database`-- the user-facing ``Database`` facade.
"""

from repro.engine.database import Database
from repro.engine.errors import (
    DeadlockError,
    DuplicateKeyError,
    EngineError,
    LockTimeoutError,
    SchemaError,
    SqlError,
    TransactionAborted,
)
from repro.engine.types import Column, ColumnType, Schema
from repro.engine.txn import IsolationLevel, Transaction

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "DeadlockError",
    "DuplicateKeyError",
    "EngineError",
    "IsolationLevel",
    "LockTimeoutError",
    "Schema",
    "SchemaError",
    "SqlError",
    "Transaction",
    "TransactionAborted",
]

"""Parser for the SQL subset used by CloudyBench's statement files.

The grammar covers every statement in the paper's Table II plus what
the SysBench and TPC-C baselines need::

    SELECT select_list FROM table [WHERE conds] [ORDER BY col [ASC|DESC]]
           [LIMIT n] [FOR UPDATE]
    INSERT INTO table [(col, ...)] VALUES (value, ...)
    UPDATE table SET col = set_expr [, ...] [WHERE conds]
    DELETE FROM table [WHERE conds]

    select_list : * | item (, item)*
    item        : col | COUNT(*) | COUNT(DISTINCT col) | SUM(col)
                | MIN(col) | MAX(col)
    conds       : col op value (AND col op value)*
    op          : = | <> | != | < | > | <= | >=
    set_expr    : value | col + value | col - value
    value       : ? | number | 'string' | DEFAULT

The parser produces small AST dataclasses; planning and execution live
in :mod:`repro.engine.executor`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from repro.engine.errors import SqlError

# --------------------------------------------------------------------------
# tokenizer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+\.\d+|\d+)
  | (?P<param>\?)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),*+\-])
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

#: token types: KEYWORD/IDENT merged into WORD at lexing; parser decides.
Token = Tuple[str, str]


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlError(f"cannot tokenize SQL at ...{sql[position:position + 20]!r}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

#: A literal Python value, a parameter marker, or the DEFAULT keyword.
PARAM = "?"


@dataclass(frozen=True)
class Value:
    """A value source: literal, parameter slot, or DEFAULT."""

    kind: str  # "literal" | "param" | "default"
    literal: Any = None
    param_index: int = -1


@dataclass(frozen=True)
class Condition:
    column: str
    op: str  # =, <>, <, >, <=, >=
    value: Value


@dataclass(frozen=True)
class SelectItem:
    """Either a plain column or an aggregate over one column/star."""

    column: Optional[str] = None
    aggregate: Optional[str] = None  # COUNT, SUM, MIN, MAX
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None


@dataclass(frozen=True)
class SetClause:
    column: str
    value: Value
    delta_column: Optional[str] = None  # for "col = other +/- value"
    delta_sign: int = 1


@dataclass(frozen=True)
class SelectStatement:
    table: str
    items: Tuple[SelectItem, ...]
    star: bool = False
    where: Tuple[Condition, ...] = ()
    group_by: Optional[str] = None
    order_by: Optional[str] = None
    order_desc: bool = False
    limit: Optional[int] = None
    for_update: bool = False


@dataclass(frozen=True)
class InsertStatement:
    table: str
    columns: Tuple[str, ...] = ()  # empty means full column order
    values: Tuple[Value, ...] = ()


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    sets: Tuple[SetClause, ...]
    where: Tuple[Condition, ...] = ()


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    where: Tuple[Condition, ...] = ()


Statement = Union[SelectStatement, InsertStatement, UpdateStatement, DeleteStatement]

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.position = 0
        self.param_count = 0

    # -- token plumbing --------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SqlError(f"unexpected end of SQL: {self.sql!r}")
        self.position += 1
        return token

    def _accept_word(self, *words: str) -> Optional[str]:
        token = self._peek()
        if token and token[0] == "word" and token[1].upper() in words:
            self.position += 1
            return token[1].upper()
        return None

    def _expect_word(self, *words: str) -> str:
        word = self._accept_word(*words)
        if word is None:
            raise SqlError(
                f"expected {'/'.join(words)} at token {self.position} in {self.sql!r}"
            )
        return word

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token and token[0] in ("punct", "op") and token[1] == punct:
            self.position += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            raise SqlError(f"expected {punct!r} at token {self.position} in {self.sql!r}")

    def _identifier(self) -> str:
        token = self._next()
        if token[0] != "word":
            raise SqlError(f"expected identifier, got {token[1]!r} in {self.sql!r}")
        return token[1].upper()

    def _value(self) -> Value:
        token = self._next()
        kind, text = token
        if kind == "param":
            value = Value("param", param_index=self.param_count)
            self.param_count += 1
            return value
        if kind == "number":
            literal = float(text) if "." in text else int(text)
            return Value("literal", literal=literal)
        if kind == "string":
            return Value("literal", literal=text[1:-1].replace("''", "'"))
        if kind == "word" and text.upper() == "DEFAULT":
            return Value("default")
        if kind == "word" and text.upper() == "NULL":
            return Value("literal", literal=None)
        raise SqlError(f"expected value, got {text!r} in {self.sql!r}")

    # -- statement dispatch --------------------------------------------------------

    def parse(self) -> Statement:
        word = self._expect_word("SELECT", "INSERT", "UPDATE", "DELETE")
        if word == "SELECT":
            statement = self._select()
        elif word == "INSERT":
            statement = self._insert()
        elif word == "UPDATE":
            statement = self._update()
        else:
            statement = self._delete()
        if self._peek() is not None:
            raise SqlError(f"trailing tokens after statement in {self.sql!r}")
        return statement

    # -- SELECT -----------------------------------------------------------------

    def _select(self) -> SelectStatement:
        star = False
        items: List[SelectItem] = []
        if self._accept_punct("*"):
            star = True
        else:
            items.append(self._select_item())
            while self._accept_punct(","):
                items.append(self._select_item())
        self._expect_word("FROM")
        table = self._identifier()
        where = self._where_clause()
        group_by = None
        if self._accept_word("GROUP"):
            self._expect_word("BY")
            group_by = self._identifier()
        order_by, order_desc = None, False
        if self._accept_word("ORDER"):
            self._expect_word("BY")
            order_by = self._identifier()
            if self._accept_word("DESC"):
                order_desc = True
            else:
                self._accept_word("ASC")
        limit = None
        if self._accept_word("LIMIT"):
            token = self._next()
            if token[0] != "number" or "." in token[1]:
                raise SqlError(f"LIMIT needs an integer in {self.sql!r}")
            limit = int(token[1])
        for_update = False
        if self._accept_word("FOR"):
            self._expect_word("UPDATE")
            for_update = True
        return SelectStatement(
            table=table,
            items=tuple(items),
            star=star,
            where=where,
            group_by=group_by,
            order_by=order_by,
            order_desc=order_desc,
            limit=limit,
            for_update=for_update,
        )

    def _select_item(self) -> SelectItem:
        name = self._identifier()
        if name in _AGGREGATES and self._accept_punct("("):
            distinct = False
            if self._accept_punct("*"):
                column = None
            else:
                if self._accept_word("DISTINCT"):
                    distinct = True
                column = self._identifier()
            self._expect_punct(")")
            if name != "COUNT" and column is None:
                raise SqlError(f"{name}(*) is not valid in {self.sql!r}")
            if name == "AVG" and distinct:
                raise SqlError(f"AVG(DISTINCT) is not supported in {self.sql!r}")
            return SelectItem(column=column, aggregate=name, distinct=distinct)
        return SelectItem(column=name)

    # -- INSERT -----------------------------------------------------------------

    def _insert(self) -> InsertStatement:
        self._expect_word("INTO")
        table = self._identifier()
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._identifier())
            while self._accept_punct(","):
                columns.append(self._identifier())
            self._expect_punct(")")
        self._expect_word("VALUES")
        self._expect_punct("(")
        values = [self._value()]
        while self._accept_punct(","):
            values.append(self._value())
        self._expect_punct(")")
        return InsertStatement(table=table, columns=tuple(columns), values=tuple(values))

    # -- UPDATE -----------------------------------------------------------------

    def _update(self) -> UpdateStatement:
        table = self._identifier()
        self._expect_word("SET")
        sets = [self._set_clause()]
        while self._accept_punct(","):
            sets.append(self._set_clause())
        where = self._where_clause()
        return UpdateStatement(table=table, sets=tuple(sets), where=where)

    def _set_clause(self) -> SetClause:
        column = self._identifier()
        self._expect_punct("=")
        token = self._peek()
        if token and token[0] == "word" and token[1].upper() not in ("DEFAULT", "NULL"):
            # "col = other_col + value" or "col = other_col - value"
            delta_column = self._identifier()
            if self._accept_punct("+"):
                sign = 1
            elif self._accept_punct("-"):
                sign = -1
            else:
                raise SqlError(
                    f"expected + or - after column in SET clause of {self.sql!r}"
                )
            value = self._value()
            return SetClause(
                column=column, value=value, delta_column=delta_column, delta_sign=sign
            )
        return SetClause(column=column, value=self._value())

    # -- DELETE -----------------------------------------------------------------

    def _delete(self) -> DeleteStatement:
        self._expect_word("FROM")
        table = self._identifier()
        return DeleteStatement(table=table, where=self._where_clause())

    # -- WHERE -----------------------------------------------------------------

    def _where_clause(self) -> Tuple[Condition, ...]:
        if not self._accept_word("WHERE"):
            return ()
        conditions = [self._condition()]
        while self._accept_word("AND"):
            conditions.append(self._condition())
        return tuple(conditions)

    def _condition(self) -> Condition:
        column = self._identifier()
        token = self._next()
        if token[0] != "op":
            raise SqlError(f"expected comparison operator, got {token[1]!r}")
        op = "<>" if token[1] == "!=" else token[1]
        return Condition(column=column, op=op, value=self._value())


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(sql).parse()


def count_params(statement: Statement) -> int:
    """Number of ``?`` placeholders in the statement."""
    values: List[Value] = []
    if isinstance(statement, SelectStatement):
        values.extend(condition.value for condition in statement.where)
    elif isinstance(statement, InsertStatement):
        values.extend(statement.values)
    elif isinstance(statement, UpdateStatement):
        values.extend(clause.value for clause in statement.sets)
        values.extend(condition.value for condition in statement.where)
    elif isinstance(statement, DeleteStatement):
        values.extend(condition.value for condition in statement.where)
    return sum(1 for value in values if value.kind == "param")

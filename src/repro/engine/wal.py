"""Write-ahead log with monotonically increasing LSNs.

Log records carry *logical* before/after images keyed by primary key,
which makes them equally usable for ARIES-style crash recovery on the
primary and for log shipping to read replicas (the paper's replication
lag-time evaluator reads exactly this stream).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple


class LogKind(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    CHECKPOINT = "checkpoint"


#: Record kinds that change data and therefore must be redone/shipped.
DATA_KINDS = (LogKind.INSERT, LogKind.UPDATE, LogKind.DELETE)


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry.

    ``before``/``after`` are full row tuples (or ``None``), ``key`` is the
    primary-key value of the affected row.  ``prev_lsn`` links the record
    to the previous record of the same transaction, enabling undo chains.
    """

    lsn: int
    txn_id: int
    kind: LogKind
    table: Optional[str] = None
    key: Any = None
    before: Optional[Tuple[Any, ...]] = None
    after: Optional[Tuple[Any, ...]] = None
    prev_lsn: int = 0

    def byte_size(self) -> int:
        """Nominal record size used by the replication bandwidth model."""
        size = 32  # header: lsn, txn id, kind, table id
        for image in (self.before, self.after):
            if image is not None:
                size += 8 * len(image) + 16
        return size


class WriteAheadLog:
    """Append-only in-memory log.

    LSN 0 means "nothing"; the first record gets LSN 1.  The log retains
    all records until :meth:`truncate` (checkpointing calls it).
    """

    def __init__(self) -> None:
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self._last_lsn_of_txn: Dict[int, int] = {}
        self._truncated_before = 1  # lowest LSN still retained

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def first_retained_lsn(self) -> int:
        """Lowest LSN still retained (after truncation)."""
        return self._truncated_before

    def max_txn_id(self) -> int:
        """Highest transaction id among retained records (0 if none).

        Restart recovery uses this as the XID high-water mark so new
        transactions never reuse a logged id.
        """
        return max((record.txn_id for record in self._records), default=0)

    @property
    def retained_records(self) -> int:
        return len(self._records)

    def append(
        self,
        txn_id: int,
        kind: LogKind,
        table: Optional[str] = None,
        key: Any = None,
        before: Optional[Tuple[Any, ...]] = None,
        after: Optional[Tuple[Any, ...]] = None,
    ) -> LogRecord:
        record = LogRecord(
            lsn=self._next_lsn,
            txn_id=txn_id,
            kind=kind,
            table=table,
            key=key,
            before=before,
            after=after,
            prev_lsn=self._last_lsn_of_txn.get(txn_id, 0),
        )
        self._next_lsn += 1
        self._records.append(record)
        if kind in (LogKind.COMMIT, LogKind.ABORT):
            self._last_lsn_of_txn.pop(txn_id, None)
        else:
            self._last_lsn_of_txn[record.txn_id] = record.lsn
        return record

    def records_from(self, lsn: int) -> Iterator[LogRecord]:
        """All retained records with LSN >= ``lsn``, in LSN order."""
        if lsn < self._truncated_before:
            raise ValueError(
                f"LSN {lsn} was truncated (log starts at {self._truncated_before})"
            )
        start = lsn - self._truncated_before
        yield from self._records[max(0, start):]

    def record_at(self, lsn: int) -> LogRecord:
        if lsn < self._truncated_before or lsn > self.last_lsn:
            raise ValueError(f"LSN {lsn} is not retained")
        return self._records[lsn - self._truncated_before]

    def transaction_chain(self, txn_id: int, from_lsn: int) -> List[LogRecord]:
        """The records of one transaction ending at ``from_lsn``, newest first."""
        chain: List[LogRecord] = []
        lsn = from_lsn
        while lsn >= self._truncated_before and lsn > 0:
            record = self.record_at(lsn)
            if record.txn_id == txn_id:
                chain.append(record)
                lsn = record.prev_lsn
            else:  # pragma: no cover - chains never cross transactions
                break
        return chain

    def truncate(self, before_lsn: int) -> int:
        """Drop records with LSN < ``before_lsn``; returns records dropped."""
        if before_lsn <= self._truncated_before:
            return 0
        keep_from = min(before_lsn, self._next_lsn)
        dropped = keep_from - self._truncated_before
        self._records = self._records[dropped:]
        self._truncated_before = keep_from
        return dropped

    def bytes_between(self, from_lsn: int, to_lsn: int) -> int:
        """Total nominal bytes of records in ``(from_lsn, to_lsn]``."""
        total = 0
        for record in self.records_from(max(from_lsn + 1, self._truncated_before)):
            if record.lsn > to_lsn:
                break
            total += record.byte_size()
        return total

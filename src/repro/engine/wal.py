"""Write-ahead log with monotonically increasing LSNs.

Log records carry *logical* before/after images keyed by primary key,
which makes them equally usable for ARIES-style crash recovery on the
primary and for log shipping to read replicas (the paper's replication
lag-time evaluator reads exactly this stream).

Every record carries a **CRC32 checksum** over its logical payload,
computed at append time.  The chaos layer can corrupt retained records
(bit flips) or arm **crash points** that fire during an append -- before
the write (record lost), after it (record durable), or mid-write (a
*torn* record: a truncated image whose stored checksum no longer
matches).  Recovery detects either corruption mode by re-computing the
CRC and truncates the log at the first corrupt record, which is exactly
what a real engine does with a torn tail.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

from marshal import dumps as _marshal_dumps
from zlib import crc32 as _crc32

from repro.engine.errors import SimulatedCrash, WalCorruptionError
from repro.engine.walcodec import _FOLDABLE, _fold, legacy_payload_crc, payload_crc
from repro.obs import NULL_OBSERVER, Observer


class LogKind(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    CHECKPOINT = "checkpoint"
    #: 2PC phase one: the transaction is durable but its fate belongs to
    #: the coordinator; ``key`` carries the global transaction id.
    PREPARE = "prepare"
    #: 2PC commit decision, logged on each participant; ``key`` carries
    #: the global transaction id.  Presumed abort: an in-doubt PREPARE
    #: with no DECISION anywhere in the fleet rolls back.
    DECISION = "decision"


#: Record kinds that change data and therefore must be redone/shipped.
DATA_KINDS = (LogKind.INSERT, LogKind.UPDATE, LogKind.DELETE)

#: Record kinds that must be durable before the append returns -- each
#: one is an fsync point unless a :meth:`WriteAheadLog.group_commit`
#: batch is open.
FSYNC_KINDS = (LogKind.COMMIT, LogKind.PREPARE, LogKind.DECISION)

#: Crash-point modes accepted by :meth:`WriteAheadLog.arm_crash`.
CRASH_MODES = ("before", "after", "torn")

#: Kinds that close a transaction's undo chain (hoisted: ``append``
#: tests membership once per record).
_TXN_END_KINDS = (LogKind.COMMIT, LogKind.ABORT)

#: member -> ``.value`` string, resolved once.  The enum descriptor
#: costs a dynamic lookup per access, and ``append`` needs the string
#: for every record's CRC.
_KIND_VALUE = {kind: kind.value for kind in LogKind}

#: member -> ``(value, ends_txn, fsyncs, is_data)``: one dict probe in
#: ``append`` replaces the value lookup plus three membership tests.
_KIND_INFO = {
    kind: (
        kind.value,
        kind in _TXN_END_KINDS,
        kind in FSYNC_KINDS,
        kind in DATA_KINDS,
    )
    for kind in LogKind
}



def record_crc(
    lsn: int,
    txn_id: int,
    kind: LogKind,
    table: Optional[str],
    key: Any,
    before: Optional[Tuple[Any, ...]],
    after: Optional[Tuple[Any, ...]],
    prev_lsn: int,
) -> int:
    """CRC32 over the canonical binary encoding of the logical payload.

    Canonical means value-identity, not type-identity: a key that
    round-trips through archive ingest as ``1.0`` instead of ``1``, or
    an image rebuilt as a list instead of a tuple, still checksums
    identically (see :mod:`repro.engine.walcodec`).
    """
    return payload_crc(
        lsn, txn_id, kind.value, table, key, before, after, prev_lsn
    )


def legacy_record_crc(
    lsn: int,
    txn_id: int,
    kind: LogKind,
    table: Optional[str],
    key: Any,
    before: Optional[Tuple[Any, ...]],
    after: Optional[Tuple[Any, ...]],
    prev_lsn: int,
) -> int:
    """The pre-codec ``repr`` checksum (wire format v1)."""
    return legacy_payload_crc(
        lsn, txn_id, kind.value, table, key, before, after, prev_lsn
    )


@dataclass(slots=True)
class LogRecord:
    """One WAL entry.

    ``before``/``after`` are full row tuples (or ``None``), ``key`` is the
    primary-key value of the affected row.  ``prev_lsn`` links the record
    to the previous record of the same transaction, enabling undo chains.
    ``crc`` is the CRC32 the record was written with; :attr:`is_intact`
    re-computes it from the current field values.

    Slots, not frozen: records are allocated on every append, and the
    plain-``setattr`` ``__init__`` of a slots dataclass is measurably
    cheaper on the hot path.  Nothing in the engine mutates a record
    after construction; corruption injection goes through
    ``dataclasses.replace``.
    """

    lsn: int
    txn_id: int
    kind: LogKind
    table: Optional[str] = None
    key: Any = None
    before: Optional[Tuple[Any, ...]] = None
    after: Optional[Tuple[Any, ...]] = None
    prev_lsn: int = 0
    crc: int = 0

    def expected_crc(self) -> int:
        return payload_crc(
            self.lsn, self.txn_id, self.kind.value, self.table,
            self.key, self.before, self.after, self.prev_lsn,
        )

    @property
    def is_intact(self) -> bool:
        """Does the stored checksum match the payload?

        Records stamped before the binary codec carry the legacy
        ``repr`` CRC; they verify through the fallback so old archives
        and shipped streams stay readable.
        """
        crc = self.crc
        if crc == self.expected_crc():
            return True
        return crc == legacy_payload_crc(
            self.lsn, self.txn_id, self.kind.value, self.table,
            self.key, self.before, self.after, self.prev_lsn,
        )

    def byte_size(self) -> int:
        """Nominal record size used by the replication bandwidth model."""
        size = 32  # header: lsn, txn id, kind, table id
        for image in (self.before, self.after):
            if image is not None:
                size += 8 * len(image) + 16
        return size


class WriteAheadLog:
    """Append-only in-memory log.

    LSN 0 means "nothing"; the first record gets LSN 1.  The log retains
    all records until :meth:`truncate` (checkpointing calls it).
    """

    def __init__(self, observer: Optional[Observer] = None) -> None:
        self.obs = observer or NULL_OBSERVER
        # Pre-resolved counters: append is per-record, so the enabled
        # path must not pay three call frames per metric.
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._c_append = metrics.counter("engine.wal.append")
            self._c_bytes = metrics.counter("engine.wal.bytes")
            self._c_fsync = metrics.counter("engine.wal.fsync")
        else:
            self._c_append = self._c_bytes = self._c_fsync = None
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self._last_lsn_of_txn: Dict[int, int] = {}
        #: fsync points paid so far (always maintained: the sharding
        #: benches compare group-commit amortisation with obs off)
        self.fsyncs = 0
        self._group_depth = 0
        self._group_pending = 0
        self._truncated_before = 1  # lowest LSN still retained
        self._armed_crash: Optional[Tuple[int, str]] = None  # (lsn, mode)
        #: once a crash point fires the instance is down: every further
        #: append is rejected until Database.crash() revives the log
        self._dead = False
        #: log-shipping hook: called with each record appended through
        #: the *clean* path.  A record written by a firing crash point is
        #: never shipped -- the node died before acknowledging it, so it
        #: is durable locally but unacked, exactly the suffix a promoted
        #: standby is allowed to discard.
        self.on_append: Optional[Any] = None
        #: secondary append listeners (WAL archivers).  ``on_append`` is
        #: exclusively owned by the HA shipper; archivers subscribe here
        #: instead so shipping and archiving can coexist on one primary.
        #: Same clean-path-only semantics as ``on_append``.
        self._append_listeners: List[Any] = []
        #: pre-truncate listeners: called with the contiguous prefix of
        #: records about to be dropped, *before* they are discarded.
        #: This is the archiver's completeness guarantee -- no retained
        #: record can leave the log without passing through the hook.
        self._truncate_listeners: List[Any] = []

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def first_retained_lsn(self) -> int:
        """Lowest LSN still retained (after truncation)."""
        return self._truncated_before

    def max_txn_id(self) -> int:
        """Highest transaction id among retained records (0 if none).

        Restart recovery uses this as the XID high-water mark so new
        transactions never reuse a logged id.
        """
        return max((record.txn_id for record in self._records), default=0)

    @property
    def retained_records(self) -> int:
        return len(self._records)

    def in_flight_txns(self) -> set:
        """Transaction ids with logged work but no COMMIT/ABORT yet.

        CHECKPOINT records are logged under the reserved txn id 0 and
        never commit, so id 0 is excluded.  Includes settled pre-crash
        losers (their undo is logical, never logged), so liveness-aware
        callers -- the online-backup barrier -- intersect this with the
        transaction manager's active set and union :meth:`in_doubt_txns`.
        """
        return {txn_id for txn_id in self._last_lsn_of_txn if txn_id != 0}

    def in_doubt_txns(self) -> Dict[int, int]:
        """``{txn_id: last_lsn}`` of chains left open at a PREPARE.

        A chain whose newest record is a PREPARE with no local decision
        is an in-doubt 2PC branch: it may still commit, so no consistent
        cut (online backup, checkpoint barrier) may straddle it.  Chains
        whose PREPARE fell below the truncation boundary are settled by
        definition -- truncation only drops decided prefixes.
        """
        out: Dict[int, int] = {}
        for txn_id, lsn in self._last_lsn_of_txn.items():
            if txn_id == 0 or lsn < self._truncated_before:
                continue
            if self._records[lsn - self._truncated_before].kind is LogKind.PREPARE:
                out[txn_id] = lsn
        return out

    def append(
        self,
        txn_id: int,
        kind: LogKind,
        table: Optional[str] = None,
        key: Any = None,
        before: Optional[Tuple[Any, ...]] = None,
        after: Optional[Tuple[Any, ...]] = None,
        deadline=None,
    ) -> LogRecord:
        if self._dead:
            raise SimulatedCrash("instance is down: append rejected until restart")
        kind_value, ends_txn, needs_fsync, is_data = _KIND_INFO[kind]
        if deadline is not None and is_data:
            # Cancellation point: the append is the last moment a data
            # record can be abandoned without undo work.  Control records
            # (COMMIT/ABORT) are never blocked -- an expired transaction
            # must still be able to log its own rollback.
            deadline.check(f"WAL append ({kind_value})")
        if self._armed_crash is not None and self._next_lsn >= self._armed_crash[0]:
            mode = self._armed_crash[1]
            self._armed_crash = None
            if mode == "before":
                self._dead = True
                self.obs.event(
                    "wal.crash_point", "engine", track="engine",
                    attrs={"mode": "before", "lsn": self._next_lsn},
                )
                raise SimulatedCrash(
                    f"crash point: LSN {self._next_lsn} lost before reaching the log"
                )
        else:
            mode = None
        lsn = self._next_lsn
        last_of_txn = self._last_lsn_of_txn
        prev_lsn = last_of_txn.get(txn_id, 0)
        # Inlined walcodec.payload_crc (one call frame per record saved,
        # plus the _fold frames for fields already in canonical form --
        # int/str/None fold to themselves).  Must stay byte-equivalent
        # to walcodec.canonical_payload; test_walcodec pins that.
        record = LogRecord(
            lsn, txn_id, kind, table, key, before, after, prev_lsn,
            _crc32(_marshal_dumps(
                (lsn, txn_id, kind_value, table,
                 _fold(key) if key.__class__ in _FOLDABLE else key,
                 _fold(before) if before is not None else None,
                 _fold(after) if after is not None else None,
                 prev_lsn),
                2,
            )),
        )
        if mode == "torn":
            # Half the after image reached storage before the crash; the
            # stored CRC is the full record's, so verification fails.
            torn_after = record.after[: len(record.after) // 2] if record.after else None
            record = replace(record, after=torn_after)
        self._next_lsn = lsn + 1
        self._records.append(record)
        if ends_txn:
            last_of_txn.pop(txn_id, None)
        else:
            last_of_txn[txn_id] = lsn
        if needs_fsync:
            # Durability point.  Inside a group_commit() batch the flush
            # is deferred: the whole batch costs one fsync at exit.
            if self._group_depth > 0:
                self._group_pending += 1
            else:
                self._count_fsync()
        if self._c_append is not None:
            self._c_append.value += 1.0
            # inline byte_size(): this runs once per record appended
            size = 32
            if record.before is not None:
                size += 8 * len(record.before) + 16
            if record.after is not None:
                size += 8 * len(record.after) + 16
            self._c_bytes.value += size
        if mode in ("after", "torn"):
            self._dead = True
            self.obs.event(
                "wal.crash_point", "engine", track="engine",
                attrs={"mode": mode, "lsn": lsn},
            )
            raise SimulatedCrash(f"crash point: instance died writing LSN {lsn}")
        if self.on_append is not None:
            self.on_append(record)
        if self._append_listeners:
            for listener in self._append_listeners:
                listener(record)
        return record

    def append_shipped(self, record: LogRecord) -> None:
        """Standby side of log shipping: adopt a primary record verbatim.

        The record keeps its primary LSN (the standby's log *is* the
        primary's log suffix), so LSNs must arrive gap-free and the
        record must verify -- a torn or corrupt record never ships.
        Fsync accounting mirrors :meth:`append`: COMMIT/PREPARE/DECISION
        records are durability points on the standby too, amortizable
        through :meth:`group_commit` (semisync batches use this).
        """
        if self._dead:
            raise SimulatedCrash("standby is down: shipped append rejected")
        if record.lsn != self._next_lsn:
            raise WalCorruptionError(
                f"shipped LSN {record.lsn} breaks continuity (expected {self._next_lsn})"
            )
        if not record.is_intact:
            raise WalCorruptionError(f"shipped LSN {record.lsn} fails its CRC")
        self._records.append(record)
        self._next_lsn = record.lsn + 1
        if record.kind in _TXN_END_KINDS:
            self._last_lsn_of_txn.pop(record.txn_id, None)
        elif record.kind is not LogKind.CHECKPOINT:
            self._last_lsn_of_txn[record.txn_id] = record.lsn
        if record.kind in FSYNC_KINDS:
            if self._group_depth > 0:
                self._group_pending += 1
            else:
                self._count_fsync()
        if self._c_append is not None:
            self._c_append.value += 1.0
            self._c_bytes.value += record.byte_size()

    # -- group commit --------------------------------------------------------

    def _count_fsync(self) -> None:
        self.fsyncs += 1
        if self._c_fsync is not None:
            self._c_fsync.value += 1.0

    @contextmanager
    def group_commit(self) -> Iterator[None]:
        """Batch the fsync points of all appends inside the block.

        COMMIT/PREPARE/DECISION records appended inside the context are
        flushed together: the block pays one fsync at exit instead of
        one per record.  This is what lets a transaction coordinator
        amortise the per-participant decision logging across a batch of
        global transactions.  Nesting is allowed; only the outermost
        exit flushes.
        """
        self._group_depth += 1
        try:
            yield
        finally:
            self._group_depth -= 1
            if self._group_depth == 0 and self._group_pending:
                self._group_pending = 0
                self._count_fsync()

    # -- listeners -----------------------------------------------------------

    def add_append_listener(self, listener: Any) -> None:
        """Subscribe to clean-path appends (in addition to ``on_append``).

        Unlike ``on_append`` -- which the HA shipper claims exclusively --
        any number of listeners may subscribe here.  A listener is called
        with each :class:`LogRecord` appended through the clean path;
        records written by a firing crash point are durable-but-unacked
        and are *not* delivered (archivers heal the gap from the
        pre-truncate hook or by pulling ``records_from``).
        """
        self._append_listeners.append(listener)

    def remove_append_listener(self, listener: Any) -> None:
        self._append_listeners = [
            fn for fn in self._append_listeners if fn is not listener
        ]

    def add_truncate_listener(self, listener: Any) -> None:
        """Subscribe to truncation: called with the list of records about
        to be dropped, before :meth:`truncate` discards them."""
        self._truncate_listeners.append(listener)

    def remove_truncate_listener(self, listener: Any) -> None:
        self._truncate_listeners = [
            fn for fn in self._truncate_listeners if fn is not listener
        ]

    # -- 2PC bookkeeping -----------------------------------------------------

    def decided_gtids(self) -> set:
        """Global transaction ids with a durable DECISION record retained.

        Fleet recovery unions this over every shard: an in-doubt
        prepared transaction commits iff *any* participant holds the
        decision, otherwise presumed abort applies.
        """
        return {
            record.key
            for record in self._records
            if record.kind is LogKind.DECISION
        }

    # -- fault injection -----------------------------------------------------

    def arm_crash(self, at_lsn: int, mode: str = "after") -> None:
        """Arm a one-shot crash point at the append of ``at_lsn``.

        ``mode`` is one of :data:`CRASH_MODES`: ``"before"`` loses the
        record entirely, ``"after"`` crashes with the record durable, and
        ``"torn"`` leaves a half-written record whose CRC fails.  The
        append raises :class:`~repro.engine.errors.SimulatedCrash`.
        """
        if mode not in CRASH_MODES:
            raise ValueError(f"crash mode must be one of {CRASH_MODES}, got {mode!r}")
        if at_lsn < self._next_lsn:
            raise ValueError(f"LSN {at_lsn} already written (next is {self._next_lsn})")
        self._armed_crash = (at_lsn, mode)

    def disarm_crash(self) -> None:
        self._armed_crash = None

    @property
    def is_dead(self) -> bool:
        """Did a crash point fire (instance down until restart)?"""
        return self._dead

    def kill(self) -> None:
        """Take the node down *between* appends (process kill, not a
        torn write): nothing half-written, every further append raises
        :class:`~repro.engine.errors.SimulatedCrash` until revival."""
        self._dead = True
        self.obs.event(
            "wal.kill", "engine", track="engine", attrs={"lsn": self.last_lsn},
        )

    def revive(self) -> None:
        """Restart after a fired crash point; the durable log survives."""
        self._dead = False

    def start_from(self, lsn: int) -> None:
        """Position a pristine log so its next LSN is ``lsn``.

        Standby bootstrap uses this: the base backup covers everything
        below ``lsn``, and shipped records continue the primary's LSN
        sequence from there.  Only valid before anything was appended.
        """
        if self._records or self._next_lsn != 1:
            raise ValueError(
                "start_from requires a pristine log (records were already "
                "appended or the LSN sequence already advanced); call "
                "reset_for_restore() first to reuse this instance"
            )
        if lsn < 1:
            raise ValueError(f"LSN must be >= 1, got {lsn}")
        self._next_lsn = lsn
        self._truncated_before = lsn

    def reset_for_restore(self) -> None:
        """Wipe the log back to pristine so :meth:`start_from` applies.

        Point-in-time restore reuses an existing engine instead of
        rebuilding one from scratch: the restore path blanks the log,
        repositions it at the backup's barrier LSN with
        :meth:`start_from`, and replays archived records through
        :meth:`append_shipped`.  Everything is dropped -- records, the
        LSN sequence, per-transaction chains, armed crash points, group
        state -- and a dead instance is revived.
        """
        self._records = []
        self._next_lsn = 1
        self._truncated_before = 1
        self._last_lsn_of_txn = {}
        self._armed_crash = None
        self._dead = False
        self._group_depth = 0
        self._group_pending = 0

    def flip_bit(self, lsn: int, bit: int = 0) -> LogRecord:
        """Corrupt a retained record in place (a bit flip on the tail).

        The flip lands in the key when it is an integer, otherwise in the
        stored CRC itself; either way re-verification fails.  Returns the
        corrupted record.
        """
        index = lsn - self._truncated_before
        if index < 0 or index >= len(self._records):
            raise ValueError(f"LSN {lsn} is not retained")
        record = self._records[index]
        if isinstance(record.key, int):
            corrupted = replace(record, key=record.key ^ (1 << (bit % 31)))
        else:
            corrupted = replace(record, crc=record.crc ^ (1 << (bit % 32)))
        self._records[index] = corrupted
        return corrupted

    def repair_record(self, record: LogRecord) -> None:
        """Overwrite a retained record with a verified replacement copy.

        The scrubber calls this to heal a bit-flipped record from a
        redundant (archive) copy.  The replacement must carry the same
        LSN and pass its own CRC.
        """
        index = record.lsn - self._truncated_before
        if index < 0 or index >= len(self._records):
            raise ValueError(f"LSN {record.lsn} is not retained")
        if not record.is_intact:
            raise WalCorruptionError(
                f"replacement for LSN {record.lsn} fails its CRC"
            )
        self._records[index] = record

    def first_corrupt_lsn(self, from_lsn: int = 0) -> Optional[int]:
        """LSN of the first retained record failing its CRC, if any."""
        start = max(from_lsn, self._truncated_before)
        for record in self.records_from(start):
            if not record.is_intact:
                return record.lsn
        return None

    def discard_from(self, lsn: int) -> int:
        """Drop every record with LSN >= ``lsn`` (a corrupt tail).

        Future appends reuse the discarded LSNs, exactly as a real engine
        overwrites a torn tail.  Returns the number of records dropped.
        """
        if lsn < self._truncated_before:
            raise ValueError(f"cannot discard below retained LSN {self._truncated_before}")
        keep = lsn - self._truncated_before
        dropped = len(self._records) - keep
        if dropped <= 0:
            return 0
        self._records = self._records[:keep]
        self._next_lsn = lsn
        self._last_lsn_of_txn = {}
        for record in self._records:
            if record.kind in (LogKind.COMMIT, LogKind.ABORT):
                self._last_lsn_of_txn.pop(record.txn_id, None)
            elif record.kind is not LogKind.CHECKPOINT:
                self._last_lsn_of_txn[record.txn_id] = record.lsn
        return dropped

    # -- reading -------------------------------------------------------------

    def records_from(self, lsn: int) -> Iterator[LogRecord]:
        """All retained records with LSN >= ``lsn``, in LSN order."""
        if lsn < self._truncated_before:
            raise ValueError(
                f"LSN {lsn} was truncated (log starts at {self._truncated_before})"
            )
        start = lsn - self._truncated_before
        yield from self._records[max(0, start):]

    def record_at(self, lsn: int) -> LogRecord:
        if lsn < self._truncated_before or lsn > self.last_lsn:
            raise ValueError(f"LSN {lsn} is not retained")
        return self._records[lsn - self._truncated_before]

    def transaction_chain(self, txn_id: int, from_lsn: int) -> List[LogRecord]:
        """The records of one transaction ending at ``from_lsn``, newest first.

        Raises :class:`ValueError` if the chain crosses the truncation
        boundary: a silently shortened chain would undo only part of a
        transaction, which is corruption, not recovery.
        """
        chain: List[LogRecord] = []
        lsn = from_lsn
        while lsn > 0:
            if lsn < self._truncated_before:
                raise ValueError(
                    f"transaction {txn_id} chain crosses the truncation "
                    f"boundary: LSN {lsn} is below first_retained_lsn "
                    f"{self._truncated_before}"
                )
            record = self.record_at(lsn)
            if record.txn_id == txn_id:
                chain.append(record)
                lsn = record.prev_lsn
            else:  # pragma: no cover - chains never cross transactions
                break
        return chain

    def truncate(self, before_lsn: int) -> int:
        """Drop records with LSN < ``before_lsn``; returns records dropped."""
        if before_lsn <= self._truncated_before:
            return 0
        keep_from = min(before_lsn, self._next_lsn)
        dropped = keep_from - self._truncated_before
        if self._truncate_listeners:
            doomed = self._records[:dropped]
            for listener in self._truncate_listeners:
                listener(doomed)
        self._records = self._records[dropped:]
        self._truncated_before = keep_from
        return dropped

    def bytes_between(self, from_lsn: int, to_lsn: int) -> int:
        """Total nominal bytes of records in ``(from_lsn, to_lsn]``."""
        total = 0
        for record in self.records_from(max(from_lsn + 1, self._truncated_before)):
            if record.lsn > to_lsn:
                break
            total += record.byte_size()
        return total

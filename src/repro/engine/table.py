"""Heap tables: pages + primary index + secondary indexes.

Every mutation goes through the owning :class:`~repro.engine.database.
Database` (for WAL and locking); the table provides the physical
storage operations and index maintenance.  All reads and writes report
page touches to the buffer pool, which is how buffer-size effects reach
the cost model.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.engine.buffer import BufferPool
from repro.engine.errors import DuplicateKeyError, EngineError, SchemaError
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.page import Page, RowId, rows_per_page
from repro.engine.types import Schema


class Table:
    """A heap of pages with a unique primary-key index."""

    def __init__(self, schema: Schema, buffer_pool: Optional[BufferPool] = None):
        self.schema = schema
        self.name = schema.table
        self._rows_per_page = rows_per_page(schema.row_byte_size())
        self._pages: List[Page] = []
        self._buffer = buffer_pool
        self._next_auto = 1
        self.primary_index = OrderedIndex(
            f"{self.name}_pkey", (schema.primary_key,), unique=True
        )
        self.secondary_indexes: Dict[str, HashIndex] = {}

    # -- administrative ----------------------------------------------------

    def attach_buffer(self, buffer_pool: Optional[BufferPool]) -> None:
        self._buffer = buffer_pool

    def create_index(
        self, name: str, columns: Tuple[str, ...], unique: bool = False, ordered: bool = False
    ) -> None:
        """Build a secondary index over ``columns`` (backfills existing rows)."""
        if name in self.secondary_indexes:
            raise SchemaError(f"index {name!r} already exists on {self.name!r}")
        for column in columns:
            self.schema.column_index(column)  # validates
        index_class = OrderedIndex if ordered else HashIndex
        index = index_class(name, columns, unique)
        for rid, row in self.scan():
            index.insert(self._index_key(columns, row), rid)
        self.secondary_indexes[name] = index

    @property
    def row_count(self) -> int:
        return len(self.primary_index)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def next_autoincrement(self) -> int:
        value = self._next_auto
        self._next_auto += 1
        return value

    def bump_autoincrement(self, seen_value: int) -> None:
        """Keep the counter ahead of explicitly inserted key values."""
        if seen_value >= self._next_auto:
            self._next_auto = seen_value + 1

    # -- constraint checking ----------------------------------------------------

    def check_unique(self, row: Tuple[Any, ...], exclude_rid: Optional[RowId] = None) -> None:
        """Raise :class:`DuplicateKeyError` if ``row`` would violate the
        primary key or any unique secondary index.

        Called *before* any state is touched, so a failed insert/update
        leaves pages, indexes and the WAL untouched.  ``exclude_rid``
        ignores the row's own current entry (the update case).
        """
        key = row[self.schema.primary_key_index]
        existing = self.primary_index.lookup_unique(key)
        if existing is not None and existing != exclude_rid:
            raise DuplicateKeyError(
                f"duplicate primary key {key!r} in table {self.name!r}"
            )
        for index in self.secondary_indexes.values():
            if not index.unique:
                continue
            entry = self._index_key(index.columns, row)
            holders = index.lookup(entry)
            if holders and holders != [exclude_rid]:
                raise DuplicateKeyError(
                    f"duplicate key {entry!r} in unique index {index.name!r}"
                )

    # -- physical operations -------------------------------------------------

    def insert_row(self, row: Tuple[Any, ...]) -> RowId:
        """Place a validated row; maintains all indexes.

        Raises :class:`DuplicateKeyError` before touching any state when
        the primary key or a unique secondary index would be violated.
        """
        self.check_unique(row)
        key = row[self.schema.primary_key_index]
        page = self._page_with_space()
        slot = page.insert(row)
        rid = RowId(page.page_no, slot)
        self._touch(page.page_no, dirty=True)
        self.primary_index.insert(key, rid)
        for index in self.secondary_indexes.values():
            index.insert(self._index_key(index.columns, row), rid)
        if isinstance(key, int):
            self.bump_autoincrement(key)
        return rid

    def read_row(self, rid: RowId) -> Tuple[Any, ...]:
        page = self._page(rid.page_no)
        self._touch(rid.page_no, dirty=False)
        return page.read(rid.slot)

    def update_row(self, rid: RowId, new_row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Overwrite a row in place; returns the before image.

        All unique constraints are validated before any mutation, so a
        :class:`DuplicateKeyError` leaves the table untouched.
        """
        page = self._page(rid.page_no)
        before = page.read(rid.slot)
        new_key = new_row[self.schema.primary_key_index]
        old_key = before[self.schema.primary_key_index]
        self.check_unique(new_row, exclude_rid=rid)
        page.write(rid.slot, new_row)
        self._touch(rid.page_no, dirty=True)
        if new_key != old_key:
            self.primary_index.delete(old_key, rid)
            self.primary_index.insert(new_key, rid)
        for index in self.secondary_indexes.values():
            old_entry = self._index_key(index.columns, before)
            new_entry = self._index_key(index.columns, new_row)
            if old_entry != new_entry:
                index.delete(old_entry, rid)
                index.insert(new_entry, rid)
        return before

    def delete_row(self, rid: RowId) -> Tuple[Any, ...]:
        """Remove a row; returns the before image."""
        page = self._page(rid.page_no)
        before = page.delete(rid.slot)
        self._touch(rid.page_no, dirty=True)
        key = before[self.schema.primary_key_index]
        self.primary_index.delete(key, rid)
        for index in self.secondary_indexes.values():
            index.delete(self._index_key(index.columns, before), rid)
        return before

    def restore_row(self, rid: RowId, row: Tuple[Any, ...]) -> None:
        """Undo of a delete: put the row back at its original address."""
        while len(self._pages) <= rid.page_no:
            self._pages.append(Page(len(self._pages), self._rows_per_page))
        page = self._page(rid.page_no)
        page.restore(rid.slot, row)
        self._touch(rid.page_no, dirty=True)
        key = row[self.schema.primary_key_index]
        self.primary_index.insert(key, rid)
        for index in self.secondary_indexes.values():
            index.insert(self._index_key(index.columns, row), rid)

    # -- lookups -------------------------------------------------------------

    def find_by_key(self, key: Any) -> Optional[RowId]:
        return self.primary_index.lookup_unique(key)

    def read_by_key(self, key: Any) -> Optional[Tuple[Any, ...]]:
        rid = self.find_by_key(key)
        if rid is None:
            return None
        return self.read_row(rid)

    def index_for_name(self, name: str) -> HashIndex:
        """Resolve an index (primary or secondary) by its name."""
        if name == self.primary_index.name:
            return self.primary_index
        try:
            return self.secondary_indexes[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no index {name!r}") from None

    def index_for_columns(self, columns: Tuple[str, ...]) -> Optional[HashIndex]:
        """The best index whose column list exactly matches ``columns``."""
        if columns == (self.schema.primary_key,):
            return self.primary_index
        for index in self.secondary_indexes.values():
            if index.columns == columns:
                return index
        return None

    def scan(self) -> Iterator[Tuple[RowId, Tuple[Any, ...]]]:
        """Full scan in physical order, touching each page once."""
        for page in self._pages:
            if page.live_rows == 0:
                continue
            self._touch(page.page_no, dirty=False)
            for slot, row in page.rows():
                yield RowId(page.page_no, slot), row

    def filter_scan(
        self, predicate: Callable[[Tuple[Any, ...]], bool]
    ) -> Iterator[Tuple[RowId, Tuple[Any, ...]]]:
        for rid, row in self.scan():
            if predicate(row):
                yield rid, row

    # -- snapshot for checkpoints ---------------------------------------------

    def snapshot(self) -> "TableSnapshot":
        return TableSnapshot(
            pages=[page.clone() for page in self._pages],
            next_auto=self._next_auto,
        )

    def restore_snapshot(self, snapshot: "TableSnapshot") -> None:
        self._pages = [page.clone() for page in snapshot.pages]
        self._next_auto = snapshot.next_auto
        self._rebuild_indexes()

    def _rebuild_indexes(self) -> None:
        self.primary_index.clear()
        for index in self.secondary_indexes.values():
            index.clear()
        for page in self._pages:
            for slot, row in page.rows():
                rid = RowId(page.page_no, slot)
                self.primary_index.insert(row[self.schema.primary_key_index], rid)
                for index in self.secondary_indexes.values():
                    index.insert(self._index_key(index.columns, row), rid)

    # -- internals --------------------------------------------------------------

    def _index_key(self, columns: Tuple[str, ...], row: Tuple[Any, ...]) -> Any:
        if len(columns) == 1:
            return row[self.schema.column_index(columns[0])]
        return tuple(row[self.schema.column_index(column)] for column in columns)

    def _page(self, page_no: int) -> Page:
        if page_no < 0 or page_no >= len(self._pages):
            raise EngineError(f"table {self.name!r} has no page {page_no}")
        return self._pages[page_no]

    def _page_with_space(self) -> Page:
        if self._pages and self._pages[-1].has_free_slot():
            return self._pages[-1]
        for page in self._pages:
            if page.has_free_slot():
                return page
        page = Page(len(self._pages), self._rows_per_page)
        self._pages.append(page)
        return page

    def _touch(self, page_no: int, dirty: bool) -> None:
        if self._buffer is not None:
            self._buffer.access(self.name, page_no, dirty=dirty)


class TableSnapshot:
    """Frozen physical state of a table (pages + autoincrement counter)."""

    def __init__(self, pages: List[Page], next_auto: int):
        self.pages = pages
        self.next_auto = next_auto

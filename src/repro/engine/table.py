"""Heap tables: pages + primary index + secondary indexes + row versions.

Every mutation goes through the owning :class:`~repro.engine.database.
Database` (for WAL and locking); the table provides the physical
storage operations and index maintenance.  All reads and writes report
page touches to the buffer pool, which is how buffer-size effects reach
the cost model.

MVCC state lives beside the heap: each mutated primary key owns a
**version chain** (:class:`VersionStore`) ordered oldest to newest and
keyed by commit LSN.  The heap always holds the *current* row image
(including a writer's uncommitted change, protected by its X lock);
snapshot readers resolve through the chain instead.  A key with no
chain is committed base data, visible to every snapshot -- chains are
created by transactional writes and trimmed back to nothing by vacuum
once no live snapshot can need the history.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.engine.buffer import BufferPool
from repro.engine.errors import DuplicateKeyError, EngineError, SchemaError
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.page import Page, RowId, rows_per_page
from repro.engine.types import Schema


class RowVersion:
    """One entry of a version chain.

    ``begin_lsn`` is the commit LSN of the creating transaction, or
    ``None`` while it is still uncommitted (``begin_txn`` then names the
    writer).  ``end_lsn``/``end_txn`` mirror that for the superseding or
    deleting transaction; a version with neither is current.
    """

    __slots__ = ("row", "begin_lsn", "begin_txn", "end_lsn", "end_txn")

    def __init__(
        self,
        row: Tuple[Any, ...],
        begin_lsn: Optional[int] = None,
        begin_txn: Optional[int] = None,
    ):
        self.row = row
        self.begin_lsn = begin_lsn
        self.begin_txn = begin_txn
        self.end_lsn: Optional[int] = None
        self.end_txn: Optional[int] = None

    def visible_to(self, snapshot_lsn: int, txn_id: int) -> bool:
        """Snapshot-isolation visibility: created at or before the
        snapshot (or by the reader itself) and not yet superseded from
        the reader's point of view."""
        if self.begin_lsn is None:
            if self.begin_txn != txn_id:
                return False
        elif self.begin_lsn > snapshot_lsn:
            return False
        if self.end_txn is not None:
            return self.end_txn != txn_id
        if self.end_lsn is not None:
            return self.end_lsn > snapshot_lsn
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RowVersion begin={self.begin_txn or self.begin_lsn}"
            f" end={self.end_txn or self.end_lsn} row={self.row!r}>"
        )


class VersionStore:
    """Per-table version chains, keyed by primary key.

    The chain list runs oldest to newest.  Only the owning database
    mutates chains (under the row's X lock), so no further latching is
    needed in the cooperative execution model.
    """

    __slots__ = ("_chains", "live_versions")

    def __init__(self) -> None:
        self._chains: Dict[Any, List[RowVersion]] = {}
        #: total chain entries (drives the auto-vacuum trigger)
        self.live_versions = 0

    def __len__(self) -> int:
        return len(self._chains)

    def chain(self, key: Any) -> Optional[List[RowVersion]]:
        return self._chains.get(key)

    def chains(self) -> Iterator[Tuple[Any, List[RowVersion]]]:
        return iter(self._chains.items())

    def clear(self) -> None:
        self._chains.clear()
        self.live_versions = 0

    # -- chain mutation (called by the database write path) -----------------

    def append(self, key: Any, version: RowVersion) -> RowVersion:
        self._chains.setdefault(key, []).append(version)
        self.live_versions += 1
        return version

    def newest(self, key: Any) -> Optional[RowVersion]:
        chain = self._chains.get(key)
        return chain[-1] if chain else None

    def transition(
        self,
        key: Any,
        new_key: Any,
        before: Tuple[Any, ...],
        after: Tuple[Any, ...],
        txn_id: int,
    ) -> Tuple[Optional[RowVersion], RowVersion]:
        """Fused update-path mutation: base + supersede + append.

        One chain lookup instead of three (the separate helpers each
        re-resolved the chain dict on the OLTP hot path): ensure a
        bootstrap base version exists for ``key``, mark the chain head
        as ended by ``txn_id`` (unless already ended), and append the
        new version under ``new_key``.  Returns ``(ended_or_None,
        created)`` for the caller's commit/rollback bookkeeping.
        """
        chains = self._chains
        chain = chains.get(key)
        if chain is None:
            # First write to a bootstrap row: capture the committed heap
            # image as an always-visible base version (begin LSN 0).
            chain = chains[key] = [RowVersion(before, begin_lsn=0)]
            self.live_versions += 1
        head = chain[-1]
        ended = None
        if head.end_txn is None and head.end_lsn is None:
            head.end_txn = txn_id
            ended = head
        created = RowVersion(after, begin_txn=txn_id)
        if new_key == key:
            chain.append(created)
        else:  # primary-key update: the new version starts its own chain
            chains.setdefault(new_key, []).append(created)
        self.live_versions += 1
        return ended, created

    def remove_newest(self, key: Any) -> Optional[RowVersion]:
        """Drop the newest version of ``key`` (undo of an insert/update)."""
        chain = self._chains.get(key)
        if not chain:
            return None
        version = chain.pop()
        self.live_versions -= 1
        if not chain:
            del self._chains[key]
        return version

    def discard(self, key: Any, version: RowVersion) -> None:
        """Remove one version by identity (rollback of an aborted writer)."""
        chain = self._chains.get(key)
        if not chain:
            return
        try:
            chain.remove(version)
        except ValueError:
            return
        self.live_versions -= 1
        if not chain:
            del self._chains[key]

    # -- visibility ----------------------------------------------------------

    def visible_row(
        self, key: Any, snapshot_lsn: int, txn_id: int
    ) -> Tuple[bool, Optional[Tuple[Any, ...]]]:
        """``(has_chain, row)``: the version of ``key`` visible to the
        snapshot, walking newest to oldest.  ``has_chain`` False means
        the caller should fall back to the heap (committed base data).
        """
        chain = self._chains.get(key)
        if not chain:
            return False, None
        for version in reversed(chain):
            if version.visible_to(snapshot_lsn, txn_id):
                return True, version.row
        return True, None

    def newest_commit_lsn(self, key: Any) -> int:
        """Highest commit LSN stamped anywhere on ``key``'s chain (0 when
        chainless) -- the first-updater-wins conflict test compares this
        against the writer's snapshot."""
        chain = self._chains.get(key)
        if not chain:
            return 0
        newest = 0
        for version in chain:
            if version.begin_lsn is not None and version.begin_lsn > newest:
                newest = version.begin_lsn
            if version.end_lsn is not None and version.end_lsn > newest:
                newest = version.end_lsn
        return newest

    # -- garbage collection --------------------------------------------------

    def vacuum(self, horizon_lsn: int) -> int:
        """Trim history invisible to every snapshot at or after ``horizon``.

        Versions superseded at or before the horizon are dropped; a chain
        reduced to a single committed, current version is dropped whole
        (the heap row carries the same data, and chainless means visible
        to all).  Returns the number of versions freed.
        """
        freed = 0
        for key in list(self._chains):
            chain = self._chains[key]
            kept = [
                version for version in chain
                if not (
                    version.end_lsn is not None
                    and version.end_txn is None
                    and version.end_lsn <= horizon_lsn
                )
            ]
            if len(kept) == 1:
                only = kept[0]
                if (
                    only.begin_txn is None
                    and only.end_txn is None
                    and only.end_lsn is None
                    and only.begin_lsn is not None
                    and only.begin_lsn <= horizon_lsn
                ):
                    kept = []
            freed += len(chain) - len(kept)
            if kept:
                self._chains[key] = kept
            else:
                del self._chains[key]
        self.live_versions -= freed
        return freed


class Table:
    """A heap of pages with a unique primary-key index."""

    def __init__(self, schema: Schema, buffer_pool: Optional[BufferPool] = None):
        self.schema = schema
        self.name = schema.table
        self._rows_per_page = rows_per_page(schema.row_byte_size())
        self._pages: List[Page] = []
        self._buffer = buffer_pool
        self._next_auto = 1
        self.primary_index = OrderedIndex(
            f"{self.name}_pkey", (schema.primary_key,), unique=True
        )
        self.secondary_indexes: Dict[str, HashIndex] = {}
        #: bumped whenever the index set changes; compiled statements
        #: pin the epoch they were planned under and recompile on drift
        self.plan_epoch = 0
        #: MVCC version chains for keys with post-bootstrap history
        self.versions = VersionStore()

    # -- administrative ----------------------------------------------------

    def attach_buffer(self, buffer_pool: Optional[BufferPool]) -> None:
        self._buffer = buffer_pool

    def create_index(
        self, name: str, columns: Tuple[str, ...], unique: bool = False, ordered: bool = False
    ) -> None:
        """Build a secondary index over ``columns`` (backfills existing rows)."""
        if name in self.secondary_indexes:
            raise SchemaError(f"index {name!r} already exists on {self.name!r}")
        for column in columns:
            self.schema.column_index(column)  # validates
        index_class = OrderedIndex if ordered else HashIndex
        index = index_class(name, columns, unique)
        for rid, row in self.scan():
            index.insert(self._index_key(columns, row), rid)
        self.secondary_indexes[name] = index
        self.plan_epoch += 1

    @property
    def row_count(self) -> int:
        return len(self.primary_index)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def next_autoincrement(self) -> int:
        value = self._next_auto
        self._next_auto += 1
        return value

    def bump_autoincrement(self, seen_value: int) -> None:
        """Keep the counter ahead of explicitly inserted key values."""
        if seen_value >= self._next_auto:
            self._next_auto = seen_value + 1

    # -- constraint checking ----------------------------------------------------

    def check_unique(self, row: Tuple[Any, ...], exclude_rid: Optional[RowId] = None) -> None:
        """Raise :class:`DuplicateKeyError` if ``row`` would violate the
        primary key or any unique secondary index.

        Called *before* any state is touched, so a failed insert/update
        leaves pages, indexes and the WAL untouched.  ``exclude_rid``
        ignores the row's own current entry (the update case).
        """
        key = row[self.schema.primary_key_index]
        existing = self.primary_index.lookup_unique(key)
        if existing is not None and existing != exclude_rid:
            raise DuplicateKeyError(
                f"duplicate primary key {key!r} in table {self.name!r}"
            )
        for index in self.secondary_indexes.values():
            if not index.unique:
                continue
            entry = self._index_key(index.columns, row)
            holders = index.lookup(entry)
            if holders and holders != [exclude_rid]:
                raise DuplicateKeyError(
                    f"duplicate key {entry!r} in unique index {index.name!r}"
                )

    # -- physical operations -------------------------------------------------

    def insert_row(self, row: Tuple[Any, ...]) -> RowId:
        """Place a validated row; maintains all indexes.

        Raises :class:`DuplicateKeyError` before touching any state when
        the primary key or a unique secondary index would be violated.
        """
        self.check_unique(row)
        key = row[self.schema.primary_key_index]
        page = self._page_with_space()
        slot = page.insert(row)
        rid = RowId(page.page_no, slot)
        self._touch(page.page_no, dirty=True)
        self.primary_index.insert(key, rid)
        for index in self.secondary_indexes.values():
            index.insert(self._index_key(index.columns, row), rid)
        if isinstance(key, int):
            self.bump_autoincrement(key)
        return rid

    def read_row(self, rid: RowId) -> Tuple[Any, ...]:
        page = self._page(rid.page_no)
        self._touch(rid.page_no, dirty=False)
        return page.read(rid.slot)

    def update_row(
        self, rid: RowId, new_row: Tuple[Any, ...], keys_unchanged: bool = False
    ) -> Tuple[Any, ...]:
        """Overwrite a row in place; returns the before image.

        All unique constraints are validated before any mutation, so a
        :class:`DuplicateKeyError` leaves the table untouched.

        ``keys_unchanged=True`` is the caller asserting that no primary
        key or indexed column differs from the stored row (the compiled
        executor proves this from the SET clause shape); the uniqueness
        check and index maintenance are then skipped.
        """
        page = self._page(rid.page_no)
        before = page.read(rid.slot)
        if keys_unchanged:
            page.write(rid.slot, new_row)
            self._touch(rid.page_no, dirty=True)
            return before
        new_key = new_row[self.schema.primary_key_index]
        old_key = before[self.schema.primary_key_index]
        self.check_unique(new_row, exclude_rid=rid)
        page.write(rid.slot, new_row)
        self._touch(rid.page_no, dirty=True)
        if new_key != old_key:
            self.primary_index.delete(old_key, rid)
            self.primary_index.insert(new_key, rid)
        for index in self.secondary_indexes.values():
            old_entry = self._index_key(index.columns, before)
            new_entry = self._index_key(index.columns, new_row)
            if old_entry != new_entry:
                index.delete(old_entry, rid)
                index.insert(new_entry, rid)
        return before

    def overwrite_row(self, rid: RowId, new_row: Tuple[Any, ...]) -> None:
        """Narrow-update write: the caller proved no key or indexed
        column changes (from the compiled SET shape) and already holds
        the before image, so the re-read, uniqueness check and index
        maintenance of :meth:`update_row` are all skipped.
        """
        self._pages[rid.page_no].write(rid.slot, new_row)
        if self._buffer is not None:
            self._buffer.access(self.name, rid.page_no, dirty=True)

    def delete_row(self, rid: RowId) -> Tuple[Any, ...]:
        """Remove a row; returns the before image."""
        page = self._page(rid.page_no)
        before = page.delete(rid.slot)
        self._touch(rid.page_no, dirty=True)
        key = before[self.schema.primary_key_index]
        self.primary_index.delete(key, rid)
        for index in self.secondary_indexes.values():
            index.delete(self._index_key(index.columns, before), rid)
        return before

    def restore_row(self, rid: RowId, row: Tuple[Any, ...]) -> None:
        """Undo of a delete: put the row back at its original address."""
        while len(self._pages) <= rid.page_no:
            self._pages.append(Page(len(self._pages), self._rows_per_page))
        page = self._page(rid.page_no)
        page.restore(rid.slot, row)
        self._touch(rid.page_no, dirty=True)
        key = row[self.schema.primary_key_index]
        self.primary_index.insert(key, rid)
        for index in self.secondary_indexes.values():
            index.insert(self._index_key(index.columns, row), rid)

    # -- lookups -------------------------------------------------------------

    def find_by_key(self, key: Any) -> Optional[RowId]:
        return self.primary_index.lookup_unique(key)

    def read_by_key(self, key: Any) -> Optional[Tuple[Any, ...]]:
        rid = self.find_by_key(key)
        if rid is None:
            return None
        return self.read_row(rid)

    def index_for_name(self, name: str) -> HashIndex:
        """Resolve an index (primary or secondary) by its name."""
        if name == self.primary_index.name:
            return self.primary_index
        try:
            return self.secondary_indexes[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no index {name!r}") from None

    def index_for_columns(self, columns: Tuple[str, ...]) -> Optional[HashIndex]:
        """The best index whose column list exactly matches ``columns``."""
        if columns == (self.schema.primary_key,):
            return self.primary_index
        for index in self.secondary_indexes.values():
            if index.columns == columns:
                return index
        return None

    # -- snapshot (MVCC) reads ------------------------------------------------

    def visible_by_key(
        self, key: Any, snapshot_lsn: int, txn_id: int
    ) -> Optional[Tuple[Any, ...]]:
        """The row for ``key`` as the snapshot sees it, without locking.

        Chainless keys are committed base data: the heap row (if any) is
        visible to everyone.  Keys with a chain resolve through version
        visibility -- the heap may hold a newer or uncommitted image.
        """
        has_chain, row = self.versions.visible_row(key, snapshot_lsn, txn_id)
        if has_chain:
            rid = self.find_by_key(key)
            if rid is not None:
                self._touch(rid.page_no, dirty=False)
            return row
        return self.read_by_key(key)

    def snapshot_scan(
        self, snapshot_lsn: int, txn_id: int
    ) -> Iterator[Tuple[Optional[RowId], Tuple[Any, ...]]]:
        """Full scan as of the snapshot: heap rows resolved through their
        chains, plus chain-only keys whose current heap row is gone
        (deleted or moved after the snapshot was taken)."""
        pk_index = self.schema.primary_key_index
        for rid, row in self.scan():
            has_chain, visible = self.versions.visible_row(
                row[pk_index], snapshot_lsn, txn_id
            )
            if not has_chain:
                yield rid, row
            elif visible is not None:
                yield rid, visible
        for key, _chain in self.versions.chains():
            if self.primary_index.lookup_unique(key) is not None:
                continue  # already resolved during the heap scan
            _has, visible = self.versions.visible_row(key, snapshot_lsn, txn_id)
            if visible is not None:
                yield None, visible

    def scan(self) -> Iterator[Tuple[RowId, Tuple[Any, ...]]]:
        """Full scan in physical order, touching each page once."""
        for page in self._pages:
            if page.live_rows == 0:
                continue
            self._touch(page.page_no, dirty=False)
            for slot, row in page.rows():
                yield RowId(page.page_no, slot), row

    def filter_scan(
        self, predicate: Callable[[Tuple[Any, ...]], bool]
    ) -> Iterator[Tuple[RowId, Tuple[Any, ...]]]:
        for rid, row in self.scan():
            if predicate(row):
                yield rid, row

    # -- snapshot for checkpoints ---------------------------------------------

    def snapshot(self) -> "TableSnapshot":
        return TableSnapshot(
            pages=[page.clone() for page in self._pages],
            next_auto=self._next_auto,
        )

    def restore_snapshot(self, snapshot: "TableSnapshot") -> None:
        self._pages = [page.clone() for page in snapshot.pages]
        self._next_auto = snapshot.next_auto
        # Checkpoint images are quiesced and vacuumed: the restored heap
        # is committed base data, so all version history resets with it
        # (recovery redo rebuilds the post-checkpoint chains).
        self.versions.clear()
        self._rebuild_indexes()

    def _rebuild_indexes(self) -> None:
        self.primary_index.clear()
        for index in self.secondary_indexes.values():
            index.clear()
        for page in self._pages:
            for slot, row in page.rows():
                rid = RowId(page.page_no, slot)
                self.primary_index.insert(row[self.schema.primary_key_index], rid)
                for index in self.secondary_indexes.values():
                    index.insert(self._index_key(index.columns, row), rid)

    # -- internals --------------------------------------------------------------

    def _index_key(self, columns: Tuple[str, ...], row: Tuple[Any, ...]) -> Any:
        if len(columns) == 1:
            return row[self.schema.column_index(columns[0])]
        return tuple(row[self.schema.column_index(column)] for column in columns)

    def _page(self, page_no: int) -> Page:
        if page_no < 0 or page_no >= len(self._pages):
            raise EngineError(f"table {self.name!r} has no page {page_no}")
        return self._pages[page_no]

    def _page_with_space(self) -> Page:
        if self._pages and self._pages[-1].has_free_slot():
            return self._pages[-1]
        for page in self._pages:
            if page.has_free_slot():
                return page
        page = Page(len(self._pages), self._rows_per_page)
        self._pages.append(page)
        return page

    def _touch(self, page_no: int, dirty: bool) -> None:
        if self._buffer is not None:
            self._buffer.access(self.name, page_no, dirty=dirty)


class TableSnapshot:
    """Frozen physical state of a table (pages + autoincrement counter)."""

    def __init__(self, pages: List[Page], next_auto: int):
        self.pages = pages
        self.next_auto = next_auto

"""Hash and ordered indexes mapping key values to row ids.

Indexes may be unique (primary keys, unique constraints) or not
(secondary access paths such as ``ORDERLINE(OL_O_ID)``).  The ordered
variant keeps keys sorted for range scans and ORDER BY ... LIMIT plans
(TPC-C's "latest order of a customer" lookup).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.engine.errors import DuplicateKeyError, EngineError
from repro.engine.page import RowId


class HashIndex:
    """Equality-only index: key -> set of row ids (or a single id if unique)."""

    def __init__(self, name: str, columns: Tuple[str, ...], unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._map: Dict[Any, Set[RowId]] = {}

    def __len__(self) -> int:
        return sum(len(rids) for rids in self._map.values())

    def insert(self, key: Any, rid: RowId) -> None:
        bucket = self._map.setdefault(key, set())
        if self.unique and bucket:
            raise DuplicateKeyError(
                f"duplicate key {key!r} in unique index {self.name!r}"
            )
        bucket.add(rid)

    def delete(self, key: Any, rid: RowId) -> None:
        bucket = self._map.get(key)
        if bucket is None or rid not in bucket:
            raise EngineError(f"index {self.name!r} has no entry {key!r}->{rid}")
        bucket.discard(rid)
        if not bucket:
            del self._map[key]

    def lookup(self, key: Any) -> List[RowId]:
        return sorted(
            self._map.get(key, ()), key=lambda rid: (rid.page_no, rid.slot)
        )

    def lookup_unique(self, key: Any) -> Optional[RowId]:
        bucket = self._map.get(key)
        if not bucket:
            return None
        if len(bucket) > 1:  # pragma: no cover - guarded by insert()
            raise EngineError(f"unique index {self.name!r} has duplicates")
        return next(iter(bucket))

    def keys(self) -> Iterator[Any]:
        return iter(self._map)

    def clear(self) -> None:
        self._map.clear()


class OrderedIndex(HashIndex):
    """Hash index plus a sorted key list for range scans.

    Keys must be mutually comparable (ints, strings, or homogeneous
    tuples).  The sorted list holds unique key values; the hash map
    resolves each key to its row ids.
    """

    def __init__(self, name: str, columns: Tuple[str, ...], unique: bool = False):
        super().__init__(name, columns, unique)
        self._sorted_keys: List[Any] = []

    def insert(self, key: Any, rid: RowId) -> None:
        existed = key in self._map
        super().insert(key, rid)
        if not existed:
            bisect.insort(self._sorted_keys, key)

    def delete(self, key: Any, rid: RowId) -> None:
        super().delete(key, rid)
        if key not in self._map:
            position = bisect.bisect_left(self._sorted_keys, key)
            if position < len(self._sorted_keys) and self._sorted_keys[position] == key:
                self._sorted_keys.pop(position)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
        reverse: bool = False,
    ) -> Iterator[Tuple[Any, RowId]]:
        """Yield (key, rid) pairs with keys in the requested interval."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._sorted_keys, low)
        else:
            start = bisect.bisect_right(self._sorted_keys, low)
        if high is None:
            stop = len(self._sorted_keys)
        elif include_high:
            stop = bisect.bisect_right(self._sorted_keys, high)
        else:
            stop = bisect.bisect_left(self._sorted_keys, high)
        keys = self._sorted_keys[start:stop]
        if reverse:
            keys = reversed(keys)
        for key in keys:
            for rid in self.lookup(key):
                yield key, rid

    def min_key(self) -> Optional[Any]:
        return self._sorted_keys[0] if self._sorted_keys else None

    def max_key(self) -> Optional[Any]:
        return self._sorted_keys[-1] if self._sorted_keys else None

    def clear(self) -> None:
        super().clear()
        self._sorted_keys.clear()

"""LRU buffer pool with hit/miss/write-back accounting.

The engine's tables are memory-resident, so the pool does not move
bytes; it tracks page *residency* so that accesses produce exactly the
hit/miss/dirty-write-back pattern a disk-based engine with the same
buffer size would produce.  Those counters feed the cloud cost model
(misses become I/O and network demand) and the Figure 8 buffer-size
experiment.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.engine.errors import EngineError
from repro.engine.page import PAGE_SIZE_BYTES
from repro.obs import NULL_OBSERVER, Observer

#: Key identifying a page across all tables of one database.
PageKey = Tuple[str, int]


@dataclass
class BufferStats:
    """Cumulative counters since the last :meth:`BufferPool.reset_stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses


class BufferPool:
    """Fixed-size LRU cache of page residency with dirty tracking."""

    def __init__(
        self,
        size_bytes: int,
        page_size: int = PAGE_SIZE_BYTES,
        observer: Optional[Observer] = None,
    ):
        if size_bytes <= 0:
            raise EngineError("buffer pool size must be positive")
        if page_size <= 0:
            raise EngineError("page size must be positive")
        self.obs = observer or NULL_OBSERVER
        # Pre-resolved counters: page access is the engine's hottest
        # instrumented path, so an enabled observation must be a single
        # attribute bump rather than a name lookup per touch.
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._c_hit = metrics.counter("engine.buffer.hit")
            self._c_miss = metrics.counter("engine.buffer.miss")
            self._c_evict = metrics.counter("engine.buffer.eviction")
            self._c_writeback = metrics.counter("engine.buffer.dirty_writeback")
        else:
            self._c_hit = self._c_miss = None
            self._c_evict = self._c_writeback = None
        self.page_size = page_size
        self._capacity_pages = max(1, size_bytes // page_size)
        #: OrderedDict preserves recency: the last key is the most recent.
        #: The value is the page's dirty flag.
        self._resident: "OrderedDict[PageKey, bool]" = OrderedDict()
        self._dirty_count = 0
        self.stats = BufferStats()
        #: optional cancellation hook invoked before a *read-path* miss
        #: is paid for (the database wires it to its deadline guard).
        #: Write-path touches are exempt: they happen after the heap
        #: mutation, when abandoning the page fetch would be pointless.
        self.miss_guard: Optional[Callable[[], None]] = None

    @property
    def capacity_pages(self) -> int:
        return self._capacity_pages

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def dirty_pages(self) -> int:
        return self._dirty_count

    def resize(self, size_bytes: int) -> None:
        """Grow or shrink the pool; shrinking evicts LRU pages."""
        if size_bytes <= 0:
            raise EngineError("buffer pool size must be positive")
        self._capacity_pages = max(1, size_bytes // self.page_size)
        while len(self._resident) > self._capacity_pages:
            self._evict_one()

    def access(self, table: str, page_no: int, dirty: bool = False) -> bool:
        """Touch a page; returns ``True`` on a hit, ``False`` on a miss."""
        key = (table, page_no)
        previous = self._resident.pop(key, None)
        hit = previous is not None
        if hit:
            self.stats.hits += 1
            if previous:
                self._dirty_count -= 1
        else:
            if not dirty and self.miss_guard is not None:
                # Cancellation point: raise before the miss is counted or
                # the page made resident -- the doomed statement never
                # pays for (or is billed for) the fetch.
                self.miss_guard()
            self.stats.misses += 1
            previous = False
        if self._c_hit is not None:
            (self._c_hit if hit else self._c_miss).value += 1.0
        now_dirty = previous or dirty
        self._resident[key] = now_dirty
        if now_dirty:
            self._dirty_count += 1
        while len(self._resident) > self._capacity_pages:
            self._evict_one()
        return hit

    def is_resident(self, table: str, page_no: int) -> bool:
        return (table, page_no) in self._resident

    def flush(self) -> int:
        """Write back every dirty page (checkpoint); returns pages written."""
        written = 0
        for key, dirty in self._resident.items():
            if dirty:
                written += 1
                self._resident[key] = False
        self.stats.dirty_writebacks += written
        self._dirty_count = 0
        return written

    def invalidate(self, table: str, page_no: int) -> None:
        """Drop a page without write-back (remote cache-invalidation)."""
        dirty = self._resident.pop((table, page_no), None)
        if dirty:
            self._dirty_count -= 1

    def clear(self) -> None:
        """Drop everything: models a cold restart."""
        self._resident.clear()
        self._dirty_count = 0

    def reset_stats(self) -> None:
        self.stats = BufferStats()

    def _evict_one(self) -> None:
        _key, dirty = self._resident.popitem(last=False)
        self.stats.evictions += 1
        if self._c_evict is not None:
            self._c_evict.value += 1.0
            if dirty:
                self._c_writeback.value += 1.0
        if dirty:
            self.stats.dirty_writebacks += 1
            self._dirty_count -= 1

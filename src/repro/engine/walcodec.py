"""Binary WAL record codec: canonical CRC payloads and a versioned
wire format.

Two encodings live here, with deliberately different goals:

* :func:`payload_crc` -- the **canonical** encoding the CRC32 is
  computed over.  Canonical means *value-identity*, not
  type-identity: a record rebuilt from an archive or a replication
  frame may come back with a list where a tuple was written, or a
  float ``1.0`` where an int ``1`` was logged, and it must still
  checksum identically (the old ``repr()`` payload did not -- see the
  DR scrubber's false "repairs").  Folding rules:

  - integral floats fold to ints (``1.0`` == ``1``; ``-0.0`` == ``0``),
  - lists and tuples share one sequence tag,
  - everything else is type-tagged so ``"1"`` never collides with ``1``.

* :func:`encode_record` / :func:`decode_record` -- the **wire**
  format, which is full-fidelity (tuple stays tuple, int stays int)
  and versioned.  Version 1 is the legacy ``repr`` encoding kept as a
  fallback decoder so archives written before the codec change stay
  readable; version 2 is the struct-packed binary format this module
  owns.  The bakeoff benchmark (``benchmarks/bench_wal_codec.py``)
  measures both against a JSON codec.

Wire format v2::

    offset  size  field
    0       1     version byte (0x02)
    1       1     kind-code byte (index into KIND_CODES)
    2       8     lsn        (>Q)
    10      8     txn_id     (>Q)
    18      8     prev_lsn   (>Q)
    26      4     crc        (>I, the CRC stored with the record)
    30      ...   table, key, before, after (tagged values, see _encode_value)

Tagged value encoding (type-preserving): ``N`` None, ``T``/``f``
True/False, ``i<decimal>;`` int, ``F``+8B big-endian double,
``s<len>:<utf8>`` str, ``y<len>:<raw>`` bytes, ``L<count>:`` list,
``U<count>:`` tuple.
"""

from __future__ import annotations

import ast
import marshal
import struct
import zlib
from typing import Any, List, Tuple

__all__ = [
    "CODEC_VERSION",
    "LEGACY_VERSION",
    "payload_crc",
    "legacy_payload_crc",
    "canonical_payload",
    "encode_record",
    "decode_record",
    "encode_record_legacy",
    "records_equivalent",
]

CODEC_VERSION = 2
LEGACY_VERSION = 1

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from
_HEADER = struct.Struct(">QQQI")  # lsn, txn_id, prev_lsn, crc

#: Stable kind-code table for the v2 header byte.  Append-only: codes
#: are part of the wire format and must never be reassigned.
KIND_CODES: Tuple[str, ...] = (
    "begin", "commit", "abort", "insert", "update",
    "delete", "checkpoint", "prepare", "decision",
)
_KIND_TO_CODE = {name: i for i, name in enumerate(KIND_CODES)}


# -- canonical encoding (CRC payload) -----------------------------------------
#
# The canonical bytes are the ``marshal`` (format version 2)
# serialization of the record's field tuple after *value folding*:
# integral floats collapse to ints (``1.0`` == ``1``, ``-0.0`` == ``0``)
# and lists collapse to tuples, so a record rebuilt from an archive or
# a wire frame that lost those type distinctions still checksums
# identically.  Everything else stays type-distinct: marshal encodes
# ``True``/``1``, ``"1"``/``1`` and ``b"x"``/``"x"`` differently.
#
# Marshal format 2 is chosen deliberately: unlike formats 3+, it emits
# no identity-based back-references, so two value-equal structures
# produce identical bytes regardless of object sharing or string
# interning -- the property a canonical form needs.  Serialization runs
# in C, which is what makes the per-record CRC affordable on the WAL
# append hot path.

_marshal_dumps = marshal.dumps


def _fold(value: Any, _type=type) -> Any:
    """Canonical value fold: integral floats to ints, lists to tuples.

    Flat rows that need no folding are returned as-is (one scan, no
    rebuild); rows that do fold rebuild through a list comprehension
    with the scalar cases inlined -- a generator expression pays a
    frame switch per cell, and foldable rows are common (any row
    carrying a whole-valued DECIMAL or TIMESTAMP cell).
    """
    t = _type(value)
    if t is tuple:
        for cell in value:
            ct = cell.__class__
            if ct is float:
                if cell.is_integer():
                    break
            elif ct is tuple or ct is list:
                break
        else:
            return value
        return tuple([
            (int(cell) if cell.is_integer() else cell)
            if cell.__class__ is float
            else (_fold(cell)
                  if cell.__class__ is tuple or cell.__class__ is list
                  else cell)
            for cell in value
        ])
    if t is float and value.is_integer():
        return int(value)
    if t is list:
        return tuple([_fold(cell) for cell in value])
    return value


#: Types the fold can rewrite; anything else (int, str, bytes, None)
#: is its own canonical form, so callers skip the ``_fold`` frame.
_FOLDABLE = (float, list, tuple)


def canonical_payload(
    lsn: int,
    txn_id: int,
    kind_value: str,
    table: Any,
    key: Any,
    before: Any,
    after: Any,
    prev_lsn: int,
) -> bytes:
    """The canonical byte string the record CRC is computed over."""
    return _marshal_dumps(
        (lsn, txn_id, kind_value, table,
         _fold(key) if key.__class__ in _FOLDABLE else key,
         _fold(before) if before is not None else None,
         _fold(after) if after is not None else None,
         prev_lsn),
        2,
    )


def payload_crc(
    lsn: int,
    txn_id: int,
    kind_value: str,
    table: Any,
    key: Any,
    before: Any,
    after: Any,
    prev_lsn: int,
) -> int:
    """CRC32 over the canonical binary payload (the v2 checksum)."""
    return zlib.crc32(_marshal_dumps(
        (lsn, txn_id, kind_value, table,
         _fold(key) if key.__class__ in _FOLDABLE else key,
         _fold(before) if before is not None else None,
         _fold(after) if after is not None else None,
         prev_lsn),
        2,
    ))


def legacy_payload_crc(
    lsn: int,
    txn_id: int,
    kind_value: str,
    table: Any,
    key: Any,
    before: Any,
    after: Any,
    prev_lsn: int,
) -> int:
    """The pre-codec ``repr`` checksum, kept so records stamped before
    the binary codec (and archives restored from them) still verify."""
    payload = repr((lsn, txn_id, kind_value, table, key, before, after, prev_lsn))
    return zlib.crc32(payload.encode("utf-8"))


# -- wire format v2 (type-preserving) -----------------------------------------

def _encode_value(out: bytearray, value: Any, _type=type) -> None:
    t = _type(value)
    if t is int:
        out += b"i%d;" % value
    elif t is str:
        raw = value.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif t is float:
        out += b"F"
        out += _pack_double(value)
    elif value is None:
        out += b"N"
    elif t is bool:
        out += b"T" if value else b"f"
    elif t is tuple:
        out += b"U%d:" % len(value)
        for item in value:
            _encode_value(out, item)
    elif t is list:
        out += b"L%d:" % len(value)
        for item in value:
            _encode_value(out, item)
    elif t is bytes:
        out += b"y%d:" % len(value)
        out += value
    else:  # pragma: no cover - engine rows never carry other types
        raise TypeError(f"cannot encode {t.__name__}")


def _decode_value(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos:pos + 1]
    pos += 1
    if tag == b"i":
        end = data.index(b";", pos)
        return int(data[pos:end]), end + 1
    if tag == b"s":
        end = data.index(b":", pos)
        length = int(data[pos:end])
        start = end + 1
        return data[start:start + length].decode("utf-8"), start + length
    if tag == b"F":
        return _unpack_double(data, pos)[0], pos + 8
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"f":
        return False, pos
    if tag in (b"U", b"L"):
        end = data.index(b":", pos)
        count = int(data[pos:end])
        pos = end + 1
        items: List[Any] = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == b"U" else items), pos
    if tag == b"y":
        end = data.index(b":", pos)
        length = int(data[pos:end])
        start = end + 1
        return data[start:start + length], start + length
    raise ValueError(f"bad value tag {tag!r} at offset {pos - 1}")


def encode_record(record: Any) -> bytes:
    """Encode one :class:`~repro.engine.wal.LogRecord` in wire format v2."""
    kind_value = record.kind.value
    try:
        code = _KIND_TO_CODE[kind_value]
    except KeyError:  # pragma: no cover - new kinds must extend KIND_CODES
        raise ValueError(f"no kind code for {kind_value!r}") from None
    out = bytearray((CODEC_VERSION, code))
    out += _HEADER.pack(record.lsn, record.txn_id, record.prev_lsn, record.crc)
    _encode_value(out, record.table)
    _encode_value(out, record.key)
    _encode_value(out, record.before)
    _encode_value(out, record.after)
    return bytes(out)


def encode_record_legacy(record: Any) -> bytes:
    """Encode in the v1 (``repr``) format -- the pre-codec on-disk form."""
    payload = repr((
        record.lsn, record.txn_id, record.kind.value, record.table,
        record.key, record.before, record.after, record.prev_lsn, record.crc,
    ))
    return bytes((LEGACY_VERSION,)) + payload.encode("utf-8")


def decode_record(data: bytes) -> Any:
    """Decode either wire version back into a ``LogRecord``.

    Version 1 (legacy ``repr``) frames decode through
    ``ast.literal_eval`` -- slow, but they only appear when reading
    archives written before the binary codec.
    """
    from repro.engine.wal import LogKind, LogRecord  # local: avoid cycle

    if not data:
        raise ValueError("empty record frame")
    version = data[0]
    if version == CODEC_VERSION:
        code = data[1]
        try:
            kind = LogKind(KIND_CODES[code])
        except IndexError:
            raise ValueError(f"bad kind code {code}") from None
        lsn, txn_id, prev_lsn, crc = _HEADER.unpack_from(data, 2)
        pos = 2 + _HEADER.size
        table, pos = _decode_value(data, pos)
        key, pos = _decode_value(data, pos)
        before, pos = _decode_value(data, pos)
        after, pos = _decode_value(data, pos)
        return LogRecord(
            lsn=lsn, txn_id=txn_id, kind=kind, table=table, key=key,
            before=before, after=after, prev_lsn=prev_lsn, crc=crc,
        )
    if version == LEGACY_VERSION:
        fields = ast.literal_eval(data[1:].decode("utf-8"))
        lsn, txn_id, kind_value, table, key, before, after, prev_lsn, crc = fields
        return LogRecord(
            lsn=lsn, txn_id=txn_id, kind=LogKind(kind_value), table=table,
            key=key, before=before, after=after, prev_lsn=prev_lsn, crc=crc,
        )
    raise ValueError(f"unknown record codec version {version}")


def records_equivalent(a: Any, b: Any) -> bool:
    """Value-identity comparison of two records.

    Field-wise ``==`` is too strict once records round-trip through
    archives or wire frames (tuple vs list, ``1`` vs ``1.0``); two
    records are equivalent when their canonical payloads and stored
    CRCs match.
    """
    if a.crc != b.crc:
        return False
    return canonical_payload(
        a.lsn, a.txn_id, a.kind.value, a.table, a.key, a.before, a.after, a.prev_lsn
    ) == canonical_payload(
        b.lsn, b.txn_id, b.kind.value, b.table, b.key, b.before, b.after, b.prev_lsn
    )

"""Prepare-time statement compilation.

The executor used to re-derive everything per execution: re-pick the
access path, re-resolve every predicate value, and look up column
positions by name for every condition of every row.  For the OLTP hot
path (point UPDATE / point SELECT, thousands per second) that work is
identical on every call.

This module hoists it to prepare time.  A :class:`CompiledStatement`
is built once per :class:`~repro.engine.executor.Prepared` and holds:

* the access-path **shape** (``pk_point`` / ``index_eq`` /
  ``index_range`` / ``table_scan``) -- chosen from the statement shape
  alone, never from parameter values, so one compiled plan serves
  every execution of the SQL text;
* **value sources** ``(is_param, payload)`` for keys, range bounds,
  residual predicates, SET clauses and INSERT rows -- resolving one is
  a single indexed load at run time;
* **residual predicates** with column *indexes* (not names) and the
  operator function pre-fetched, so the row loop never touches the
  schema;
* precomputed projection/order/pk column indexes for SELECT.

What deliberately stays run-time: parameter values, the transaction's
isolation behaviour (``txn.uses_mvcc`` is checked per execution -- the
plan cache keys on SQL text only, and one compiled plan must serve
SERIALIZABLE and SNAPSHOT callers alike), and index *objects* (looked
up by name per execution so restores that rebuild tables don't leave
stale bindings).

Plans can go stale one way: ``CREATE INDEX`` after prepare.  Tables
carry a ``plan_epoch`` counter bumped on index creation; the executor
recompiles a statement whose epoch no longer matches.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.engine.errors import SqlError
from repro.engine.index import OrderedIndex
from repro.engine.sql import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    Value,
)
from repro.engine.types import DEFAULT

#: A value source: ``(is_param, payload)``.  Resolution is
#: ``params[payload] if is_param else payload`` -- inlined at every
#: use site rather than routed through a helper call.
Source = Tuple[bool, Any]


def _source(value: Value) -> Source:
    if value.kind == "literal":
        return (False, value.literal)
    if value.kind == "default":
        return (False, DEFAULT)
    return (True, value.param_index)


class CompiledAccess:
    """The compiled WHERE clause: shape, key/bound sources, residual."""

    __slots__ = ("shape", "index_name", "key_source", "key_sources",
                 "range_column", "range_ops", "residual")

    def __init__(self, shape: str, index_name: Optional[str]):
        self.shape = shape
        self.index_name = index_name
        #: source of a single-column key (pk_point, single-column index_eq)
        self.key_source: Optional[Source] = None
        #: sources of a composite index_eq key
        self.key_sources: Optional[Tuple[Source, ...]] = None
        self.range_column: Optional[str] = None
        #: ``(op, source)`` pairs on the range column
        self.range_ops: Optional[List[Tuple[str, Source]]] = None
        #: ``(col_idx, op, op_fn, source)`` for *every* WHERE condition --
        #: the residual re-checks the key predicates too, matching the
        #: interpreted executor (duplicate conditions must all hold).
        self.residual: Tuple[Tuple[int, str, Any, Source], ...] = ()


def compile_access(table, where) -> CompiledAccess:
    """Choose the access path from the statement shape.

    Mirrors the interpreted planner exactly -- same priority order,
    same last-equality-wins key semantics -- but resolves no parameter
    values: which column is bound decides the shape; *what* it is bound
    to stays a run-time source.
    """
    from repro.engine.executor import _OPS  # late: executor imports us too

    schema = table.schema
    residual = tuple(
        (schema.column_index(c.column), c.op, _OPS[c.op], _source(c.value))
        for c in where
    )
    eq_sources = {}
    for c in where:
        if c.op == "=":
            eq_sources[c.column] = _source(c.value)

    def _post_lookup(key_columns) -> tuple:
        """Residual minus the equality predicates the index lookup
        already enforces: a row returned for key value *v* has cell
        ``== v`` by the index's own hash/eq semantics, so re-checking
        ``col = <same source>`` is provably redundant.  Conditions
        bound to a *different* source (``pk = ? AND pk = 5``) stay."""
        return tuple(
            entry
            for entry, c in zip(residual, where)
            if not (
                c.op == "="
                and c.column in key_columns
                and _source(c.value) == eq_sources[c.column]
            )
        )

    if schema.primary_key in eq_sources:
        access = CompiledAccess("pk_point", table.primary_index.name)
        access.key_source = eq_sources[schema.primary_key]
        access.residual = _post_lookup((schema.primary_key,))
        return access
    for index in table.secondary_indexes.values():
        if all(column in eq_sources for column in index.columns):
            access = CompiledAccess("index_eq", index.name)
            if len(index.columns) == 1:
                access.key_source = eq_sources[index.columns[0]]
            else:
                access.key_sources = tuple(
                    eq_sources[column] for column in index.columns
                )
            access.residual = _post_lookup(index.columns)
            return access
    candidates = [(schema.primary_key, table.primary_index)]
    candidates += [
        (index.columns[0], index)
        for index in table.secondary_indexes.values()
        if isinstance(index, OrderedIndex) and len(index.columns) == 1
    ]
    for column, index in candidates:
        range_ops = [
            (c.op, _source(c.value))
            for c in where
            if c.column == column and c.op not in ("=", "<>")
        ]
        if range_ops:
            access = CompiledAccess("index_range", index.name)
            access.range_column = column
            access.range_ops = range_ops
            access.residual = residual
            return access
    access = CompiledAccess("table_scan", None)
    access.residual = residual
    return access


class CompiledStatement:
    """Everything about one statement that does not depend on params
    or transaction state, resolved once at prepare time."""

    __slots__ = (
        "kind", "access", "epoch", "pk_index",
        # select
        "star_columns", "proj_indexes", "proj_columns", "order_index",
        "has_group", "has_aggregate", "for_update", "order_by", "order_desc",
        "limit",
        # insert
        "row_sources",
        # update
        "set_program", "set_touches_keys",
    )

    def __init__(self, kind: str, epoch: int):
        self.kind = kind
        self.epoch = epoch
        self.access: Optional[CompiledAccess] = None
        self.pk_index = 0
        self.star_columns: Optional[Tuple[str, ...]] = None
        self.proj_indexes: Optional[Tuple[int, ...]] = None
        self.proj_columns: Optional[Tuple[str, ...]] = None
        self.order_index: Optional[int] = None
        self.has_group = False
        self.has_aggregate = False
        self.for_update = False
        self.order_by = None
        self.order_desc = False
        self.limit: Optional[int] = None
        self.row_sources: Optional[Tuple[Source, ...]] = None
        #: ``(target_idx, source, delta_idx, delta_sign, delta_column, column)``
        self.set_program: Optional[
            Tuple[Tuple[int, Source, Optional[int], int, Optional[str], Any], ...]
        ] = None
        #: True when a SET target is the primary key or any indexed
        #: column -- the executor then takes the slow path that
        #: re-validates uniqueness and maintains indexes.
        self.set_touches_keys = True


def compile_statement(table, statement) -> CompiledStatement:
    """Build the compiled form of a parsed statement against ``table``."""
    schema = table.schema
    epoch = table.plan_epoch

    if isinstance(statement, SelectStatement):
        compiled = CompiledStatement("select", epoch)
        compiled.access = compile_access(table, statement.where)
        compiled.pk_index = schema.primary_key_index
        compiled.for_update = statement.for_update
        compiled.has_group = statement.group_by is not None
        compiled.has_aggregate = bool(
            statement.items and statement.items[0].is_aggregate
        )
        compiled.order_by = statement.order_by
        compiled.order_desc = statement.order_desc
        compiled.limit = statement.limit
        if statement.order_by:
            compiled.order_index = schema.column_index(statement.order_by)
        if statement.star:
            compiled.star_columns = schema.column_names
        elif not compiled.has_group and not compiled.has_aggregate:
            compiled.proj_indexes = tuple(
                schema.column_index(item.column) for item in statement.items
            )
            compiled.proj_columns = tuple(
                item.column for item in statement.items
            )
        return compiled

    if isinstance(statement, InsertStatement):
        compiled = CompiledStatement("insert", epoch)
        if statement.columns:
            by_name = dict(zip(statement.columns, statement.values))
            sources: List[Source] = []
            for column in schema.columns:
                value = by_name.get(column.name)
                if value is not None:
                    sources.append(_source(value))
                elif column.autoincrement:
                    sources.append((False, DEFAULT))
                else:
                    sources.append((False, column.default))
            compiled.row_sources = tuple(sources)
        else:
            compiled.row_sources = tuple(
                _source(value) for value in statement.values
            )
        return compiled

    if isinstance(statement, UpdateStatement):
        compiled = CompiledStatement("update", epoch)
        compiled.access = compile_access(table, statement.where)
        compiled.set_program = tuple(
            (
                schema.column_index(clause.column),
                _source(clause.value),
                (schema.column_index(clause.delta_column)
                 if clause.delta_column is not None else None),
                clause.delta_sign,
                clause.delta_column,
                schema.columns[schema.column_index(clause.column)],
            )
            for clause in statement.sets
        )
        # An UPDATE whose SET targets miss every indexed column cannot
        # change a key, so the executor may skip uniqueness checks and
        # index maintenance.  CREATE INDEX after prepare bumps the
        # table's plan_epoch, forcing a recompile of this decision.
        # A DEFAULT source forces the slow path: its substitution rules
        # live in Schema.coerce_row.
        indexed = {schema.primary_key_index}
        for index in table.secondary_indexes.values():
            for column in index.columns:
                indexed.add(schema.column_index(column))
        compiled.set_touches_keys = any(
            target in indexed or (not source[0] and source[1] is DEFAULT)
            for target, source, *_rest in compiled.set_program
        )
        return compiled

    if isinstance(statement, DeleteStatement):
        compiled = CompiledStatement("delete", epoch)
        compiled.access = compile_access(table, statement.where)
        return compiled

    raise SqlError(f"unsupported statement type {type(statement).__name__}")


def resolve_residual(
    residual: Tuple[Tuple[int, str, Any, Source], ...],
    params: Sequence[Any],
) -> List[Tuple[int, Any, Any]]:
    """Bind parameter values into a compiled residual: ``(col_idx,
    op_fn, value)`` triples ready for the batched row filter."""
    return [
        (idx, fn, params[payload] if is_param else payload)
        for idx, _op, fn, (is_param, payload) in residual
    ]

"""Transactions and the transaction manager.

A :class:`Transaction` is a handle: the mutation logic lives in
:class:`repro.engine.database.Database`, which logs to the WAL and
locks through the lock manager.  Strict 2PL plus WAL-before-data gives
atomicity and durability; serialisability follows from 2PL.
"""

from __future__ import annotations

import enum
from typing import Optional, TYPE_CHECKING

from repro.engine.errors import TransactionAborted

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class IsolationLevel(enum.Enum):
    """Supported isolation levels.

    Two families share the engine:

    * **Lock-based** -- ``SERIALIZABLE`` is strict 2PL (S locks held to
      commit); ``READ_COMMITTED`` releases S locks immediately after
      each read, which is what the paper's OLTP workloads run under on
      PostgreSQL.
    * **MVCC** -- ``SNAPSHOT`` and ``REPEATABLE_READ`` capture a commit-
      LSN snapshot at ``BEGIN`` and read row versions without taking any
      locks; writes still lock and additionally fail with a retryable
      :class:`~repro.engine.errors.WriteConflictError` when another
      transaction committed a newer version first (first-updater-wins).
      As in PostgreSQL, ``REPEATABLE_READ`` is implemented as snapshot
      isolation, so the two MVCC levels behave identically.
    """

    READ_COMMITTED = "read committed"
    REPEATABLE_READ = "repeatable read"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"


#: Levels whose reads go through version chains instead of the lock manager.
MVCC_LEVELS = frozenset({IsolationLevel.SNAPSHOT, IsolationLevel.REPEATABLE_READ})


class TxnState(enum.Enum):
    ACTIVE = "active"
    #: 2PC phase one passed: changes durable, locks held, fate owned by
    #: the coordinator (commit and rollback both remain possible).
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work against a :class:`Database`."""

    __slots__ = (
        "_db", "txn_id", "isolation", "state", "first_lsn", "last_lsn",
        "reads", "writes", "start_s", "snapshot_lsn", "created_versions",
        "ended_versions", "gtid", "deadline",
    )

    def __init__(
        self,
        db: "Database",
        txn_id: int,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
    ):
        self._db = db
        self.txn_id = txn_id
        self.isolation = isolation
        self.state = TxnState.ACTIVE
        self.first_lsn = 0
        self.last_lsn = 0
        #: statement-level counters consumed by the cost model
        self.reads = 0
        self.writes = 0
        #: begin timestamp stamped by the database's observer (0.0 when off)
        self.start_s = 0.0
        #: commit-LSN snapshot captured at BEGIN for the MVCC levels
        #: (``None`` for the lock-based levels): versions committed at or
        #: below this LSN are visible, later commits are not.
        self.snapshot_lsn: Optional[int] = None
        #: row versions this transaction created / superseded, stamped
        #: with the commit LSN at commit time (engine-internal).
        self.created_versions: list = []
        self.ended_versions: list = []
        #: global transaction id when this local transaction is one
        #: participant branch of a cross-shard 2PC transaction
        self.gtid = None
        #: optional per-request deadline (duck-typed: anything with
        #: ``expired() -> bool``, normally :class:`repro.qos.deadline.
        #: Deadline`).  The engine checks it at its cancellation points
        #: -- lock wait, buffer miss, WAL append -- and rolls the
        #: transaction back when it has passed, so doomed work is
        #: abandoned early instead of holding locks.
        self.deadline = None

    @property
    def uses_mvcc(self) -> bool:
        return self.snapshot_lsn is not None

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> None:
        self._db._commit(self)

    def rollback(self) -> None:
        self._db._rollback(self)

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def ensure_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionAborted(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    # -- context manager: commit on success, roll back on error ------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        else:
            if self.is_active:
                self.rollback()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transaction {self.txn_id} {self.state.value}>"


class TransactionManager:
    """Assigns transaction ids and tracks active transactions."""

    def __init__(self, start_id: int = 1) -> None:
        if start_id < 1:
            raise ValueError("transaction ids start at 1")
        self._next_txn_id = start_id
        self.active: dict[int, Transaction] = {}
        self.committed = 0
        self.aborted = 0

    def begin(
        self, db: "Database", isolation: IsolationLevel
    ) -> Transaction:
        txn = Transaction(db, self._next_txn_id, isolation)
        self._next_txn_id += 1
        self.active[txn.txn_id] = txn
        return txn

    def finish(self, txn: Transaction, committed: bool) -> None:
        self.active.pop(txn.txn_id, None)
        if committed:
            self.committed += 1
        else:
            self.aborted += 1

    def oldest_active(self) -> Optional[Transaction]:
        if not self.active:
            return None
        return self.active[min(self.active)]

    def oldest_snapshot_lsn(self, default: int) -> int:
        """The GC horizon: the oldest snapshot any live transaction holds.

        Versions superseded at or before this LSN are invisible to every
        current and future snapshot and may be vacuumed.  ``default``
        (normally the WAL tail) applies when no MVCC transaction is live.
        """
        snapshots = [
            txn.snapshot_lsn
            for txn in self.active.values()
            if txn.snapshot_lsn is not None
        ]
        return min(snapshots) if snapshots else default

"""Exception hierarchy for the storage engine."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all storage-engine errors."""


class SchemaError(EngineError):
    """Schema definition or catalog misuse (unknown table/column, ...)."""


class SqlError(EngineError):
    """SQL that the engine's subset parser cannot understand."""


class DuplicateKeyError(EngineError):
    """Insert violates a primary-key or unique-index constraint."""


class TransactionAborted(EngineError):
    """The transaction was rolled back and cannot be used further."""


class LockTimeoutError(TransactionAborted):
    """A lock request waited longer than the configured timeout."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""

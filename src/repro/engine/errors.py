"""Exception hierarchy for the storage engine.

Every error carries a ``retryable`` class attribute: ``True`` means the
failure is transient (a lock timeout, a deadlock victim, a node that
vanished mid-request) and the *whole transaction* may safely be replayed
by a client; ``False`` means replaying the identical request would fail
identically (bad SQL, duplicate key).  The client resilience stack
(:mod:`repro.core.resilience`) drives its retry decisions off this flag
instead of matching exception types ad hoc.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all storage-engine errors."""

    #: May a client safely retry the enclosing transaction?
    retryable: bool = False


class SchemaError(EngineError):
    """Schema definition or catalog misuse (unknown table/column, ...)."""


class SqlError(EngineError):
    """SQL that the engine's subset parser cannot understand."""


class DuplicateKeyError(EngineError):
    """Insert violates a primary-key or unique-index constraint."""


class WalCorruptionError(EngineError):
    """A WAL record failed its CRC check outside recovery.

    Restart recovery never raises this -- it truncates the log at the
    first corrupt record instead -- but strict readers (log shipping
    verifiers, audits) surface corruption as an error.
    """


class TransactionAborted(EngineError):
    """The transaction was rolled back and cannot be used further."""

    retryable = True


class LockTimeoutError(TransactionAborted):
    """A lock request waited longer than the configured timeout."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class WriteConflictError(TransactionAborted):
    """First-updater-wins: a snapshot transaction tried to overwrite a
    row version committed after its snapshot was taken.

    Raised only under the MVCC isolation levels (``SNAPSHOT`` and
    ``REPEATABLE_READ``).  Retryable: a fresh attempt takes a fresh
    snapshot that includes the conflicting commit.
    """


class OverloadError(EngineError):
    """The admission controller shed this request (queue full or the
    adaptive concurrency limit is saturated).

    Retryable, but clients should consult their retry *budget* before
    replaying: unbudgeted retries against an overloaded server are
    exactly the amplification admission control exists to prevent.
    ``retry_after_s`` is the server's backoff hint (0 when unknown).
    """

    retryable = True

    def __init__(self, message: str = "overloaded", retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(EngineError):
    """The request's deadline expired while work was still in flight.

    Raised at the engine's cancellation points (lock wait, buffer miss,
    WAL append) after the transaction has been rolled back.  *Not*
    retryable: the client's deadline has passed, so replaying the work
    cannot produce an answer anyone is still waiting for.
    """

    retryable = False


class SimulatedCrash(EngineError):
    """A fault-injection crash point fired; the node is gone mid-request.

    Retryable: the request may be replayed against the recovered node or
    a healthy peer once fail-over completes.
    """

    retryable = True


class NodeUnavailableError(EngineError):
    """The target node is unreachable (partition, crash, stopped)."""

    retryable = True


class ShardUnavailableError(NodeUnavailableError):
    """A shard of the fleet is down, demoted, or mid-failover.

    Raised by the fleet facade instead of leaking the engine's internal
    :class:`SimulatedCrash` when a statement lands on a dead shard.
    Retryable -- once failover promotes the standby (or recovery revives
    the primary) the same statement succeeds -- and, as a
    :class:`NodeUnavailableError`, it counts against the client's
    circuit breaker for the endpoint.
    """

    def __init__(self, message: str, shard_id: int | None = None):
        super().__init__(message)
        self.shard_id = shard_id


class RequestTimeout(EngineError):
    """The per-request timeout budget elapsed before a response."""

    retryable = True

"""Statement planning and execution.

A prepared statement is **compiled** once (see
:mod:`repro.engine.compiler`): the access-path shape, residual
predicates with resolved column indexes, SET programs and INSERT row
sources are all derived from the statement shape at prepare time, so
per-execution work is reduced to binding parameter values and running
the row loop.  The access shapes:

* equality on the primary key        -> point lookup
* equalities covering a secondary    -> index lookup + residual filter
* range predicate on an ordered key  -> index range scan
* otherwise                          -> full scan

The row loop is batched: candidates are materialised once per index
probe or scan and each residual predicate filters the whole batch in
one comprehension pass instead of a per-row closure call.

Reads take shared locks (exclusive under ``FOR UPDATE``), writes take
exclusive locks.  Under READ COMMITTED shared locks are released at the
end of the statement; under SERIALIZABLE they are held to commit
(strict 2PL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.engine.compiler import (
    CompiledStatement,
    compile_statement,
    resolve_residual,
)
from repro.engine.errors import SchemaError, SqlError
from repro.engine.locks import LockMode
from repro.engine.sql import (
    Condition,
    DeleteStatement,
    InsertStatement,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
    Value,
    count_params,
    parse,
)
from repro.engine.index import OrderedIndex
from repro.engine.table import Table
from repro.engine.types import DEFAULT
from repro.engine.txn import IsolationLevel, Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database

_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class AccessPlan:
    """The access path chosen for a statement's WHERE clause.

    ``kind`` is one of ``pk_point``, ``index_eq``, ``index_range`` or
    ``table_scan``; ``bound`` carries the resolved predicates for the
    residual filter.  Exposed through ``Database.explain``.
    """

    kind: str
    index_name: Optional[str]
    bound: List[Tuple[str, str, Any]]
    key: Any = None
    bounds: Optional[Tuple[Any, bool, Any, bool]] = None

    def describe(self) -> str:
        if self.kind == "pk_point":
            return f"primary-key lookup via {self.index_name} (key={self.key!r})"
        if self.kind == "index_eq":
            return f"index lookup via {self.index_name} (key={self.key!r})"
        if self.kind == "index_range":
            low, incl_low, high, incl_high = self.bounds
            left = "[" if incl_low else "("
            right = "]" if incl_high else ")"
            return (f"index range scan via {self.index_name} "
                    f"{left}{low!r}, {high!r}{right}")
        return "full table scan"


@dataclass(slots=True)
class ResultSet:
    """Rows produced by a statement plus the affected-row count."""

    columns: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]
    rowcount: int

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class Prepared:
    """A parsed statement bound to a database catalog."""

    def __init__(self, db: "Database", sql: str):
        self.sql = sql
        self.statement: Statement = parse(sql)
        self.param_count = count_params(self.statement)
        self.table: Table = db.table(self.statement.table)
        schema = self.table.schema
        # Validate referenced columns eagerly so typos fail at prepare time.
        for condition in getattr(self.statement, "where", ()):
            schema.column_index(condition.column)
        if isinstance(self.statement, SelectStatement):
            for item in self.statement.items:
                if item.column is not None:
                    schema.column_index(item.column)
            if self.statement.order_by:
                schema.column_index(self.statement.order_by)
        elif isinstance(self.statement, InsertStatement):
            for column in self.statement.columns:
                schema.column_index(column)
            expected = len(self.statement.columns) or len(schema.columns)
            if len(self.statement.values) != expected:
                raise SqlError(
                    f"INSERT into {schema.table} expects {expected} values, "
                    f"got {len(self.statement.values)}"
                )
        elif isinstance(self.statement, UpdateStatement):
            for clause in self.statement.sets:
                schema.column_index(clause.column)
                if clause.delta_column is not None:
                    schema.column_index(clause.delta_column)
        self.db = db
        self.compiled = compile_statement(self.table, self.statement)
        #: route-plan cache slot for the shard router (set lazily there)
        self.route_plan = None

    def recompile(self):
        """Re-derive the compiled plan (the index set changed)."""
        self.compiled = compile_statement(self.table, self.statement)
        return self.compiled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Prepared {self.sql!r}>"


def _resolve(value: Value, params: Sequence[Any]) -> Any:
    if value.kind == "literal":
        return value.literal
    if value.kind == "default":
        return DEFAULT
    if value.param_index >= len(params):
        raise SqlError(
            f"statement needs parameter {value.param_index + 1}, got {len(params)}"
        )
    return params[value.param_index]


class Executor:
    """Executes prepared statements inside transactions."""

    def __init__(self, db: "Database"):
        self._db = db

    def execute(
        self, prepared: Prepared, params: Sequence[Any], txn: Transaction
    ) -> ResultSet:
        txn.ensure_active()
        if prepared.param_count != len(params):
            raise SqlError(
                f"{prepared.sql!r} expects {prepared.param_count} parameters, "
                f"got {len(params)}"
            )
        compiled = prepared.compiled
        table = prepared.table
        if compiled.epoch != table.plan_epoch:
            # An index was created after this statement was prepared;
            # the cached plan may no longer be the best (or even refer
            # to the right access path).
            compiled = prepared.recompile()
        kind = compiled.kind
        if kind == "select":
            return self._select(prepared, compiled, params, txn)
        if kind == "update":
            return self._update(prepared, compiled, params, txn)
        if kind == "insert":
            return self._insert(prepared, compiled, params, txn)
        return self._delete(prepared, compiled, params, txn)

    # -- planning and row matching -----------------------------------------------

    @staticmethod
    def _merge_bound(op: str, value, column: str, merged):
        """Fold one resolved range predicate into ``(low, incl_low,
        high, incl_high)``, with a typed comparison guard.

        A NULL bound or a bound whose type cannot be ordered against an
        earlier bound used to escape as a bare ``TypeError``; both are
        statement errors and surface as :class:`SqlError`.
        """
        low, incl_low, high, incl_high = merged
        if value is None:
            raise SqlError(
                f"range predicate on {column} compares against NULL; "
                f"use an equality or drop the bound"
            )
        try:
            if op in (">", ">="):
                if low is None or value > low or (value == low and op == ">"):
                    low, incl_low = value, op == ">="
            else:  # < or <=
                if high is None or value < high or (value == high and op == "<"):
                    high, incl_high = value, op == "<="
        except TypeError:
            other = low if op in (">", ">=") else high
            raise SqlError(
                f"range predicates on {column} mix incomparable types "
                f"{type(value).__name__} and {type(other).__name__}"
            ) from None
        return low, incl_low, high, incl_high

    @classmethod
    def _range_bounds(cls, bound, column: str):
        """(low, incl_low, high, incl_high) from the range predicates on
        ``column``, or ``None`` when there are none."""
        merged = (None, True, None, True)
        found = False
        for col, op, value in bound:
            if col != column or op in ("=", "<>"):
                continue
            found = True
            merged = cls._merge_bound(op, value, column, merged)
        return merged if found else None

    @classmethod
    def _resolve_bounds(cls, access, params):
        """Bind params into a compiled range access's bounds."""
        merged = (None, True, None, True)
        column = access.range_column
        for op, (is_param, payload) in access.range_ops:
            value = params[payload] if is_param else payload
            merged = cls._merge_bound(op, value, column, merged)
        return merged

    def choose_plan(
        self,
        table: Table,
        where: Tuple[Condition, ...],
        params: Sequence[Any],
    ) -> AccessPlan:
        """Pick the cheapest access path for ``where``.

        Priority: primary-key point lookup, then an equality-covered
        secondary index, then an ordered-index range scan, then a full
        table scan.
        """
        schema = table.schema
        bound = [
            (condition.column, condition.op, _resolve(condition.value, params))
            for condition in where
        ]
        equalities = {column: value for column, op, value in bound if op == "="}

        if schema.primary_key in equalities:
            return AccessPlan("pk_point", table.primary_index.name, bound,
                              key=equalities[schema.primary_key])
        for index in table.secondary_indexes.values():
            if all(column in equalities for column in index.columns):
                if len(index.columns) == 1:
                    key = equalities[index.columns[0]]
                else:
                    key = tuple(equalities[column] for column in index.columns)
                return AccessPlan("index_eq", index.name, bound, key=key)
        # range scan on the primary key or an ordered secondary index
        candidates = [(schema.primary_key, table.primary_index)]
        candidates += [
            (index.columns[0], index)
            for index in table.secondary_indexes.values()
            if isinstance(index, OrderedIndex) and len(index.columns) == 1
        ]
        for column, index in candidates:
            bounds = self._range_bounds(bound, column)
            if bounds is not None:
                return AccessPlan("index_range", index.name, bound, bounds=bounds)
        return AccessPlan("table_scan", None, bound)

    @staticmethod
    def _filter_batch(pairs, residual):
        """Apply each resolved residual predicate to the whole candidate
        batch in one comprehension pass (no per-row closure calls).

        A predicate comparing incomparable types is a statement error,
        not an internal crash: the bare ``TypeError`` becomes
        :class:`SqlError`.
        """
        try:
            for idx, fn, value in residual:
                pairs = [
                    pair for pair in pairs
                    if (cell := pair[1][idx]) is not None and fn(cell, value)
                ]
        except TypeError as exc:
            raise SqlError(f"predicate comparison failed: {exc}") from None
        return pairs

    @staticmethod
    def _row_passes(row, residual):
        """Residual check for a single point-looked-up row."""
        try:
            for idx, fn, value in residual:
                cell = row[idx]
                if cell is None or not fn(cell, value):
                    return False
        except TypeError as exc:
            raise SqlError(f"predicate comparison failed: {exc}") from None
        return True

    def _match_rows(
        self,
        table: Table,
        access,
        params: Sequence[Any],
    ) -> List[Tuple[Any, Tuple[Any, ...]]]:
        """Return (rid, row) pairs satisfying the compiled access path."""
        shape = access.shape
        if shape == "pk_point":
            is_param, payload = access.key_source
            rid = table.find_by_key(params[payload] if is_param else payload)
            if rid is None:
                return []
            row = table.read_row(rid)
            raw = access.residual
            if raw and not self._row_passes(
                row, resolve_residual(raw, params)
            ):
                return []
            return [(rid, row)]
        residual = resolve_residual(access.residual, params)
        if shape == "index_eq":
            index = table.index_for_name(access.index_name)
            if access.key_source is not None:
                is_param, payload = access.key_source
                key = params[payload] if is_param else payload
            else:
                key = tuple(
                    params[payload] if is_param else payload
                    for is_param, payload in access.key_sources
                )
            read = table.read_row
            pairs = [(rid, read(rid)) for rid in index.lookup(key)]
        elif shape == "index_range":
            low, incl_low, high, incl_high = self._resolve_bounds(access, params)
            index = table.index_for_name(access.index_name)
            read = table.read_row
            pairs = [
                (rid, read(rid))
                for _key, rid in index.range(low, high, incl_low, incl_high)
            ]
        else:
            pairs = list(table.scan())
        return self._filter_batch(pairs, residual)

    def _match_rows_snapshot(
        self,
        table: Table,
        access,
        params: Sequence[Any],
        txn: Transaction,
    ) -> List[Tuple[Any, Tuple[Any, ...]]]:
        """Visibility-checked (rid, row) pairs for an MVCC read: no locks.

        Point lookups resolve through the key's version chain; every
        other plan goes through a visibility-checked scan, because
        secondary indexes track only the current heap and may miss rows
        the snapshot still sees (updated or deleted after it was taken).
        """
        if access.shape == "pk_point":
            is_param, payload = access.key_source
            key = params[payload] if is_param else payload
            row = table.visible_by_key(key, txn.snapshot_lsn, txn.txn_id)
            if row is None:
                return []
            raw = access.residual
            if raw and not self._row_passes(
                row, resolve_residual(raw, params)
            ):
                return []
            return [(None, row)]
        residual = resolve_residual(access.residual, params)
        pairs = list(table.snapshot_scan(txn.snapshot_lsn, txn.txn_id))
        return self._filter_batch(pairs, residual)

    # -- SELECT ----------------------------------------------------------------

    def _select(
        self,
        prepared: Prepared,
        compiled: CompiledStatement,
        params: Sequence[Any],
        txn: Transaction,
    ) -> ResultSet:
        table = prepared.table
        pk_index = compiled.pk_index
        shared_keys: List[Any] = []
        snapshot_read = txn.uses_mvcc and not compiled.for_update
        if snapshot_read:
            # Snapshot read: resolve versions, take no locks at all.
            matches = self._match_rows_snapshot(
                table, compiled.access, params, txn
            )
            if self._db._c_mvcc is not None:
                self._db._c_mvcc["snapshot_reads"].value += 1.0
        else:
            # Current read (lock-based levels, or FOR UPDATE under any
            # level, which needs the latest committed image plus a lock).
            matches = self._match_rows(table, compiled.access, params)
            if compiled.for_update:
                # FOR UPDATE declares write intent over the whole
                # candidate set, before ordering -- the rows that lose
                # the LIMIT cut must not change under the winner.
                for _rid, row in matches:
                    self._db._lock_row(
                        txn, table.name, row[pk_index], LockMode.EXCLUSIVE,
                    )
        # Row-level ORDER BY / LIMIT only apply to ungrouped selects;
        # grouped output is ordered by the group key.  Both run before
        # the shared locks are taken: a plain LIMIT-1 range read must
        # lock one row, not the whole candidate set.
        if not compiled.has_group:
            if compiled.order_index is not None:
                matches = self._order_matches(
                    matches, compiled.order_index, compiled.order_desc
                )
            if compiled.limit is not None:
                matches = matches[: compiled.limit]
        if not snapshot_read and not compiled.for_update:
            for _rid, row in matches:
                key = row[pk_index]
                self._db._lock_row(txn, table.name, key, LockMode.SHARED)
                shared_keys.append(key)
        rows = [row for _rid, row in matches]
        txn.reads += len(rows)
        if compiled.has_group:
            result = self._grouped(table.schema, prepared.statement, rows)
        elif compiled.has_aggregate:
            result = self._aggregate(table.schema, prepared.statement, rows)
        elif compiled.star_columns is not None:
            result = ResultSet(compiled.star_columns, rows, len(rows))
        else:
            indexes = compiled.proj_indexes
            projected = [tuple(row[i] for i in indexes) for row in rows]
            result = ResultSet(compiled.proj_columns, projected, len(projected))
        if txn.isolation is IsolationLevel.READ_COMMITTED:
            for key in shared_keys:
                self._db._unlock_row(txn, table.name, key)
        return result

    @staticmethod
    def _order_matches(matches, order_index: int, desc: bool):
        """ORDER BY with NULLS LAST semantics, either direction.

        SQL sorts NULLs apart from values; Python would raise comparing
        ``None`` against them, so the absent rows are split out and
        appended after the sorted present ones (stable within each part).
        """
        present = [m for m in matches if m[1][order_index] is not None]
        absent = [m for m in matches if m[1][order_index] is None]
        present.sort(key=lambda m: m[1][order_index], reverse=desc)
        return present + absent

    @staticmethod
    def _aggregate_cell(schema, item: SelectItem, rows):
        """Evaluate one aggregate select-item over ``rows``."""
        if item.aggregate == "COUNT" and item.column is None:
            return len(rows), "COUNT(*)"
        index = schema.column_index(item.column)
        cells = [row[index] for row in rows if row[index] is not None]
        if item.aggregate == "COUNT":
            value = len(set(cells)) if item.distinct else len(cells)
        elif item.aggregate == "SUM":
            value = sum(cells) if cells else None
        elif item.aggregate == "AVG":
            value = sum(cells) / len(cells) if cells else None
        elif item.aggregate == "MIN":
            value = min(cells) if cells else None
        elif item.aggregate == "MAX":
            value = max(cells) if cells else None
        else:  # pragma: no cover - parser rejects others
            raise SqlError(f"unknown aggregate {item.aggregate}")
        label = "DISTINCT " + item.column if item.distinct else item.column
        return value, f"{item.aggregate}({label})"

    @classmethod
    def _aggregate(cls, schema, statement: SelectStatement, rows) -> ResultSet:
        outputs = []
        names = []
        for item in statement.items:
            if not item.is_aggregate:
                raise SqlError("cannot mix aggregates and plain columns")
            value, name = cls._aggregate_cell(schema, item, rows)
            outputs.append(value)
            names.append(name)
        return ResultSet(tuple(names), [tuple(outputs)], 1)

    @classmethod
    def _grouped(cls, schema, statement: SelectStatement, rows) -> ResultSet:
        """GROUP BY one column; plain select items must be that column."""
        if statement.star:
            raise SqlError("SELECT * is not valid with GROUP BY")
        group_index = schema.column_index(statement.group_by)
        for item in statement.items:
            if not item.is_aggregate and item.column != statement.group_by:
                raise SqlError(
                    f"column {item.column} must appear in GROUP BY or an aggregate"
                )
        groups: dict = {}
        for row in rows:
            groups.setdefault(row[group_index], []).append(row)
        names = []
        out_rows = []
        for key in sorted(groups, key=lambda value: (value is None, value)):
            cells = []
            names = []
            for item in statement.items:
                if item.is_aggregate:
                    value, name = cls._aggregate_cell(schema, item, groups[key])
                else:
                    value, name = key, item.column
                cells.append(value)
                names.append(name)
            out_rows.append(tuple(cells))
        return ResultSet(tuple(names), out_rows, len(out_rows))

    # -- INSERT ----------------------------------------------------------------

    def _insert(
        self,
        prepared: Prepared,
        compiled: CompiledStatement,
        params: Sequence[Any],
        txn: Transaction,
    ) -> ResultSet:
        provided = [
            params[payload] if is_param else payload
            for is_param, payload in compiled.row_sources
        ]
        self._db._insert(txn, prepared.table, provided)
        return ResultSet((), [], 1)

    # -- UPDATE ----------------------------------------------------------------

    def _update(
        self,
        prepared: Prepared,
        compiled: CompiledStatement,
        params: Sequence[Any],
        txn: Transaction,
    ) -> ResultSet:
        table = prepared.table
        matches = self._match_rows(table, compiled.access, params)
        program = compiled.set_program
        db_update = self._db._update
        # Narrow updates (no SET target is the primary key or any
        # indexed column) coerce just the assigned cells here and skip
        # the full-row re-validation, uniqueness checks and index
        # maintenance downstream -- the unchanged cells came out of the
        # table already coerced.
        fast = not compiled.set_touches_keys
        schema_name = table.schema.table
        updated = 0
        for rid, row in matches:
            new_row = list(row)
            for target, (is_param, payload), delta_idx, sign, delta_col, column in program:
                operand = params[payload] if is_param else payload
                if delta_idx is not None:
                    base = row[delta_idx]
                    if base is None:
                        raise SchemaError(
                            f"{table.name}.{delta_col} is NULL in arithmetic"
                        )
                    operand = base + sign * operand
                if fast:
                    operand = column.type.coerce(operand)
                    if operand is None and not column.nullable:
                        raise SchemaError(
                            f"column {schema_name}.{column.name} is NOT NULL"
                        )
                new_row[target] = operand
            db_update(txn, table, rid, row, tuple(new_row), fast)
            updated += 1
        return ResultSet((), [], updated)

    # -- DELETE ----------------------------------------------------------------

    def _delete(
        self,
        prepared: Prepared,
        compiled: CompiledStatement,
        params: Sequence[Any],
        txn: Transaction,
    ) -> ResultSet:
        table = prepared.table
        matches = self._match_rows(table, compiled.access, params)
        for rid, row in matches:
            self._db._delete(txn, table, rid, row)
        return ResultSet((), [], len(matches))

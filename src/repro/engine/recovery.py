"""Crash recovery and replica log replay.

Two consumers of the WAL live here:

* :func:`recover` -- ARIES-style restart recovery for the primary:
  analysis over the retained log, redo of every data record after the
  checkpoint, then undo of loser transactions in reverse LSN order.
  Checkpoints are quiesced (taken with no active transactions), so
  loser records never precede the checkpoint.
* :class:`ReplicaApplier` -- applies the committed-transaction record
  stream to a read replica, tracking the applied LSN.  The cloud layer
  decides *when* records arrive (network and replay-parallelism
  timing); this class guarantees *what* the replica state is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, TYPE_CHECKING

from repro.engine.errors import EngineError
from repro.engine.table import RowVersion, Table
from repro.engine.wal import DATA_KINDS, LogKind, LogRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


@dataclass
class RecoveryReport:
    """What a restart recovery pass did."""

    checkpoint_lsn: int = 0
    records_scanned: int = 0
    records_redone: int = 0
    records_undone: int = 0
    winners: Set[int] = field(default_factory=set)
    losers: Set[int] = field(default_factory=set)
    #: prepared transactions with no local COMMIT/ABORT/DECISION: their
    #: changes are redone but neither undone nor committed; the mapping
    #: is local txn id -> global transaction id.  The fleet-level pass
    #: (:meth:`repro.shard.fleet.ShardedDatabase.recover`) resolves them
    #: against the DECISION records of every participant.
    in_doubt: Dict[int, object] = field(default_factory=dict)
    #: first LSN whose CRC failed (None when the tail was intact)
    corrupt_from_lsn: Optional[int] = None
    #: records dropped when the corrupt tail was truncated
    records_discarded: int = 0


def _chain_base(table: Table, key, before) -> None:
    """Capture the committed pre-image of a chainless key as an
    always-visible base version (mirrors ``Database._chain_base``): a
    snapshot live while a replica batch applies must keep seeing it."""
    if table.versions.chain(key) is None:
        table.versions.append(key, RowVersion(before, begin_lsn=0))


def _chain_end(table: Table, key, lsn: int) -> None:
    head = table.versions.newest(key)
    if head is not None and head.end_txn is None and head.end_lsn is None:
        head.end_lsn = lsn


def _chain_unend(table: Table, key, record: LogRecord) -> None:
    """Reverse ``_chain_end`` / ``Database._chain_supersede`` for this
    record, whether the end marker is an uncommitted txn mark (live
    rollback) or a redo-stamped LSN (loser undo after a crash)."""
    head = table.versions.newest(key)
    if head is not None and (
        head.end_txn == record.txn_id or head.end_lsn == record.lsn
    ):
        head.end_txn = None
        head.end_lsn = None


def _apply_redo(db: "Database", record: LogRecord) -> None:
    """Physically re-apply one data record (exact replay after snapshot).

    Version chains are rebuilt alongside the heap, stamped with the
    record's own (primary) LSN: on a replica this is what lets snapshot
    reads order shipped commits against ``snapshot_floor``, and after a
    crash every later snapshot sees the replayed history as committed.
    """
    table = db.table(record.table)
    if record.kind is LogKind.INSERT:
        table.insert_row(record.after)
        table.versions.append(
            record.key, RowVersion(record.after, begin_lsn=record.lsn)
        )
    elif record.kind is LogKind.UPDATE:
        rid = table.find_by_key(record.key)
        if rid is None:
            raise EngineError(f"redo UPDATE: key {record.key!r} missing in {record.table}")
        table.update_row(rid, record.after)
        _chain_base(table, record.key, record.before)
        _chain_end(table, record.key, record.lsn)
        table.versions.append(
            record.after[table.schema.primary_key_index],
            RowVersion(record.after, begin_lsn=record.lsn),
        )
    elif record.kind is LogKind.DELETE:
        rid = table.find_by_key(record.key)
        if rid is None:
            raise EngineError(f"redo DELETE: key {record.key!r} missing in {record.table}")
        table.delete_row(rid)
        _chain_base(table, record.key, record.before)
        _chain_end(table, record.key, record.lsn)
    else:  # pragma: no cover - callers filter to data kinds
        raise EngineError(f"cannot redo record kind {record.kind}")


def _apply_undo(db: "Database", record: LogRecord) -> None:
    """Logically reverse one data record (live rollback and loser undo).

    Chain maintenance mirrors the forward path: drop the version the
    record created, clear the end marker it set on the predecessor.
    """
    table = db.table(record.table)
    if record.kind is LogKind.INSERT:
        key = record.after[table.schema.primary_key_index]
        rid = table.find_by_key(key)
        if rid is None:
            raise EngineError(f"undo INSERT: key {key!r} missing in {record.table}")
        table.delete_row(rid)
        table.versions.remove_newest(key)
    elif record.kind is LogKind.UPDATE:
        new_key = record.after[table.schema.primary_key_index]
        rid = table.find_by_key(new_key)
        if rid is None:
            raise EngineError(f"undo UPDATE: key {new_key!r} missing in {record.table}")
        table.update_row(rid, record.before)
        table.versions.remove_newest(new_key)
        _chain_unend(table, record.key, record)
    elif record.kind is LogKind.DELETE:
        table.insert_row(record.before)
        _chain_unend(table, record.key, record)
    else:  # pragma: no cover
        raise EngineError(f"cannot undo record kind {record.kind}")


def recover(db: "Database") -> RecoveryReport:
    """Run analysis/redo/undo over the retained log after a crash.

    The database must already be reset to its last checkpoint image
    (``Database.crash`` does that); this function replays the log tail.

    Corruption tolerance: the log tail is CRC-verified first, and the
    log is truncated at the first corrupt record (torn write, bit flip).
    Everything after that point is discarded -- a transaction whose
    COMMIT lies beyond the corruption never committed, so exactly the
    committed prefix survives.
    """
    obs = db.obs
    report = RecoveryReport(checkpoint_lsn=db.checkpoint_lsn)
    start_lsn = db.checkpoint_lsn + 1
    with obs.span("recovery", "engine", track="engine") as root:
        corrupt_lsn = db.wal.first_corrupt_lsn(start_lsn)
        if corrupt_lsn is not None:
            report.corrupt_from_lsn = corrupt_lsn
            report.records_discarded = db.wal.discard_from(corrupt_lsn)
            obs.count("engine.recovery.discarded", report.records_discarded)
            obs.event(
                "wal.corruption", "engine", track="engine",
                attrs={"lsn": corrupt_lsn, "discarded": report.records_discarded},
            )
        records = [record for record in db.wal.records_from(start_lsn)]
        report.records_scanned = len(records)

        # Analysis: who committed, who aborted, who was in flight, and
        # which prepared branches are in doubt?
        seen: Set[int] = set()
        aborted: Set[int] = set()
        prepared: Dict[int, object] = {}
        with obs.span("recovery.analysis", "engine", track="engine"):
            for record in records:
                if record.kind in DATA_KINDS or record.kind is LogKind.BEGIN:
                    seen.add(record.txn_id)
                elif record.kind is LogKind.COMMIT:
                    report.winners.add(record.txn_id)
                elif record.kind is LogKind.ABORT:
                    aborted.add(record.txn_id)
                elif record.kind is LogKind.PREPARE:
                    prepared[record.txn_id] = record.key
                elif record.kind is LogKind.DECISION:
                    # a durable local decision is as good as COMMIT: the
                    # coordinator had already decided before the crash
                    report.winners.add(record.txn_id)
            report.in_doubt = {
                txn_id: gtid
                for txn_id, gtid in prepared.items()
                if txn_id not in report.winners and txn_id not in aborted
            }
            # In-doubt transactions are neither winners nor losers: redo
            # them (locks are gone, but so is everyone who could look),
            # never undo them -- the fleet pass decides their fate.
            report.losers = (
                seen - report.winners - aborted - set(report.in_doubt)
            )

        # Redo: replay history (repeating history, ARIES-style).  Aborted
        # transactions are skipped entirely: their rollback ran synchronously
        # before the crash and compensations are not logged (no CLRs), so
        # neither their changes nor their undo exist in the checkpoint image.
        with obs.span("recovery.redo", "engine", track="engine"):
            for record in records:
                if record.kind in DATA_KINDS and record.txn_id not in aborted:
                    _apply_redo(db, record)
                    report.records_redone += 1

        # Undo losers in reverse LSN order.
        with obs.span("recovery.undo", "engine", track="engine"):
            for record in reversed(records):
                if record.kind in DATA_KINDS and record.txn_id in report.losers:
                    _apply_undo(db, record)
                    report.records_undone += 1
        root.set("scanned", report.records_scanned)
        root.set("redone", report.records_redone)
        root.set("undone", report.records_undone)
        if report.in_doubt:
            root.set("in_doubt", len(report.in_doubt))
            obs.count("engine.recovery.in_doubt", len(report.in_doubt))
        obs.count("engine.recovery.runs")
        obs.count("engine.recovery.redone", report.records_redone)
        obs.count("engine.recovery.undone", report.records_undone)
    return report


class ReplicaApplier:
    """Applies committed-transaction batches to a replica database."""

    def __init__(self, replica: "Database"):
        self.replica = replica
        self.applied_lsn = 0
        self.records_applied = 0

    def apply_batch(self, records: Iterable[LogRecord]) -> int:
        """Apply one committed transaction's data records, in order."""
        applied = 0
        for record in records:
            if record.kind not in DATA_KINDS:
                if record.lsn > self.applied_lsn:
                    self.applied_lsn = record.lsn
                continue
            if record.lsn <= self.applied_lsn:
                continue  # idempotent re-delivery
            _apply_redo(self.replica, record)
            self.applied_lsn = record.lsn
            applied += 1
        self.records_applied += applied
        # Shipped versions carry primary LSNs, far ahead of the replica's
        # own near-empty WAL: raise the snapshot floor so replica
        # snapshots taken from here on see everything applied so far.
        if self.applied_lsn > self.replica.snapshot_floor:
            self.replica.snapshot_floor = self.applied_lsn
        return applied

    def lag_behind(self, primary_lsn: int) -> int:
        """How many LSNs the replica trails the primary."""
        return max(0, primary_lsn - self.applied_lsn)

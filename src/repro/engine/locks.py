"""Row-level strict two-phase locking with deadlock detection.

Lock keys are ``(table, primary_key)`` pairs.  Shared locks are
compatible with shared locks; exclusive locks conflict with everything
except locks held by the same transaction (re-entrancy and the S->X
upgrade of the sole holder are supported).

The engine executes transactions cooperatively (no OS threads), so a
conflicting request does not physically block.  ``acquire`` returns
:data:`LockOutcome.GRANTED` or :data:`LockOutcome.BLOCKED`; a blocked
request is queued and the wait-for graph is checked -- if the wait
would close a cycle, the requester is chosen as the deadlock victim and
:class:`DeadlockError` is raised instead of queuing.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.engine.errors import DeadlockError, EngineError
from repro.obs import NULL_OBSERVER, Observer

LockKey = Tuple[str, Any]


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockOutcome(enum.Enum):
    GRANTED = "granted"
    BLOCKED = "blocked"


class _Lock:
    """State of one lockable row."""

    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: Dict[int, LockMode] = {}
        self.queue: Deque[Tuple[int, LockMode]] = deque()

    def compatible(self, txn_id: int, mode: LockMode) -> bool:
        others = [held for holder, held in self.holders.items() if holder != txn_id]
        if mode is LockMode.SHARED:
            return all(held is LockMode.SHARED for held in others)
        return not others


class LockManager:
    """All row locks of one database."""

    def __init__(self, observer: Optional[Observer] = None) -> None:
        self.obs = observer or NULL_OBSERVER
        # Pre-resolved metrics: acquire/release run per row access, so
        # the enabled path bumps counters directly instead of paying a
        # registry lookup per lock operation.
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._c_granted = metrics.counter("engine.lock.granted")
            self._c_blocked = metrics.counter("engine.lock.blocked")
            self._h_wait = metrics.histogram("engine.lock.wait_s")
            self._h_hold = metrics.histogram("engine.lock.hold_s")
        else:
            self._c_granted = self._c_blocked = None
            self._h_wait = self._h_hold = None
        self._locks: Dict[LockKey, _Lock] = {}
        self._held_by_txn: Dict[int, Set[LockKey]] = {}
        #: free lists for the per-row lock objects and per-txn key sets
        #: -- the OLTP hot path creates and destroys one of each per
        #: row touch, and recycling them beats re-allocating (pooled
        #: objects are only ever parked empty)
        self._lock_pool: List[_Lock] = []
        self._set_pool: List[Set[LockKey]] = []
        #: wait-for graph: waiter txn -> set of holder txns
        self._waits_for: Dict[int, Set[int]] = {}
        self.deadlocks_detected = 0
        #: observability bookkeeping (populated only when obs is enabled)
        self._wait_since: Dict[int, float] = {}
        self._held_since: Dict[Tuple[int, LockKey], float] = {}

    # -- queries ------------------------------------------------------------

    def holders(self, key: LockKey) -> Dict[int, LockMode]:
        lock = self._locks.get(key)
        return dict(lock.holders) if lock else {}

    def queued(self, key: LockKey) -> List[int]:
        """Txn ids waiting on ``key``, in FIFO order."""
        lock = self._locks.get(key)
        return [waiter for waiter, _mode in lock.queue] if lock else []

    def locks_held(self, txn_id: int) -> Set[LockKey]:
        return set(self._held_by_txn.get(txn_id, ()))

    def is_waiting(self, txn_id: int) -> bool:
        return txn_id in self._waits_for

    # -- acquisition ----------------------------------------------------------

    def acquire(
        self, txn_id: int, key: LockKey, mode: LockMode, queue_on_conflict: bool = True
    ) -> LockOutcome:
        """Try to take ``key`` in ``mode`` for ``txn_id``.

        Returns GRANTED immediately when compatible.  On conflict the
        request joins the FIFO queue (unless ``queue_on_conflict`` is
        false) after deadlock screening; closing a wait-for cycle raises
        :class:`DeadlockError` with the requester as victim.
        """
        lock = self._locks.get(key)
        if lock is None:
            # Uncontended first touch -- the overwhelmingly common case.
            pool = self._lock_pool
            lock = self._locks[key] = pool.pop() if pool else _Lock()
            lock.holders[txn_id] = mode
            held_keys = self._held_by_txn.get(txn_id)
            if held_keys is None:
                sets = self._set_pool
                held_keys = self._held_by_txn[txn_id] = (
                    sets.pop() if sets else set()
                )
            held_keys.add(key)
            if self._c_granted is not None:
                self._c_granted.value += 1.0
                self._held_since.setdefault((txn_id, key), self.obs.now())
            return LockOutcome.GRANTED
        held = lock.holders.get(txn_id)
        if held is not None and (held is LockMode.EXCLUSIVE or held is mode):
            return LockOutcome.GRANTED  # re-entrant
        # FIFO fairness: a grantable request must still queue behind
        # earlier waiters unless it is a lock upgrade.
        upgrade = held is LockMode.SHARED and mode is LockMode.EXCLUSIVE
        blocked_by_queue = bool(lock.queue) and not upgrade
        if lock.compatible(txn_id, mode) and not blocked_by_queue:
            lock.holders[txn_id] = mode
            self._held_by_txn.setdefault(txn_id, set()).add(key)
            if self._c_granted is not None:
                self._c_granted.value += 1.0
                self._held_since.setdefault((txn_id, key), self.obs.now())
            return LockOutcome.GRANTED
        # A waiter re-requesting while already queued keeps its original
        # position -- appending a second entry would let it eventually
        # hold two queue slots and barge past waiters that arrived
        # between its two requests (starvation under re-polling).
        if queue_on_conflict and any(waiter == txn_id for waiter, _ in lock.queue):
            if self._c_blocked is not None:
                self._c_blocked.value += 1.0
            return LockOutcome.BLOCKED
        blockers = {holder for holder in lock.holders if holder != txn_id}
        blockers.update(waiter for waiter, _ in lock.queue if waiter != txn_id)
        if self._would_deadlock(txn_id, blockers):
            self.deadlocks_detected += 1
            if self.obs.enabled:
                self.obs.count("engine.lock.deadlock")
                self.obs.event(
                    "lock.deadlock", "engine", track="engine",
                    attrs={"victim": txn_id, "blockers": sorted(blockers)},
                )
            raise DeadlockError(
                f"transaction {txn_id} would deadlock waiting for {sorted(blockers)}"
            )
        if self._c_blocked is not None:
            self._c_blocked.value += 1.0
        if not queue_on_conflict:
            return LockOutcome.BLOCKED
        lock.queue.append((txn_id, mode))
        self._waits_for[txn_id] = blockers
        if self.obs.enabled:
            self._wait_since.setdefault(txn_id, self.obs.now())
        return LockOutcome.BLOCKED

    def cancel_wait(self, txn_id: int) -> List[Tuple[int, LockKey]]:
        """Remove ``txn_id`` from every wait queue and the waits-for graph.

        Called on the timeout/abort path.  Three things must happen or
        the manager leaks ghost waiters: the waiter leaves every queue,
        every *other* waiter's blocker set drops the departed txn (stale
        edges cause false deadlock verdicts), and queues whose head
        became grantable are promoted (a cancelled head must not stall
        the compatible waiters behind it).  Returns the promoted grants
        so a cooperative scheduler can resume them.
        """
        self._waits_for.pop(txn_id, None)
        for blockers in self._waits_for.values():
            blockers.discard(txn_id)
        if self._h_wait is not None:
            since = self._wait_since.pop(txn_id, None)
            if since is not None:
                self._h_wait.observe(self.obs.now() - since)
        granted: List[Tuple[int, LockKey]] = []
        for key in list(self._locks):
            lock = self._locks[key]
            if not any(waiter == txn_id for waiter, _ in lock.queue):
                continue
            lock.queue = deque(
                (waiter, mode) for waiter, mode in lock.queue if waiter != txn_id
            )
            granted.extend(self._promote(key, lock))
            if not lock.holders and not lock.queue:
                del self._locks[key]
        return granted

    def release_one(self, txn_id: int, key: LockKey) -> List[Tuple[int, LockKey]]:
        """Early release of a single shared lock (READ COMMITTED).

        Exclusive locks are never released early -- strict 2PL keeps them
        to commit -- so releasing an X lock here is a no-op.
        """
        lock = self._locks.get(key)
        if lock is None or lock.holders.get(txn_id) is not LockMode.SHARED:
            return []
        lock.holders.pop(txn_id)
        self._observe_release(txn_id, key)
        held = self._held_by_txn.get(txn_id)
        if held is not None:
            held.discard(key)
        granted = self._promote(key, lock)
        if not lock.holders and not lock.queue:
            del self._locks[key]
            if len(self._lock_pool) < 4096:
                self._lock_pool.append(lock)
        return granted

    def release_all(self, txn_id: int) -> List[Tuple[int, LockKey]]:
        """Strict 2PL release at commit/abort.

        Returns the ``(txn_id, key)`` grants promoted from wait queues so a
        cooperative scheduler can resume them.
        """
        # A txn appears in a wait queue iff it is in the waits-for graph
        # (queueing installs the edge, promotion removes both), so a
        # non-waiting committer can skip the queue sweep entirely.  The
        # ``_wait_since`` check keeps the wait-histogram flush for txns
        # that waited earlier and were promoted.
        if txn_id in self._waits_for or txn_id in self._wait_since:
            granted: List[Tuple[int, LockKey]] = self.cancel_wait(txn_id)
        else:
            granted = []
        held = self._held_by_txn.pop(txn_id, None)
        if held is None:
            return granted
        observe = self._h_hold is not None
        pool = self._lock_pool
        for key in held:
            lock = self._locks.get(key)
            if lock is None:  # pragma: no cover - defensive
                continue
            lock.holders.pop(txn_id, None)
            if observe:
                self._observe_release(txn_id, key)
            if lock.queue:
                granted.extend(self._promote(key, lock))
                if not lock.holders and not lock.queue:
                    del self._locks[key]
                    if len(pool) < 4096:
                        pool.append(lock)
            elif not lock.holders:
                del self._locks[key]
                if len(pool) < 4096:
                    pool.append(lock)
        held.clear()
        if len(self._set_pool) < 4096:
            self._set_pool.append(held)
        return granted

    def _observe_release(self, txn_id: int, key: LockKey) -> None:
        if self._h_hold is None:
            return
        since = self._held_since.pop((txn_id, key), None)
        if since is not None:
            self._h_hold.observe(self.obs.now() - since)

    def _promote(self, key: LockKey, lock: _Lock) -> List[Tuple[int, LockKey]]:
        granted: List[Tuple[int, LockKey]] = []
        while lock.queue:
            waiter, mode = lock.queue[0]
            if not lock.compatible(waiter, mode):
                break
            lock.queue.popleft()
            lock.holders[waiter] = mode
            self._held_by_txn.setdefault(waiter, set()).add(key)
            self._waits_for.pop(waiter, None)
            if self._h_wait is not None:
                now = self.obs.now()
                since = self._wait_since.pop(waiter, None)
                if since is not None:
                    self._h_wait.observe(now - since)
                self._held_since.setdefault((waiter, key), now)
            granted.append((waiter, key))
        # Refresh the wait-for edges of whoever is still queued: their
        # blockers are the current holders plus the waiters ahead of
        # them -- anything else is a stale edge to a departed txn.
        earlier: Set[int] = set()
        for waiter, _mode in lock.queue:
            self._waits_for[waiter] = (
                {holder for holder in lock.holders if holder != waiter}
                | {ahead for ahead in earlier if ahead != waiter}
            )
            earlier.add(waiter)
        return granted

    # -- deadlock detection ------------------------------------------------------

    def _would_deadlock(self, txn_id: int, blockers: Set[int]) -> bool:
        """Would adding waiter->blockers edges close a cycle through txn_id?"""
        seen: Set[int] = set()
        frontier = list(blockers)
        while frontier:
            current = frontier.pop()
            if current == txn_id:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._waits_for.get(current, ()))
        return False

    def sanity_check(self) -> None:
        """Internal invariant check used by property tests."""
        for key, lock in self._locks.items():
            modes = set(lock.holders.values())
            if LockMode.EXCLUSIVE in modes and len(lock.holders) > 1:
                raise EngineError(f"lock {key} grants X alongside other holders")
            for holder in lock.holders:
                if key not in self._held_by_txn.get(holder, set()):
                    raise EngineError(f"holder bookkeeping broken for {key}")
        # wait-for graph <-> queue consistency (no ghost waiters)
        queued = {
            waiter for lock in self._locks.values() for waiter, _ in lock.queue
        }
        live = queued | {
            holder for lock in self._locks.values() for holder in lock.holders
        }
        for waiter, blockers in self._waits_for.items():
            if waiter not in queued:
                raise EngineError(f"ghost waiter {waiter} in waits-for graph")
            stale = blockers - live
            if stale:
                raise EngineError(f"waiter {waiter} has stale edges to {sorted(stale)}")
        for waiter in queued:
            if waiter not in self._waits_for:
                raise EngineError(f"queued waiter {waiter} missing from waits-for graph")

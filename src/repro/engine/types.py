"""Column, schema and row model for the storage engine.

Rows are stored as tuples in schema column order.  The schema coerces
and validates values on the way in so that the rest of the engine can
assume well-typed tuples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.engine.errors import SchemaError

#: Sentinel used in INSERT statements for auto-increment columns
#: (the paper's T1 uses ``INSERT INTO orderline VALUES (DEFAULT, ...)``).
DEFAULT = object()


class ColumnType(enum.Enum):
    """Supported column types and their byte-size estimates."""

    INT = "int"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    TIMESTAMP = "timestamp"

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` into the Python representation of this type."""
        if value is None:
            return None
        if self in (ColumnType.INT, ColumnType.BIGINT):
            if isinstance(value, bool):
                raise SchemaError(f"boolean is not valid for {self.value}")
            return int(value)
        if self is ColumnType.DECIMAL:
            return float(value)
        if self is ColumnType.VARCHAR:
            return str(value)
        if self is ColumnType.TIMESTAMP:
            return float(value)
        raise SchemaError(f"unknown column type {self!r}")  # pragma: no cover

    def byte_size(self, length: int = 0) -> int:
        """Nominal storage footprint used by the page/cost model."""
        if self in (ColumnType.INT, ColumnType.TIMESTAMP):
            return 8
        if self is ColumnType.BIGINT:
            return 8
        if self is ColumnType.DECIMAL:
            return 8
        if self is ColumnType.VARCHAR:
            return max(length, 16)
        raise SchemaError(f"unknown column type {self!r}")  # pragma: no cover


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True
    autoincrement: bool = False
    length: int = 0
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.autoincrement and self.type not in (ColumnType.INT, ColumnType.BIGINT):
            raise SchemaError(f"autoincrement column {self.name!r} must be integer")

    def byte_size(self) -> int:
        return self.type.byte_size(self.length)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns plus the primary key."""

    table: str
    columns: Tuple[Column, ...]
    primary_key: str
    _index: Dict[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)
    _pk_index: int = field(init=False, repr=False, compare=False, hash=False, default=0)

    def __post_init__(self) -> None:
        if not self.table or not self.table.isidentifier():
            raise SchemaError(f"invalid table name {self.table!r}")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate columns in table {self.table!r}: {names}")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.table!r}"
            )
        object.__setattr__(self, "_index", {name: i for i, name in enumerate(names)})
        object.__setattr__(self, "_pk_index", names.index(self.primary_key))

    # -- lookup helpers ----------------------------------------------------

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"table {self.table!r} has no column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def primary_key_index(self) -> int:
        return self._pk_index

    def row_byte_size(self) -> int:
        """Nominal bytes per row, used to size pages and working sets."""
        return sum(column.byte_size() for column in self.columns) + 8  # header

    # -- row validation ----------------------------------------------------

    def coerce_row(
        self, values: Sequence[Any], next_auto: Optional[int] = None
    ) -> Tuple[Any, ...]:
        """Validate and coerce a full row in column order.

        ``DEFAULT`` placeholders are replaced by ``next_auto`` for
        auto-increment columns or by the column default otherwise.
        """
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.table!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row = []
        for column, value in zip(self.columns, values):
            if value is DEFAULT:
                if column.autoincrement:
                    if next_auto is None:
                        raise SchemaError(
                            f"DEFAULT for {column.name!r} needs an autoincrement value"
                        )
                    value = next_auto
                else:
                    value = column.default
            value = column.type.coerce(value)
            if value is None and not column.nullable:
                raise SchemaError(
                    f"column {self.table}.{column.name} is NOT NULL"
                )
            row.append(value)
        return tuple(row)

    def row_dict(self, row: Sequence[Any]) -> Dict[str, Any]:
        """Project a stored tuple into a name->value mapping."""
        return dict(zip(self.column_names, row))
